//! Validity maps: ordered sets of disjoint byte intervals.
//!
//! RDMA Write-Record must "log at the target side what data has been written
//! to memory and is valid" (paper §IV.B.3). When a multi-segment message is
//! placed under packet loss, only some segments arrive; the completion entry
//! handed to the application carries a *validity map* — "essentially an
//! aggregated form of individual completion notifications" — describing the
//! byte ranges of the sink buffer that hold valid data.
//!
//! [`ValidityMap`] is that structure: a sorted list of disjoint,
//! non-adjacent `[start, end)` intervals with O(log n) insertion point
//! lookup and automatic coalescing of touching ranges.

use std::fmt;

/// A half-open byte interval `[start, end)` within a tagged buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive start offset.
    pub start: u64,
    /// Exclusive end offset.
    pub end: u64,
}

impl Interval {
    /// Creates `[start, end)`. Panics if `end < start`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        Self { start, end }
    }

    /// Number of bytes covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the interval covers no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `self` and `other` overlap or touch (share an endpoint).
    #[must_use]
    pub fn touches(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// An aggregated record of which byte ranges of a buffer are valid.
///
/// Invariants (checked by `debug_assert` and the property tests):
/// * intervals are sorted by `start`;
/// * intervals are pairwise disjoint and non-adjacent (a gap of at least one
///   byte separates consecutive intervals);
/// * no interval is empty.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ValidityMap {
    runs: Vec<Interval>,
}

impl ValidityMap {
    /// Creates an empty map (no valid bytes).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `[start, start + len)` as valid, coalescing with existing
    /// runs. Recording an already-valid range (duplicate datagram delivery)
    /// is a no-op on the observable state — placement is idempotent.
    pub fn record(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let new = Interval::new(start, start + len);
        // Position of the first run that could touch `new`.
        let lo = self.runs.partition_point(|r| r.end < new.start);
        // One past the last run that touches `new`.
        let hi = self.runs[lo..].partition_point(|r| r.start <= new.end) + lo;
        if lo == hi {
            self.runs.insert(lo, new);
        } else {
            let merged = Interval::new(
                self.runs[lo].start.min(new.start),
                self.runs[hi - 1].end.max(new.end),
            );
            self.runs[lo] = merged;
            self.runs.drain(lo + 1..hi);
        }
        debug_assert!(self.check_invariants());
    }

    /// Total number of valid bytes.
    #[must_use]
    pub fn valid_bytes(&self) -> u64 {
        self.runs.iter().map(Interval::len).sum()
    }

    /// True when no bytes are valid.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// True when the single run `[0, len)` is valid — i.e. the whole
    /// message arrived intact.
    #[must_use]
    pub fn covers(&self, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        matches!(self.runs.as_slice(), [only] if only.start == 0 && only.end >= len)
    }

    /// True when every byte of `[start, end)` is valid.
    #[must_use]
    pub fn contains_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let idx = self.runs.partition_point(|r| r.end < end);
        self.runs
            .get(idx)
            .is_some_and(|r| r.start <= start && end <= r.end)
    }

    /// True when the byte at `offset` is valid.
    #[must_use]
    pub fn contains(&self, offset: u64) -> bool {
        self.contains_range(offset, offset + 1)
    }

    /// The valid runs, sorted and disjoint.
    #[must_use]
    pub fn runs(&self) -> &[Interval] {
        &self.runs
    }

    /// Number of disjoint runs.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Gaps (missing ranges) within `[0, len)` — the data the application
    /// must skip over or re-request.
    #[must_use]
    pub fn gaps(&self, len: u64) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for r in &self.runs {
            if r.start >= len {
                break;
            }
            if r.start > cursor {
                out.push(Interval::new(cursor, r.start));
            }
            cursor = cursor.max(r.end);
        }
        if cursor < len {
            out.push(Interval::new(cursor, len));
        }
        out
    }

    /// Approximate heap footprint of the map itself (for memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<Interval>()
    }

    fn check_invariants(&self) -> bool {
        self.runs.iter().all(|r| !r.is_empty())
            && self.runs.windows(2).all(|w| w[0].end < w[1].start)
    }
}

impl fmt::Debug for ValidityMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.runs).finish()
    }
}

impl FromIterator<(u64, u64)> for ValidityMap {
    /// Builds a map from `(start, len)` pairs.
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (start, len) in iter {
            m.record(start, len);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m = ValidityMap::new();
        assert!(m.is_empty());
        assert_eq!(m.valid_bytes(), 0);
        assert!(m.covers(0));
        assert!(!m.covers(1));
        assert_eq!(m.gaps(10), vec![Interval::new(0, 10)]);
    }

    #[test]
    fn single_record() {
        let mut m = ValidityMap::new();
        m.record(100, 50);
        assert_eq!(m.valid_bytes(), 50);
        assert!(m.contains(100));
        assert!(m.contains(149));
        assert!(!m.contains(99));
        assert!(!m.contains(150));
        assert!(m.contains_range(110, 140));
        assert!(!m.contains_range(90, 110));
    }

    #[test]
    fn zero_length_record_is_noop() {
        let mut m = ValidityMap::new();
        m.record(5, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn adjacent_runs_coalesce() {
        let mut m = ValidityMap::new();
        m.record(0, 10);
        m.record(10, 10);
        assert_eq!(m.run_count(), 1);
        assert!(m.covers(20));
    }

    #[test]
    fn overlapping_runs_coalesce() {
        let mut m = ValidityMap::new();
        m.record(0, 15);
        m.record(10, 15);
        assert_eq!(m.run_count(), 1);
        assert_eq!(m.valid_bytes(), 25);
    }

    #[test]
    fn disjoint_runs_stay_separate() {
        let mut m = ValidityMap::new();
        m.record(0, 10);
        m.record(20, 10);
        assert_eq!(m.run_count(), 2);
        assert_eq!(m.valid_bytes(), 20);
        assert_eq!(m.gaps(30), vec![Interval::new(10, 20)]);
    }

    #[test]
    fn bridge_record_merges_three() {
        let mut m = ValidityMap::new();
        m.record(0, 10);
        m.record(20, 10);
        m.record(40, 10);
        m.record(5, 40); // spans all three
        assert_eq!(m.run_count(), 1);
        assert_eq!(m.valid_bytes(), 50);
        assert!(m.covers(50));
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut m = ValidityMap::new();
        m.record(1500, 1500);
        let snapshot = m.clone();
        m.record(1500, 1500);
        assert_eq!(m, snapshot);
    }

    #[test]
    fn out_of_order_segments() {
        // Segments of a 6000-byte message arriving 3,0,2 (1 lost).
        let mtu = 1500u64;
        let mut m = ValidityMap::new();
        m.record(3 * mtu, mtu);
        m.record(0, mtu);
        m.record(2 * mtu, mtu);
        assert_eq!(m.valid_bytes(), 3 * mtu);
        assert!(!m.covers(4 * mtu));
        assert_eq!(m.gaps(4 * mtu), vec![Interval::new(mtu, 2 * mtu)]);
    }

    #[test]
    fn covers_requires_start_at_zero() {
        let mut m = ValidityMap::new();
        m.record(1, 100);
        assert!(!m.covers(100));
    }

    #[test]
    fn from_iter_collects() {
        let m: ValidityMap = [(0u64, 10u64), (10, 5), (30, 5)].into_iter().collect();
        assert_eq!(m.run_count(), 2);
        assert_eq!(m.valid_bytes(), 20);
    }
}
