//! `replog` — replicated-log commit bench + agreement smoke gate (PR 9).
//!
//! ```text
//! replog [--entries N] [--seed S] [--out PATH]        # full sweep
//! replog --smoke [--plans N]                          # CI gate
//! replog --replay SEED                                # re-run one chaos plan
//! ```
//!
//! The full sweep drives the [`iwarp_apps::replog`] cluster over both
//! publish paths (one-sided Write-Record vs a two-sided send/recv
//! baseline) × wire loss {0 %, 2 %, 8 %} and records commit latency and
//! throughput per cell into `BENCH_PR9.json`. Latency and throughput
//! are measured on the cluster's synthetic tick clock — Proposed tick →
//! Committed tick per client entry — so the headline numbers are
//! deterministic per seed; wall-clock figures ride along for reference.
//!
//! `--smoke` is the CI hook: a bounded seeded chaos sweep through the
//! `iwarp_chaos::replog` oracle (every agreement invariant checked
//! under partitions, reorder, duplication, corruption, burst loss) plus
//! the one-sided ≥ two-sided commit-throughput sanity gate, median of
//! three wire seeds on a clean wire. `--replay SEED` re-runs exactly
//! one oracle plan (same faults byte-for-byte) and prints the full
//! failure rendering on any violation.

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use iwarp_apps::replog::{Cluster, Event, PublishPath, ReplogConfig};
use iwarp_chaos::replog::{run_replog_plan, run_replog_sweep, ReplogOpts};
use iwarp_common::rng::derive_seed;
use simnet::{Fabric, LossModel, WireConfig};

struct Args {
    entries: usize,
    seed: u64,
    out: String,
    smoke: bool,
    plans: usize,
    replay: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        entries: 64,
        seed: 0x9E10_0009,
        out: "BENCH_PR9.json".into(),
        smoke: false,
        plans: 25,
        replay: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let grab = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--entries" => {
                args.entries = grab(&argv, i, "--entries")?.parse().map_err(|_| "bad --entries")?;
                i += 1;
            }
            "--seed" => {
                args.seed = parse_u64(&grab(&argv, i, "--seed")?)?;
                i += 1;
            }
            "--out" => {
                args.out = grab(&argv, i, "--out")?;
                i += 1;
            }
            "--plans" => {
                args.plans = grab(&argv, i, "--plans")?.parse().map_err(|_| "bad --plans")?;
                i += 1;
            }
            "--replay" => {
                args.replay = Some(parse_u64(&grab(&argv, i, "--replay")?)?);
                i += 1;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: replog [--entries N] [--seed S] [--out PATH] \
                     [--smoke [--plans N]] | --replay SEED"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|e| format!("bad number {s:?}: {e}"))
}

struct Cell {
    committed: usize,
    ticks: u64,
    p50_ticks: u64,
    p99_ticks: u64,
    commits_per_kilotick: f64,
    wall_ms: f64,
    publishes: u64,
    refetches: u64,
    elections: u64,
}

/// One bench cell: a fresh clean-or-lossy fabric, one cluster run,
/// commit latency percentiles off the tick-stamped history.
fn run_cell(path: PublishPath, loss_pct: u32, entries: usize, seed: u64) -> Cell {
    let loss = if loss_pct == 0 {
        LossModel::None
    } else {
        LossModel::bernoulli(f64::from(loss_pct) / 100.0)
    };
    let fab = Fabric::new(WireConfig {
        loss,
        seed: derive_seed(seed, 0x11),
        ..WireConfig::default()
    });
    let cfg = ReplogConfig {
        entries,
        path,
        seed,
        ticks: 120_000,
        max_log: entries * 2 + 32,
        ..ReplogConfig::default()
    };
    let t0 = Instant::now();
    let out = Cluster::new(&fab, cfg).run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // First Proposed and first Committed tick per client sequence number
    // (a retried entry keeps its original propose tick — the client saw
    // the latency of the whole exchange).
    let mut proposed: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut last_commit_tick = 0u64;
    for ev in &out.history.events {
        match *ev {
            Event::Proposed { tick, seq, .. } => {
                proposed.entry(seq).or_insert(tick);
            }
            Event::Committed { tick, seq, .. } if seq != 0 => {
                if let Some(p) = proposed.remove(&seq) {
                    latencies.push(tick - p);
                    last_commit_tick = last_commit_tick.max(tick);
                }
            }
            _ => {}
        }
    }
    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[(latencies.len() * p / 100).min(latencies.len() - 1)]
    };
    let commits_per_kilotick = if last_commit_tick == 0 {
        0.0
    } else {
        latencies.len() as f64 * 1e3 / last_commit_tick as f64
    };
    Cell {
        committed: latencies.len(),
        ticks: out.ticks,
        p50_ticks: pct(50),
        p99_ticks: pct(99),
        commits_per_kilotick,
        wall_ms,
        publishes: out.publishes,
        refetches: out.refetch_transfers,
        elections: out.elections,
    }
}

fn path_label(path: PublishPath) -> &'static str {
    match path {
        PublishPath::WriteRecord => "write_record",
        PublishPath::TwoSided => "two_sided",
    }
}

/// Median one-sided and two-sided commit throughput over three wire
/// seeds on a clean wire — the smoke gate's inputs.
fn throughput_medians(entries: usize, seed: u64) -> (f64, f64) {
    let median3 = |path: PublishPath| -> f64 {
        let mut runs: Vec<f64> = (0..3u64)
            .map(|i| run_cell(path, 0, entries, derive_seed(seed, 0x30 + i)).commits_per_kilotick)
            .collect();
        runs.sort_by(|a, b| a.total_cmp(b));
        runs[1]
    };
    (median3(PublishPath::WriteRecord), median3(PublishPath::TwoSided))
}

fn smoke(args: &Args) -> ExitCode {
    // Bounded chaos sweep: every agreement invariant under seeded fault
    // plans across both publish paths and freeze fail-overs.
    let opts = ReplogOpts::default();
    let reports = run_replog_sweep(args.seed, args.plans, &opts);
    let mut failed = 0usize;
    for (i, rep) in reports.iter().enumerate() {
        if !rep.ok() || !rep.outcome.converged {
            failed += 1;
            eprintln!("plan {i} seed={:#018x} FAILED", rep.seed);
            eprint!("{}", rep.render_failure());
        }
    }
    if failed > 0 {
        eprintln!("replog smoke: {failed}/{} chaos plans FAILED", args.plans);
        return ExitCode::FAILURE;
    }
    println!("replog smoke: {} chaos plans passed (master seed {:#x})", args.plans, args.seed);

    // Commit-throughput sanity gate: the one-sided Write-Record path
    // must keep up with the two-sided baseline it replaces.
    let (one_sided, two_sided) = throughput_medians(24, args.seed);
    println!(
        "replog smoke: commit throughput write_record {one_sided:.2} vs \
         two_sided {two_sided:.2} commits/kilotick (median of 3)"
    );
    if one_sided < two_sided {
        eprintln!("replog smoke: FAILED — one-sided commit throughput below two-sided baseline");
        return ExitCode::FAILURE;
    }
    println!("replog smoke: PASSED");
    ExitCode::SUCCESS
}

fn replay(seed: u64) -> ExitCode {
    let rep = run_replog_plan(seed, &ReplogOpts::default());
    println!(
        "replay seed={seed:#x}: {} fault events, {} violations, converged={} \
         ({} publishes, {} refetches, {} ticks)",
        rep.fault_trace.len(),
        rep.violations.len(),
        rep.outcome.converged,
        rep.outcome.publishes,
        rep.outcome.refetch_transfers,
        rep.outcome.ticks,
    );
    if rep.ok() {
        println!("replay PASSED");
        ExitCode::SUCCESS
    } else {
        print!("{}", rep.render_failure());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("replog: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(seed) = args.replay {
        return replay(seed);
    }
    if args.smoke {
        return smoke(&args);
    }

    let losses: [u32; 3] = [0, 2, 8];
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "\"bench\": \"replog\",");
    let _ = writeln!(json, "\"seed\": {},", args.seed);
    let _ = writeln!(json, "\"entries_per_cell\": {},", args.entries);
    let _ = writeln!(json, "\"replicas\": 3,");
    let _ = writeln!(json, "\"runs\": [");

    let mut first = true;
    for path in [PublishPath::WriteRecord, PublishPath::TwoSided] {
        for (li, &loss) in losses.iter().enumerate() {
            let cell_seed = derive_seed(args.seed, (li as u64) << 8 | u64::from(path == PublishPath::TwoSided));
            let c = run_cell(path, loss, args.entries, cell_seed);
            eprintln!(
                "  {:>12} @ {loss}% loss: {} commits in {} ticks, latency p50 {} / p99 {} ticks, \
                 {:.2} commits/kilotick, {} publishes, {} refetches, {} elections ({:.0} ms wall)",
                path_label(path),
                c.committed,
                c.ticks,
                c.p50_ticks,
                c.p99_ticks,
                c.commits_per_kilotick,
                c.publishes,
                c.refetches,
                c.elections,
                c.wall_ms,
            );
            if !first {
                let _ = writeln!(json, ",");
            }
            first = false;
            let _ = write!(
                json,
                "  {{\"path\": \"{}\", \"loss_pct\": {loss}, \"committed\": {}, \
                 \"ticks\": {}, \"commit_latency_p50_ticks\": {}, \
                 \"commit_latency_p99_ticks\": {}, \"commits_per_kilotick\": {:.3}, \
                 \"publishes\": {}, \"refetch_transfers\": {}, \"elections\": {}, \
                 \"wall_ms\": {:.2}}}",
                path_label(path),
                c.committed,
                c.ticks,
                c.p50_ticks,
                c.p99_ticks,
                c.commits_per_kilotick,
                c.publishes,
                c.refetches,
                c.elections,
                c.wall_ms,
            );
        }
    }
    let _ = writeln!(json, "\n],");

    let (one_sided, two_sided) = throughput_medians(args.entries.min(32), args.seed);
    let gate = one_sided >= two_sided;
    let _ = writeln!(
        json,
        "\"gate\": {{\"one_sided_commits_per_kilotick\": {one_sided:.3}, \
         \"two_sided_commits_per_kilotick\": {two_sided:.3}, \"pass\": {gate}}}"
    );
    let _ = writeln!(json, "}}");
    if let Err(e) = fs::write(&args.out, &json) {
        eprintln!("replog: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "replog: wrote {} — one-sided {one_sided:.2} vs two-sided {two_sided:.2} \
         commits/kilotick, gate {}",
        args.out,
        if gate { "PASSED" } else { "FAILED" }
    );
    if gate {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
