//! `chaos` — seeded adversarial sweeps over the full datagram-iWARP
//! stack with cross-layer invariant checking.
//!
//! ```text
//! chaos [--plans N] [--seed MASTER] [--msgs N] [--dgrams N] [--verbose]
//! chaos --replay SEED
//! ```
//!
//! The sweep derives plan seed `i` as `derive_seed(MASTER, i)` and runs
//! each through `iwarp_chaos::run_plan`. On any invariant violation it
//! prints the failing plan seed plus the minimal fault trace and exits
//! nonzero; `chaos --replay <seed>` re-runs exactly that plan (same
//! faults byte-for-byte) with telemetry forensics enabled.

use std::process::ExitCode;

use iwarp_chaos::{run_plan, ChaosOpts};
use iwarp_common::rng::derive_seed;

struct Args {
    plans: usize,
    seed: u64,
    replay: Option<u64>,
    msgs: Option<usize>,
    dgrams: Option<usize>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        plans: 25,
        seed: 0x1AAF_2026,
        replay: None,
        msgs: None,
        dgrams: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--plans" => args.plans = grab("--plans")?.parse().map_err(|e| format!("--plans: {e}"))?,
            "--seed" => args.seed = parse_u64(&grab("--seed")?)?,
            "--replay" => args.replay = Some(parse_u64(&grab("--replay")?)?),
            "--msgs" => args.msgs = Some(grab("--msgs")?.parse().map_err(|e| format!("--msgs: {e}"))?),
            "--dgrams" => {
                args.dgrams = Some(grab("--dgrams")?.parse().map_err(|e| format!("--dgrams: {e}"))?);
            }
            "--verbose" | "-v" => args.verbose = true,
            "--burst-path" => {
                let spec = grab("--burst-path")?;
                let path = iwarp_common::burstpath::BurstPath::parse(&spec)
                    .ok_or(format!("--burst-path takes 'per-packet' or 'burst', got {spec:?}"))?;
                iwarp_common::burstpath::set_default(path);
            }
            "--cc" => {
                let spec = grab("--cc")?;
                let algo = iwarp_common::ccalgo::CcAlgo::parse(&spec)
                    .ok_or(format!("--cc takes 'fixed', 'newreno' or 'cubic', got {spec:?}"))?;
                iwarp_common::ccalgo::set_default(algo);
            }
            "--help" | "-h" => {
                println!(
                    "usage: chaos [--plans N] [--seed MASTER] [--msgs N] [--dgrams N] \
                     [--verbose] [--burst-path {{per-packet,burst}}] \
                     [--cc {{fixed,newreno,cubic}}] | --replay SEED"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|e| format!("bad seed {s:?}: {e}"))
}

fn opts_from(args: &Args, forensic: bool) -> ChaosOpts {
    let mut o = ChaosOpts {
        forensic,
        ..ChaosOpts::default()
    };
    if let Some(m) = args.msgs {
        o.send_msgs = m;
        o.write_msgs = m;
    }
    if let Some(d) = args.dgrams {
        o.dgrams = d;
    }
    o
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(seed) = args.replay {
        let report = run_plan(seed, &opts_from(&args, true));
        println!(
            "replay seed={seed:#x}: {} fault events (verbs) + {} (socket) + \
             {} (read), {} violations",
            report.fault_trace.len(),
            report.socket_fault_trace.len(),
            report.read_fault_trace.len(),
            report.violations.len()
        );
        if args.verbose || !report.ok() {
            print!("{}", report.render_failure());
        }
        return if report.ok() {
            println!("replay PASSED");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let opts = opts_from(&args, args.verbose);
    let mut failed = 0usize;
    for i in 0..args.plans {
        let seed = derive_seed(args.seed, i as u64);
        let report = run_plan(seed, &opts);
        if report.ok() {
            if args.verbose {
                println!(
                    "plan {i:>3} seed={seed:#018x} ok — faults: {} verbs / {} socket / \
                     {} read / {} reliable, recv {}+{}exp, wr {} ({} full/{} part), \
                     crc_rej {}, bulk {}b+{}rp, reliable {}B+{}msgs under {}",
                    report.fault_trace.len(),
                    report.socket_fault_trace.len(),
                    report.read_fault_trace.len(),
                    report.reliable_fault_trace.len(),
                    report.verbs.recv_success,
                    report.verbs.recv_expired,
                    report.verbs.write_cqes,
                    report.verbs.write_success,
                    report.verbs.write_partial,
                    report.verbs.crc_errors,
                    report.bulk.batches,
                    report.bulk.reposts,
                    report.reliable.stream_bytes,
                    report.reliable.rd_msgs,
                    iwarp_common::ccalgo::default_algo(),
                );
            }
        } else {
            failed += 1;
            eprintln!("plan {i} seed={seed:#018x} FAILED");
            eprint!("{}", report.render_failure());
        }
    }
    if failed == 0 {
        println!("chaos: {} plans passed (master seed {:#x})", args.plans, args.seed);
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos: {failed}/{} plans FAILED (master seed {:#x})", args.plans, args.seed);
        ExitCode::FAILURE
    }
}
