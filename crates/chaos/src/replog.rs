//! The replicated-log agreement oracle (PR 9).
//!
//! [`run_replog_plan`] drives one [`iwarp_apps::replog::Cluster`] on a
//! fresh fabric with a seeded [`FaultPlan`] installed, then checks the
//! recorded [`History`] against the agreement invariants:
//!
//! 1. **commit-agreement** — all `Committed` events for one log index
//!    agree on `(entry_term, seq, crc, len, kind)`.
//! 2. **applied-sequential** — every replica applies indices 1, 2, 3, …
//!    with no gap and no duplicate.
//! 3. **applied-divergence / applied-uncommitted** — every applied entry
//!    matches the committed tuple for its index, and no replica applies
//!    an index that was never committed.
//! 4. **convergence / committed-durability / client-acks** — the run
//!    converges within its tick budget, every replica ends having
//!    applied the whole committed prefix, and every client entry was
//!    committed exactly as acked.
//! 5. **lease-exclusivity** — leader-lease intervals from different
//!    replicas never overlap (no two simultaneous leaders per the
//!    oracle clock).
//! 6. **commit-provenance** — every committed client entry matches a
//!    `Proposed` event `(index, term, seq, crc)`: nothing enters the
//!    committed log that a leader did not accept from the client.
//! 7. **payload-integrity** — the committed CRC equals the CRC of the
//!    canonical client payload for that sequence number: corrupted or
//!    torn records can never commit.
//!
//! Like the main harness, everything is deterministic per seed: the
//! cluster runs poll-mode QPs on a synthetic tick clock over a
//! latency-free fabric, so `replog --replay <seed>` reproduces a failure
//! byte-for-byte, fault trace included.

use std::collections::{BTreeMap, BTreeSet};

use iwarp_apps::replog::{
    client_payload, Cluster, Event, History, PlantedBug, PublishPath, RecordKind, ReplogConfig,
    RunOutcome, PAYLOAD_AREA,
};
use iwarp_common::crc32::crc32c;
use iwarp_common::rng::derive_seed;
use simnet::{Fabric, FaultEvent, FaultPlan, WireConfig};

use crate::invariants::Violation;

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Knobs for one replog plan run.
#[derive(Clone, Debug)]
pub struct ReplogOpts {
    /// Client entries the run must commit.
    pub entries: usize,
    /// Client payload bytes per entry.
    pub payload: usize,
    /// Tick budget before the run counts as unconverged.
    pub ticks: u64,
    /// Planted protocol bug (oracle-sensitivity runs).
    pub bug: PlantedBug,
}

impl Default for ReplogOpts {
    fn default() -> Self {
        Self { entries: 16, payload: 1000, ticks: 60_000, bug: PlantedBug::None }
    }
}

/// Report for one replog plan.
#[derive(Clone, Debug)]
pub struct ReplogReport {
    /// The plan seed (replay key).
    pub seed: u64,
    /// The derived fault adversary.
    pub plan: FaultPlan,
    /// The derived workload configuration.
    pub cfg: ReplogConfig,
    /// Invariant violations (empty = the run passed).
    pub violations: Vec<Violation>,
    /// Fault trace (deterministic per seed: synthetic tick clock).
    pub fault_trace: Vec<FaultEvent>,
    /// Run outcome (history, convergence, commit stats).
    pub outcome: RunOutcome,
}

impl ReplogReport {
    /// True when every invariant held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders failure evidence: seed, violations, and the fault trace
    /// needed to replay.
    #[must_use]
    pub fn render_failure(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.ok() {
            let _ = writeln!(s, "replog plan report — seed {}", self.seed);
        } else {
            let _ =
                writeln!(s, "replog plan FAILED — replay with: replog --replay {:#x}", self.seed);
        }
        let _ = writeln!(s, "plan: {:?}", self.plan);
        let _ = writeln!(
            s,
            "cfg: path {:?}, freeze {:?}, bug {:?}, {} entries",
            self.cfg.path, self.cfg.freeze, self.cfg.bug, self.cfg.entries
        );
        let _ = writeln!(
            s,
            "outcome: converged {}, {} ticks, max commit {}, {} elections, {} events, {} leases",
            self.outcome.converged,
            self.outcome.ticks,
            self.outcome.max_commit,
            self.outcome.elections,
            self.outcome.history.events.len(),
            self.outcome.history.leases.len()
        );
        let _ = writeln!(
            s,
            "traffic: {} publishes, {} hole-refetch transfers",
            self.outcome.publishes, self.outcome.refetch_transfers
        );
        for v in &self.violations {
            let _ = writeln!(s, "  {v}");
        }
        let _ = writeln!(s, "fault trace ({} events):", self.fault_trace.len());
        for e in &self.fault_trace {
            let _ = writeln!(s, "  {e}");
        }
        s
    }
}

/// Derives the workload for a plan seed: the publish path alternates by
/// seed parity (both paths face the sweep's adversaries) and half the
/// plans freeze the leaseholder mid-run to force a fail-over.
#[must_use]
pub fn replog_cfg_for_seed(seed: u64, opts: &ReplogOpts) -> ReplogConfig {
    let path = if seed & 1 == 0 { PublishPath::WriteRecord } else { PublishPath::TwoSided };
    let freeze = if seed & 2 != 0 {
        let at = 150 + derive_seed(seed, 0xF2EE) % 400;
        let len = 400 + derive_seed(seed, 0xF2EF) % 400;
        Some((at, len))
    } else {
        None
    };
    ReplogConfig {
        entries: opts.entries,
        payload: opts.payload,
        max_log: opts.entries * 2 + 32,
        path,
        seed,
        ticks: opts.ticks,
        freeze,
        bug: opts.bug,
        ..ReplogConfig::default()
    }
}

/// Runs one replog plan: fresh fabric, seeded adversary, full run, all
/// invariant checks.
#[must_use]
pub fn run_replog_plan(seed: u64, opts: &ReplogOpts) -> ReplogReport {
    let fab = Fabric::new(WireConfig::default());
    let plan = FaultPlan::from_seed(derive_seed(seed, 0x9E10));
    fab.install_fault_plan(plan.clone());
    let cfg = replog_cfg_for_seed(seed, opts);
    let mut cluster = Cluster::new(&fab, cfg.clone());
    let outcome = cluster.run();
    drop(cluster);
    fab.chaos_flush();
    let fault_trace = fab.fault_trace();
    let violations = check_replog(&outcome, &cfg);
    ReplogReport { seed, plan, cfg, violations, fault_trace, outcome }
}

/// Runs `n` consecutive replog plans derived from `master`.
#[must_use]
pub fn run_replog_sweep(master: u64, n: usize, opts: &ReplogOpts) -> Vec<ReplogReport> {
    (0..n).map(|i| run_replog_plan(derive_seed(master, i as u64), opts)).collect()
}

/// Checks the agreement invariants over a finished run's history.
#[must_use]
pub fn check_replog(out: &RunOutcome, cfg: &ReplogConfig) -> Vec<Violation> {
    let mut v = Vec::new();
    let h: &History = &out.history;

    // 1. commit-agreement, building the canonical committed log.
    let mut committed: BTreeMap<u64, (u64, u64, u32, u32, RecordKind)> = BTreeMap::new();
    let mut proposed: BTreeSet<(u64, u64, u64, u32)> = BTreeSet::new();
    for e in &h.events {
        match *e {
            Event::Proposed { seq, index, term, crc, .. } => {
                proposed.insert((index, term, seq, crc));
            }
            Event::Committed { index, term, seq, crc, len, kind, .. } => {
                let tuple = (term, seq, crc, len, kind);
                match committed.get(&index) {
                    Some(prev) if *prev != tuple => v.push(violation(
                        "commit-agreement",
                        format!("index {index} committed as {prev:?} and {tuple:?}"),
                    )),
                    Some(_) => {}
                    None => {
                        committed.insert(index, tuple);
                    }
                }
            }
            Event::Applied { .. } => {}
        }
    }

    // 2 + 3. per-replica apply order and agreement with the committed log.
    // (index, term, seq, crc, kind) per applied entry, in apply order.
    type AppliedEntry = (u64, u64, u64, u32, RecordKind);
    let nreplicas = iwarp_apps::replog::N_REPLICAS;
    let mut applied: Vec<Vec<AppliedEntry>> = vec![Vec::new(); nreplicas];
    for e in &h.events {
        if let Event::Applied { replica, index, term, seq, crc, kind, .. } = *e {
            applied[replica].push((index, term, seq, crc, kind));
        }
    }
    for (r, log) in applied.iter().enumerate() {
        for (i, &(index, term, seq, crc, kind)) in log.iter().enumerate() {
            let expect = i as u64 + 1;
            if index != expect {
                v.push(violation(
                    "applied-sequential",
                    format!("replica {r} applied index {index} at position {expect}"),
                ));
                break;
            }
            match committed.get(&index) {
                Some(&(cterm, cseq, ccrc, _clen, ckind)) => {
                    if (term, seq, crc, kind) != (cterm, cseq, ccrc, ckind) {
                        v.push(violation(
                            "applied-divergence",
                            format!(
                                "replica {r} applied index {index} as (term {term}, seq {seq}, \
                                 crc {crc:#010x}, {kind:?}) but it committed as (term {cterm}, \
                                 seq {cseq}, crc {ccrc:#010x}, {ckind:?})"
                            ),
                        ));
                    }
                }
                None => v.push(violation(
                    "applied-uncommitted",
                    format!("replica {r} applied index {index} which never committed"),
                )),
            }
        }
    }

    // 4. convergence, durability, and client acks.
    if !out.converged {
        let client_committed = committed
            .values()
            .filter(|(_, seq, _, _, kind)| *kind == RecordKind::Client && *seq != 0)
            .count();
        v.push(violation(
            "convergence",
            format!(
                "run did not converge in {} ticks ({client_committed}/{} client entries \
                 committed, {} elections)",
                out.ticks, cfg.entries, out.elections
            ),
        ));
    } else {
        let mc = committed.keys().next_back().copied().unwrap_or(0);
        for (r, log) in applied.iter().enumerate() {
            if (log.len() as u64) < mc {
                v.push(violation(
                    "committed-durability",
                    format!("replica {r} ended at applied {} < max committed {mc}", log.len()),
                ));
            }
        }
        let mut seqs: BTreeSet<u64> = BTreeSet::new();
        for &(_, seq, _, _, kind) in committed.values() {
            if kind == RecordKind::Client {
                seqs.insert(seq);
            }
        }
        let want: BTreeSet<u64> = (1..=cfg.entries as u64).collect();
        if !want.is_subset(&seqs) {
            let missing: Vec<u64> = want.difference(&seqs).copied().collect();
            v.push(violation(
                "client-acks",
                format!("converged run is missing committed client seqs {missing:?}"),
            ));
        }
    }

    // 5. lease exclusivity across replicas.
    for (i, a) in h.leases.iter().enumerate() {
        for b in h.leases.iter().skip(i + 1) {
            if a.replica != b.replica && a.start < b.end && b.start < a.end {
                v.push(violation(
                    "lease-exclusivity",
                    format!("overlapping leader leases: {a:?} vs {b:?}"),
                ));
            }
        }
    }

    // 6. committed client entries must trace back to a proposal.
    for (&index, &(term, seq, crc, _len, kind)) in &committed {
        if kind == RecordKind::Client && !proposed.contains(&(index, term, seq, crc)) {
            v.push(violation(
                "commit-provenance",
                format!(
                    "committed client entry (index {index}, term {term}, seq {seq}, \
                     crc {crc:#010x}) matches no Proposed event"
                ),
            ));
        }
    }

    // 7. committed payloads must be byte-identical to what the client sent.
    for &(_, seq, crc, len, kind) in committed.values() {
        if kind != RecordKind::Client {
            continue;
        }
        let payload = client_payload(cfg.seed, seq, cfg.payload.max(8));
        let mut area = vec![0u8; PAYLOAD_AREA];
        area[..payload.len()].copy_from_slice(&payload);
        let want = crc32c(&area);
        if crc != want || len as usize != payload.len() {
            v.push(violation(
                "payload-integrity",
                format!(
                    "committed seq {seq} has crc {crc:#010x} len {len}, canonical payload \
                     has crc {want:#010x} len {}",
                    payload.len()
                ),
            ));
        }
    }

    v
}
