//! Criterion micro-benchmarks for Fig. 6: unidirectional bandwidth.
//!
//! Reports bytes/second throughput per method at a mid-size message; the
//! full size sweep lives in the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iwarp_bench::{bandwidth, FabricKind, Method};

fn bench_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_bandwidth");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let size = 64 * 1024;
    let n = 32;
    g.throughput(Throughput::Bytes((size * n) as u64));
    for method in Method::FIG56 {
        g.bench_with_input(BenchmarkId::new(method.label(), size), &size, |b, &size| {
            b.iter(|| bandwidth(FabricKind::Fast, method, size, n));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
