//! Media streaming over the iWARP socket interface (the paper's VLC
//! experiment, Fig. 9).
//!
//! ```text
//! cargo run --release --example media_streaming
//! ```
//!
//! Streams the same media object three ways and compares the initial
//! buffering time the viewer experiences:
//!   * UDP-style over UD send/recv through the socket shim,
//!   * UDP-style over one-sided RDMA Write-Record through the shim,
//!   * HTTP/1.0 over the RC (TCP-like) stream — VLC's connection mode.

use datagram_iwarp::apps::media::{run_http_session, run_udp_session, MediaConfig};
use datagram_iwarp::net::{Fabric, NodeId, WireConfig};
use datagram_iwarp::sockets::{DgramMode, SocketConfig, SocketStack};

fn sock_cfg(mode: DgramMode) -> SocketConfig {
    SocketConfig {
        mode,
        recv_slots: 256,
        slot_size: 2048,
        ..SocketConfig::default()
    }
}

fn main() {
    let cfg = MediaConfig {
        chunk_size: 1316, // 7 MPEG-TS packets: the classic media datagram
        total_bytes: 4 << 20,
        bitrate_bps: 0, // stream as fast as the transport allows
        prebuffer_bytes: 512 * 1024,
        idle_timeout: std::time::Duration::from_millis(500),
    };
    println!(
        "streaming {} MiB, prebuffer target {} KiB, chunk {} B\n",
        cfg.total_bytes >> 20,
        cfg.prebuffer_bytes >> 10,
        cfg.chunk_size
    );

    let mut results = Vec::new();
    for (label, mode) in [
        ("UD send/recv", DgramMode::SendRecv),
        ("UD Write-Record", DgramMode::WriteRecord),
    ] {
        let fabric = Fabric::new(WireConfig::ten_gbe());
        let server = SocketStack::with_config(&fabric, NodeId(0), Default::default(), sock_cfg(mode));
        let client = SocketStack::with_config(&fabric, NodeId(1), Default::default(), sock_cfg(mode));
        let m = run_udp_session(&server, &client, &cfg).expect("udp session");
        println!(
            "{label:>18}: buffered in {:>7.1} ms, goodput {:>6.1} MB/s, lost {} of {} chunks",
            m.prebuffer_time.as_secs_f64() * 1e3,
            m.goodput_mbps(),
            m.chunks_lost,
            m.chunks_received + m.chunks_lost,
        );
        results.push((label, m.prebuffer_time));
    }

    let fabric = Fabric::new(WireConfig::ten_gbe());
    let server = SocketStack::with_config(
        &fabric,
        NodeId(0),
        Default::default(),
        sock_cfg(DgramMode::SendRecv),
    );
    let client = SocketStack::with_config(
        &fabric,
        NodeId(1),
        Default::default(),
        sock_cfg(DgramMode::SendRecv),
    );
    let m = run_http_session(&server, &client, 8080, &cfg).expect("http session");
    println!(
        "{:>18}: buffered in {:>7.1} ms, goodput {:>6.1} MB/s (reliable: nothing lost)",
        "RC (HTTP)",
        m.prebuffer_time.as_secs_f64() * 1e3,
        m.goodput_mbps(),
    );

    let best_ud = results
        .iter()
        .map(|(_, t)| *t)
        .min()
        .expect("two UD results");
    let saved = 100.0 * (1.0 - best_ud.as_secs_f64() / m.prebuffer_time.as_secs_f64());
    println!(
        "\nUD buffering is {saved:.1}% faster than RC/HTTP (paper reports 74.1% on their testbed)"
    );
}
