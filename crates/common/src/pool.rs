//! Sharded buffer pool for the zero-copy datapath.
//!
//! The scatter-gather datapath still needs short-lived allocations —
//! header buffers in front of payload slices, reassembly buffers for
//! multi-fragment datagrams, rx staging — and allocating them fresh per
//! packet would trade the copy cost for allocator cost. [`BufPool`] keeps
//! per-size-class free lists behind sharded mutexes (one lock per class,
//! held for a few pointer moves) and recycles buffers even after they have
//! been frozen into immutable [`Bytes`]: freezing retains a clone of the
//! shared storage, and a later `get` reclaims any storage whose reference
//! count has dropped back to one.
//!
//! The pool also carries the datapath's copy discipline accounting:
//! [`PoolStats`] exposes hit/miss/recycle counters that
//! `iwarp-telemetry` folds into every snapshot (as `pool.hits` etc.), so
//! copy elimination is measurable rather than asserted.
//!
//! Byte-level accounting distinguishes two pools of storage that naive
//! accounting double-counts: `retained_bytes` is storage parked on free
//! lists (pool overhead — resident but serving nobody), while
//! `lent_bytes` is frozen storage whose [`Bytes`] views are still
//! in flight (working-set memory that belongs to the datapath, not the
//! pool). Snapshots report them separately (`pool.retained_bytes` /
//! `pool.in_flight_bytes`) so per-call memory figures can reconcile
//! tracked bytes against procfs RSS without counting lent buffers twice.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

/// log2 of the smallest size class (64 B — covers DDP/fragment headers).
const MIN_SHIFT: u32 = 6;
/// log2 of the largest size class (128 KiB — covers a max datagram plus
/// framing with room to spare).
const MAX_SHIFT: u32 = 17;
/// Number of size classes.
const CLASSES: usize = (MAX_SHIFT - MIN_SHIFT + 1) as usize;
/// Free buffers retained per class; beyond this, returned buffers are
/// simply dropped so an idle pool cannot pin unbounded memory.
const PER_CLASS_CAP: usize = 64;

/// Shared, monotonically increasing pool counters.
///
/// Cloneable handle onto the same cells; `iwarp-telemetry` attaches one
/// per fabric and reports it in snapshots.
#[derive(Clone, Default, Debug)]
pub struct PoolStats {
    inner: Arc<StatsInner>,
}

#[derive(Default, Debug)]
struct StatsInner {
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    /// Gauge: bytes parked on free lists (accounted at class size).
    retained_bytes: AtomicU64,
    /// Gauge: bytes of frozen storage lent out as live [`Bytes`] views.
    lent_bytes: AtomicU64,
}

impl PoolStats {
    /// Requests served from a free list or a reclaimed frozen buffer.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to fall through to the allocator.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Frozen buffers whose storage was reclaimed after every [`Bytes`]
    /// view of them was dropped.
    #[must_use]
    pub fn recycled(&self) -> u64 {
        self.inner.recycled.load(Ordering::Relaxed)
    }

    /// Gauge: bytes currently parked on free lists, i.e. pool overhead
    /// that is resident but serving no caller. Accounted at size-class
    /// granularity (a buffer in the 4 KiB class counts 4 KiB).
    #[must_use]
    pub fn retained_bytes(&self) -> u64 {
        self.inner.retained_bytes.load(Ordering::Relaxed)
    }

    /// Gauge: bytes of frozen storage whose [`Bytes`] views are still in
    /// flight. This is datapath working-set memory, **not** pool overhead
    /// — report it separately from [`PoolStats::retained_bytes`] or the
    /// same allocation gets counted twice.
    #[must_use]
    pub fn lent_bytes(&self) -> u64 {
        self.inner.lent_bytes.load(Ordering::Relaxed)
    }
}

/// Frozen entries probed for reclamation per [`BufPool::get`]. Bounds the
/// cost of a get when every lent buffer is still referenced: with a deep
/// in-flight backlog (sender far ahead of receiver) an unbounded scan
/// walks `PER_CLASS_CAP` cold `Arc`s per allocation and dominates the
/// datapath. The cursor rotates so every entry is still probed within a
/// few gets once its views drop.
const RECLAIM_SCAN: usize = 8;

/// One size class: plain free buffers plus frozen storage waiting for its
/// views to be dropped.
#[derive(Default)]
struct Shard {
    free: Vec<Vec<u8>>,
    lent: Vec<Arc<Vec<u8>>>,
    /// Rotating reclamation cursor into `lent`.
    scan: usize,
}

struct PoolInner {
    shards: Vec<Mutex<Shard>>,
    stats: PoolStats,
}

/// A sharded-mutex buffer pool handing out [`PoolBuf`] scratch buffers.
///
/// Cloning shares the pool (`Arc` bump). Requests larger than the biggest
/// size class are served straight from the allocator and never retained.
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(PoolInner {
                shards: (0..CLASSES).map(|_| Mutex::new(Shard::default())).collect(),
                stats: PoolStats::default(),
            }),
        }
    }

    /// The pool's shared counters (attach to telemetry once per fabric).
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.inner.stats.clone()
    }

    /// Size class index for a request, or `None` when it exceeds the
    /// largest pooled class.
    fn class_for(len: usize) -> Option<usize> {
        let shift = usize::BITS - len.max(1).next_power_of_two().leading_zeros() - 1;
        let shift = shift.max(MIN_SHIFT);
        (shift <= MAX_SHIFT).then(|| (shift - MIN_SHIFT) as usize)
    }

    /// Accounting unit for a class: its nominal buffer size. Buffers in a
    /// class always hold at least this capacity, so gauges move by a fixed
    /// amount per buffer regardless of the requested length.
    fn class_bytes(class: usize) -> u64 {
        1u64 << (class as u32 + MIN_SHIFT)
    }

    /// Returns a zeroed scratch buffer of exactly `len` bytes.
    ///
    /// Drop it to return the storage to the free list, or
    /// [`PoolBuf::freeze`] it into [`Bytes`] — frozen storage is reclaimed
    /// automatically once the last view is dropped.
    #[must_use]
    pub fn get(&self, len: usize) -> PoolBuf {
        let stats = &self.inner.stats.inner;
        let (vec, class) = match Self::class_for(len) {
            None => {
                stats.misses.fetch_add(1, Ordering::Relaxed);
                (Vec::with_capacity(len), None)
            }
            Some(class) => {
                let mut shard = self.inner.shards[class].lock();
                // Reclaim frozen storage whose views are all gone —
                // bounded rotating probe, not a full sweep (see
                // `RECLAIM_SCAN`).
                let mut probes = shard.lent.len().min(RECLAIM_SCAN);
                while probes > 0 && !shard.lent.is_empty() {
                    probes -= 1;
                    let i = shard.scan % shard.lent.len();
                    if Arc::strong_count(&shard.lent[i]) == 1 {
                        let arc = shard.lent.swap_remove(i);
                        stats
                            .lent_bytes
                            .fetch_sub(Self::class_bytes(class), Ordering::Relaxed);
                        if let Ok(vec) = Arc::try_unwrap(arc) {
                            stats.recycled.fetch_add(1, Ordering::Relaxed);
                            if shard.free.len() < PER_CLASS_CAP {
                                shard.free.push(vec);
                                stats
                                    .retained_bytes
                                    .fetch_add(Self::class_bytes(class), Ordering::Relaxed);
                            }
                        }
                    } else {
                        shard.scan = shard.scan.wrapping_add(1);
                    }
                }
                match shard.free.pop() {
                    Some(vec) => {
                        stats.hits.fetch_add(1, Ordering::Relaxed);
                        stats
                            .retained_bytes
                            .fetch_sub(Self::class_bytes(class), Ordering::Relaxed);
                        (vec, Some(class))
                    }
                    None => {
                        stats.misses.fetch_add(1, Ordering::Relaxed);
                        (
                            Vec::with_capacity(1usize << (class as u32 + MIN_SHIFT)),
                            Some(class),
                        )
                    }
                }
            }
        };
        let mut buf = PoolBuf {
            vec: Some(vec),
            class,
            pool: Arc::clone(&self.inner),
        };
        let v = buf.vec.as_mut().expect("freshly constructed");
        v.clear();
        v.resize(len, 0);
        buf
    }

    /// Buffers currently sitting on free lists (diagnostics/tests).
    #[must_use]
    pub fn free_buffers(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().free.len()).sum()
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("free", &self.free_buffers())
            .field("stats", &self.inner.stats)
            .finish()
    }
}

/// A mutable scratch buffer checked out of a [`BufPool`].
///
/// Dereferences to `[u8]` of the requested length (zero-filled). Either
/// drop it (storage returns to the free list) or [`PoolBuf::freeze`] it
/// into immutable [`Bytes`].
pub struct PoolBuf {
    vec: Option<Vec<u8>>,
    class: Option<usize>,
    pool: Arc<PoolInner>,
}

impl PoolBuf {
    /// Freezes into immutable [`Bytes`] without copying.
    ///
    /// For pooled classes, the pool keeps a clone of the shared storage
    /// and reclaims the allocation once every `Bytes` view (including
    /// slices) has been dropped.
    #[must_use]
    pub fn freeze(mut self) -> Bytes {
        let vec = self.vec.take().expect("freeze consumes the buffer");
        match self.class {
            None => Bytes::from(vec),
            Some(class) => {
                let arc = Arc::new(vec);
                let bytes = Bytes::from_shared(Arc::clone(&arc));
                let mut shard = self.pool.shards[class].lock();
                if shard.lent.len() < PER_CLASS_CAP {
                    shard.lent.push(arc);
                    self.pool
                        .stats
                        .inner
                        .lent_bytes
                        .fetch_add(BufPool::class_bytes(class), Ordering::Relaxed);
                }
                bytes
            }
        }
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let (Some(vec), Some(class)) = (self.vec.take(), self.class) {
            let mut shard = self.pool.shards[class].lock();
            if shard.free.len() < PER_CLASS_CAP {
                shard.free.push(vec);
                self.pool
                    .stats
                    .inner
                    .retained_bytes
                    .fetch_add(BufPool::class_bytes(class), Ordering::Relaxed);
            }
        }
    }
}

impl std::ops::Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.vec.as_deref().expect("live buffer")
    }
}

impl std::ops::DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.vec.as_deref_mut().expect("live buffer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_boundaries() {
        assert_eq!(BufPool::class_for(0), Some(0));
        assert_eq!(BufPool::class_for(1), Some(0));
        assert_eq!(BufPool::class_for(64), Some(0));
        assert_eq!(BufPool::class_for(65), Some(1));
        assert_eq!(BufPool::class_for(128), Some(1));
        assert_eq!(BufPool::class_for(1 << 17), Some(CLASSES - 1));
        assert_eq!(BufPool::class_for((1 << 17) + 1), None);
    }

    #[test]
    fn drop_returns_to_free_list_and_hits() {
        let pool = BufPool::new();
        let b = pool.get(100);
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&x| x == 0));
        drop(b);
        assert_eq!(pool.free_buffers(), 1);
        let mut b2 = pool.get(128);
        b2[0] = 7;
        assert_eq!(pool.stats().hits(), 1);
        assert_eq!(pool.stats().misses(), 1);
        // Different class → miss.
        let _b3 = pool.get(4096);
        assert_eq!(pool.stats().misses(), 2);
    }

    #[test]
    fn frozen_storage_is_recycled_after_views_drop() {
        let pool = BufPool::new();
        let mut b = pool.get(64);
        b.copy_from_slice(&[0xAB; 64]);
        let frozen = b.freeze();
        let slice = frozen.slice(8..16);
        // Views alive → a new get cannot reclaim that storage.
        let other = pool.get(64);
        assert_eq!(pool.stats().recycled(), 0);
        drop(other); // goes to free list
        drop(frozen);
        drop(slice);
        let _again = pool.get(64);
        assert_eq!(pool.stats().recycled(), 1);
        // free list had `other` plus the reclaimed storage; one was handed out.
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn oversize_requests_bypass_the_pool() {
        let pool = BufPool::new();
        let b = pool.get((1 << 17) + 1);
        assert_eq!(b.len(), (1 << 17) + 1);
        let _ = b.freeze();
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.stats().misses(), 1);
    }

    #[test]
    fn retained_vs_lent_gauges_never_double_count() {
        let pool = BufPool::new();
        let stats = pool.stats();
        // Checked out: neither retained nor lent.
        let b = pool.get(100); // 128 B class
        assert_eq!(stats.retained_bytes(), 0);
        assert_eq!(stats.lent_bytes(), 0);
        // Frozen with a live view: lent (in flight), not retained.
        let frozen = b.freeze();
        assert_eq!(stats.retained_bytes(), 0);
        assert_eq!(stats.lent_bytes(), 128);
        // Plain drop: retained.
        let b2 = pool.get(64);
        drop(b2);
        assert_eq!(stats.retained_bytes(), 64);
        assert_eq!(stats.lent_bytes(), 128);
        // Last view dropped + reclaimed on the next same-class get: the
        // storage moves from lent to retained, never both at once.
        drop(frozen);
        let b3 = pool.get(128); // reclaims, then hands the storage back out
        assert_eq!(stats.lent_bytes(), 0);
        assert_eq!(stats.retained_bytes(), 64);
        drop(b3);
        assert_eq!(stats.retained_bytes(), 64 + 128);
    }

    #[test]
    fn zeroed_even_after_reuse() {
        let pool = BufPool::new();
        let mut b = pool.get(64);
        b.copy_from_slice(&[0xFF; 64]);
        drop(b);
        let b2 = pool.get(32);
        assert!(b2.iter().all(|&x| x == 0));
        assert_eq!(b2.len(), 32);
    }
}
