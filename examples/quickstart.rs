//! Quickstart: the datagram-iWARP API in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's core ideas end to end:
//! 1. two-sided send/recv over an unreliable-datagram (UD) queue pair,
//!    with the source address reported in the completion;
//! 2. **RDMA Write-Record** — the paper's one-sided write whose completion
//!    is logged at the *target*, no posted receive required;
//! 3. partial placement under packet loss, read back via the validity map;
//! 4. the reliable-connection (RC) baseline for comparison.

use std::time::Duration;

use datagram_iwarp::net::{Addr, Fabric, LossModel, NodeId, WireConfig};
use datagram_iwarp::verbs::wr::RecvWr;
use datagram_iwarp::verbs::{Access, Cq, CqeStatus, Device, QpConfig};

const TIMEOUT: Duration = Duration::from_secs(5);

fn main() {
    // ------------------------------------------------------------------
    // Substrate: an in-memory Ethernet fabric. Two "machines" attach.
    // ------------------------------------------------------------------
    let fabric = Fabric::loopback();
    let client_dev = Device::new(&fabric, NodeId(0));
    let server_dev = Device::new(&fabric, NodeId(1));

    // ------------------------------------------------------------------
    // 1. UD send/recv: connectionless two-sided messaging.
    // ------------------------------------------------------------------
    let (c_send, c_recv) = (Cq::new(64), Cq::new(64));
    let (s_send, s_recv) = (Cq::new(64), Cq::new(64));
    let client = client_dev
        .create_ud_qp(None, &c_send, &c_recv, QpConfig::default())
        .expect("client QP");
    let server = server_dev
        .create_ud_qp(Some(7000), &s_send, &s_recv, QpConfig::default())
        .expect("server QP");

    // The server posts a receive buffer, the client sends to the server's
    // (address, QP) — no connection anywhere.
    let sink = server_dev.register(4096, Access::Local);
    server.post_recv(RecvWr::whole(1, &sink)).expect("post recv");
    client
        .post_send(2, &b"hello over unreliable datagrams"[..], server.dest())
        .expect("post send");

    let cqe = s_recv.poll_timeout(TIMEOUT).expect("recv completion");
    let src = cqe.src.expect("datagram completions carry the source");
    println!(
        "UD send/recv: {} bytes from {} (QP {}): {:?}",
        cqe.byte_len,
        src.addr,
        src.qpn,
        String::from_utf8_lossy(&sink.read_vec(0, cqe.byte_len as usize).unwrap())
    );

    // ------------------------------------------------------------------
    // 2. RDMA Write-Record: one-sided, target-logged.
    // ------------------------------------------------------------------
    // The target registers a remote-writable region and advertises
    // (stag, offset) — here simply shared in-process.
    let window = server_dev.register(1 << 20, Access::RemoteWrite);
    client
        .post_write_record(
            3,
            &b"placed directly into registered memory"[..],
            server.dest(),
            window.stag(),
            128,
        )
        .expect("write-record");

    // No receive was posted: the completion is unsolicited at the target.
    let cqe = s_recv.poll_timeout(TIMEOUT).expect("write-record completion");
    let info = cqe.write_record.expect("write-record info");
    println!(
        "Write-Record: {} valid bytes at sink offset {}, complete = {}",
        info.valid_bytes(),
        info.base_to,
        info.is_complete()
    );

    // ------------------------------------------------------------------
    // 3. Partial placement under loss: the validity map in action.
    // ------------------------------------------------------------------
    let lossy = Fabric::new(WireConfig {
        loss: LossModel::bernoulli(0.02),
        seed: 7,
        ..WireConfig::default()
    });
    let lc_dev = Device::new(&lossy, NodeId(0));
    let ls_dev = Device::new(&lossy, NodeId(1));
    let (lc_s, lc_r) = (Cq::new(64), Cq::new(64));
    let (ls_s, ls_r) = (Cq::new(64), Cq::new(64));
    let lc = lc_dev.create_ud_qp(None, &lc_s, &lc_r, QpConfig::default()).unwrap();
    let ls = ls_dev.create_ud_qp(None, &ls_s, &ls_r, QpConfig::default()).unwrap();
    let big_sink = ls_dev.register(1 << 20, Access::RemoteWrite);

    // A 1 MiB message = sixteen 64 KiB datagrams; at 2% wire loss some
    // datagrams usually vanish, and the completion declares what survived.
    let big = vec![0xEDu8; 1 << 20];
    for attempt in 0..20 {
        lc.post_write_record(4, big.clone(), ls.dest(), big_sink.stag(), 0)
            .expect("large write-record");
        match ls_r.poll_timeout(Duration::from_secs(2)) {
            Ok(cqe) => {
                let info = cqe.write_record.expect("info");
                match cqe.status {
                    CqeStatus::Success => {
                        println!("lossy fabric, attempt {attempt}: whole 1 MiB arrived");
                    }
                    CqeStatus::Partial => {
                        let gaps = info.validity.gaps(u64::from(info.total_len));
                        println!(
                            "lossy fabric, attempt {attempt}: partial placement — {} of {} bytes valid, {} gap(s); first gap [{}, {})",
                            info.valid_bytes(),
                            info.total_len,
                            gaps.len(),
                            gaps[0].start,
                            gaps[0].end
                        );
                        break;
                    }
                    other => println!("unexpected status {other:?}"),
                }
            }
            Err(_) => {
                // The final datagram was lost: the whole message is gone
                // (paper §VI.A.2) — the record table reaps it silently.
                println!("lossy fabric, attempt {attempt}: final segment lost, no completion");
            }
        }
    }

    // ------------------------------------------------------------------
    // 4. The RC baseline: connection + MPA negotiation, then send/recv.
    // ------------------------------------------------------------------
    let listener = server_dev.rc_listen(7001).expect("listen");
    let rc_pair = std::thread::scope(|s| {
        let srv = s.spawn(|| {
            listener
                .accept(TIMEOUT, &s_send, &s_recv, QpConfig::default())
                .expect("accept")
        });
        let rc_client = client_dev
            .rc_connect(Addr::new(1, 7001), &c_send, &c_recv, QpConfig::default())
            .expect("connect");
        (rc_client, srv.join().expect("server"))
    });
    let (rc_client, rc_server) = rc_pair;
    let rc_sink = server_dev.register(4096, Access::Local);
    rc_server.post_recv(RecvWr::whole(9, &rc_sink)).expect("post");
    rc_client
        .post_send(10, &b"same verbs, reliable connection"[..])
        .expect("send");
    let cqe = s_recv.poll_timeout(TIMEOUT).expect("rc recv");
    println!(
        "RC send/recv (QP {} ↔ QP {}): {} bytes over the MPA-framed stream",
        rc_client.qpn(),
        rc_server.qpn(),
        cqe.byte_len
    );

    println!("\nquickstart complete — see examples/media_streaming.rs next");
}
