//! Edge-case tests for the socket shim.

use std::time::Duration;

use iwarp::QpConfig;
use iwarp_socket::{DgramMode, SocketConfig, SocketStack};
use simnet::{Fabric, LossModel, NodeId, WireConfig};

const TO: Duration = Duration::from_secs(5);

#[test]
fn truncating_recv_buffer_returns_prefix() {
    // Like recvfrom with a short buffer: the datagram is truncated.
    let fab = Fabric::loopback();
    let sa = SocketStack::new(&fab, NodeId(0));
    let sb = SocketStack::new(&fab, NodeId(1));
    let a = sa.dgram().unwrap();
    let b = sb.dgram().unwrap();
    a.send_to(b"0123456789", b.local_addr()).unwrap();
    let mut small = [0u8; 4];
    let (n, _) = b.recv_from(&mut small, TO).unwrap();
    assert_eq!(n, 4);
    assert_eq!(&small, b"0123");
}

#[test]
fn write_record_mode_oversized_message_degrades_like_udp() {
    // Messages beyond the ring slots take the two-sided fallback; if they
    // also exceed the receive slots, they drop (UDP truncation semantics)
    // and the socket keeps working.
    let fab = Fabric::loopback();
    let cfg = SocketConfig {
        mode: DgramMode::WriteRecord,
        recv_slots: 8,
        slot_size: 2048,
        ..SocketConfig::default()
    };
    let sa = SocketStack::with_config(&fab, NodeId(0), Default::default(), cfg.clone());
    let sb = SocketStack::with_config(&fab, NodeId(1), Default::default(), cfg);
    let a = sa.dgram().unwrap();
    let b = sb.dgram().unwrap();
    std::thread::scope(|s| {
        let recv = s.spawn(|| {
            let mut buf = vec![0u8; 4096];
            let (n1, _) = b.recv_from(&mut buf, TO).unwrap();
            let first = buf[..n1].to_vec();
            let (n2, _) = b.recv_from(&mut buf, TO).unwrap();
            (first, buf[..n2].to_vec())
        });
        std::thread::sleep(Duration::from_millis(20));
        a.send_to(b"small fits the ring", b.local_addr()).unwrap();
        // Too big for ring AND recv slots: silently dropped at receiver.
        a.send_to(&vec![0x42u8; 4000], b.local_addr()).unwrap();
        // A follow-up small message still arrives (socket healthy).
        std::thread::sleep(Duration::from_millis(50));
        a.send_to(b"still alive", b.local_addr()).unwrap();
        let (first, second) = recv.join().unwrap();
        assert_eq!(first, b"small fits the ring");
        assert_eq!(second, b"still alive");
    });
    assert_eq!(b.stats().oversized_dropped, 1);
}

#[test]
fn dgram_loss_surfaces_as_missing_datagrams_not_errors() {
    let fab = Fabric::new(WireConfig {
        loss: LossModel::bernoulli(0.3),
        seed: 5,
        ..WireConfig::default()
    });
    let sa = SocketStack::new(&fab, NodeId(0));
    let sb = SocketStack::new(&fab, NodeId(1));
    let a = sa.dgram().unwrap();
    let b = sb.dgram().unwrap();
    for i in 0..50u8 {
        a.send_to(&[i], b.local_addr()).unwrap();
    }
    let mut got = 0;
    let mut buf = [0u8; 8];
    while b.recv_from(&mut buf, Duration::from_millis(100)).is_ok() {
        got += 1;
    }
    assert!(got > 0 && got < 50, "got {got}/50 at 30% loss");
}

#[test]
fn stream_socket_interleaved_bidirectional() {
    let fab = Fabric::loopback();
    let sa = SocketStack::new(&fab, NodeId(0));
    let sb = SocketStack::new(&fab, NodeId(1));
    let listener = sb.listen(8200).unwrap();
    std::thread::scope(|s| {
        let srv = s.spawn(|| listener.accept(TO).unwrap());
        let client = sa.connect(simnet::Addr::new(1, 8200)).unwrap();
        let server = srv.join().unwrap();
        for i in 0..20u8 {
            client.send(&[i; 100]).unwrap();
            let mut buf = [0u8; 100];
            server.recv_exact(&mut buf, TO).unwrap();
            assert!(buf.iter().all(|&x| x == i));
            server.send(&[i.wrapping_add(1); 50]).unwrap();
            let mut back = [0u8; 50];
            client.recv_exact(&mut back, TO).unwrap();
            assert!(back.iter().all(|&x| x == i.wrapping_add(1)));
        }
    });
}

#[test]
fn poll_mode_sockets_spawn_no_threads() {
    // Count threads before and after creating 50 poll-mode sockets.
    let count_threads = || -> usize {
        std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
    };
    let fab = Fabric::loopback();
    let cfg = SocketConfig {
        recv_slots: 2,
        slot_size: 512,
        qp: QpConfig {
            poll_mode: true,
            ..QpConfig::default()
        },
        ..SocketConfig::default()
    };
    let stack = SocketStack::with_config(&fab, NodeId(0), Default::default(), cfg);
    let before = count_threads();
    let socks: Vec<_> = (0..50).map(|_| stack.dgram().unwrap()).collect();
    let after = count_threads();
    assert_eq!(after, before, "poll-mode sockets must not spawn threads");
    drop(socks);
}

#[test]
fn threaded_sockets_do_spawn_engines() {
    let count_threads = || -> usize {
        std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
    };
    let fab = Fabric::loopback();
    let stack = SocketStack::new(&fab, NodeId(0)); // threaded default
    let before = count_threads();
    let _s1 = stack.dgram().unwrap();
    let _s2 = stack.dgram().unwrap();
    let after = count_threads();
    assert!(after >= before + 2, "threaded sockets spawn RX engines");
}
