//! Registered memory: STags, memory regions and the MR table.
//!
//! iWARP's tagged model steers incoming data directly into application
//! memory named by a *steering tag* (STag) plus offset — no intermediate
//! copies ("zero copy"). That is inherently a shared-memory discipline:
//! the protocol engine writes into a buffer the application also holds.
//! Real RNIC hardware does this by DMA; in this software stack the RX
//! engine thread plays the DMA engine.
//!
//! # Safety model
//!
//! [`MemoryRegion`] wraps its storage in an `UnsafeCell` and hands out
//! *copying* accessors only. The `unsafe` blocks below are sound because:
//!
//! 1. every access is bounds-checked against the registration before the
//!    raw pointer is formed;
//! 2. writers (the engine) and readers (the application) may race on
//!    *content* — exactly as on real RDMA hardware, where a remote write
//!    racing a local read yields unspecified bytes — but never on
//!    *allocation*: the buffer is allocated once at registration and freed
//!    only when the last `Arc` drops, so no access is ever out of bounds
//!    or use-after-free;
//! 3. torn reads are prevented from becoming UB by routing all raw access
//!    through `ptr::copy_nonoverlapping` on `u8`, never through references
//!    to the overlapping range.
//!
//! Applications that follow the RDMA completion discipline (only read
//! ranges a completion/validity map declared valid) observe fully
//! consistent data, because the engine finishes its copy and releases the
//! CQ lock (a release/acquire pair) before the completion is visible.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use iwarp_common::validity::{Interval, ValidityMap};
use parking_lot::{Mutex, RwLock};

use crate::error::{IwarpError, IwarpResult};

/// Access rights attached to a registration, mirroring iWARP MR rights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Local use only (send sources, receive sinks).
    Local,
    /// Remote peers may RDMA-Write (and Write-Record) into this region.
    RemoteWrite,
    /// Remote peers may RDMA-Read from this region.
    RemoteRead,
    /// Both remote read and remote write.
    RemoteReadWrite,
}

impl Access {
    /// True if remote writes are permitted.
    #[must_use]
    pub fn allows_remote_write(self) -> bool {
        matches!(self, Access::RemoteWrite | Access::RemoteReadWrite)
    }

    /// True if remote reads are permitted.
    #[must_use]
    pub fn allows_remote_read(self) -> bool {
        matches!(self, Access::RemoteRead | Access::RemoteReadWrite)
    }
}

struct MrInner {
    stag: u32,
    access: Access,
    storage: UnsafeCell<Box<[u8]>>,
    len: usize,
    /// Opt-in placement tracking: `Some` aggregates every byte range the
    /// engine (or the application) writes into a region-wide validity map,
    /// so consumers can enumerate holes without probing per offset.
    tracking: Mutex<Option<ValidityMap>>,
}

// SAFETY: all access to `storage` goes through the bounds-checked copying
// accessors below (see the module-level safety model). The type exposes no
// references into the cell.
unsafe impl Sync for MrInner {}
unsafe impl Send for MrInner {}

/// A registered memory region, addressable by remote peers via its STag.
///
/// Cloning is cheap (reference counted); all clones alias the same bytes.
#[derive(Clone)]
pub struct MemoryRegion {
    inner: Arc<MrInner>,
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("stag", &self.inner.stag)
            .field("len", &self.inner.len)
            .field("access", &self.inner.access)
            .finish()
    }
}

impl MemoryRegion {
    fn new(stag: u32, len: usize, access: Access) -> Self {
        Self {
            inner: Arc::new(MrInner {
                stag,
                access,
                storage: UnsafeCell::new(vec![0u8; len].into_boxed_slice()),
                len,
                tracking: Mutex::new(None),
            }),
        }
    }

    /// The steering tag identifying this region on the wire.
    #[must_use]
    pub fn stag(&self) -> u32 {
        self.inner.stag
    }

    /// Registered length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True for zero-length registrations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Access rights of this registration.
    #[must_use]
    pub fn access(&self) -> Access {
        self.inner.access
    }

    fn check(&self, offset: u64, len: usize) -> IwarpResult<usize> {
        let off = usize::try_from(offset).map_err(|_| IwarpError::AccessViolation {
            stag: self.inner.stag,
            offset,
            len: len as u32,
        })?;
        if off.checked_add(len).is_none_or(|end| end > self.inner.len) {
            return Err(IwarpError::AccessViolation {
                stag: self.inner.stag,
                offset,
                len: len as u32,
            });
        }
        Ok(off)
    }

    /// Places `data` at `offset` (the engine-side "DMA write").
    ///
    /// Bounds-checked; returns [`IwarpError::AccessViolation`] rather than
    /// touching memory outside the registration.
    pub fn write(&self, offset: u64, data: &[u8]) -> IwarpResult<()> {
        let off = self.check(offset, data.len())?;
        // SAFETY: `off + data.len() <= len` was just checked; the buffer
        // lives as long as `self`; byte-wise copy tolerates racing readers
        // (see module-level safety model).
        unsafe {
            let base = (*self.inner.storage.get()).as_mut_ptr();
            std::ptr::copy_nonoverlapping(data.as_ptr(), base.add(off), data.len());
        }
        self.note_placed(offset, data.len());
        Ok(())
    }

    /// Places `data` at `offset` while resolving a deferred CRC check —
    /// the fused verify-then-place for the datapath's one mandatory copy.
    ///
    /// Bounds are checked before any byte moves, and the digest settles
    /// *before* any byte is placed (store-and-verify semantics): on
    /// [`IwarpError::CrcMismatch`] the region is untouched. This matters
    /// under duplication — a corrupted duplicate of an already-placed,
    /// already-validated segment must not clobber the validated bytes,
    /// since the validity record naming that range stays visible to the
    /// application. Cut-through placement (bytes first, verdict after)
    /// would break exactly that invariant.
    ///
    /// The digest pass and the copy pass both traverse `data` in page-
    /// sized runs; the source stays L1/L2-hot between the two passes, so
    /// the cost over single-traversal cut-through is one extra warm read.
    pub fn write_with_crc(
        &self,
        offset: u64,
        data: &[u8],
        pending: &crate::hdr::PendingCrc,
    ) -> IwarpResult<()> {
        let off = self.check(offset, data.len())?;
        let mut state = pending.state();
        state.update(data);
        if state.finish() != pending.expected() {
            return Err(IwarpError::CrcMismatch);
        }
        // SAFETY: `off + data.len() <= len` was just checked; the buffer
        // lives as long as `self`; byte-wise copy tolerates racing readers
        // (see module-level safety model).
        unsafe {
            let base = (*self.inner.storage.get()).as_mut_ptr().add(off);
            std::ptr::copy_nonoverlapping(data.as_ptr(), base, data.len());
        }
        self.note_placed(offset, data.len());
        Ok(())
    }

    /// Copies `buf.len()` bytes starting at `offset` out of the region.
    pub fn read_into(&self, offset: u64, buf: &mut [u8]) -> IwarpResult<()> {
        let off = self.check(offset, buf.len())?;
        // SAFETY: bounds checked above; see module-level safety model.
        unsafe {
            let base = (*self.inner.storage.get()).as_ptr();
            std::ptr::copy_nonoverlapping(base.add(off), buf.as_mut_ptr(), buf.len());
        }
        Ok(())
    }

    /// Copies a range out of the region into a fresh vector.
    pub fn read_vec(&self, offset: u64, len: usize) -> IwarpResult<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read_into(offset, &mut v)?;
        Ok(v)
    }

    /// Copies a range into [`bytes::Bytes`] (used by the TX engines to
    /// snapshot send payloads).
    pub fn read_bytes(&self, offset: u64, len: usize) -> IwarpResult<bytes::Bytes> {
        Ok(bytes::Bytes::from(self.read_vec(offset, len)?))
    }

    /// Fills the whole region with `byte` (test helper).
    pub fn fill(&self, byte: u8) {
        let v = vec![byte; self.inner.len];
        self.write(0, &v).expect("full-region write is in bounds");
    }

    fn note_placed(&self, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let mut t = self.inner.tracking.lock();
        if let Some(map) = t.as_mut() {
            map.record(offset, len as u64);
        }
    }

    /// Enables region-wide placement tracking, resetting any prior state:
    /// from this call on, every successful [`Self::write`] /
    /// [`Self::write_with_crc`] — including one-sided placement done by
    /// the RX engine — is aggregated into a validity map that
    /// [`Self::holes`] and [`Self::validity`] expose. Bytes written
    /// *before* this call (initial zero fill, sentinel fills) do not
    /// count as valid.
    pub fn track_validity(&self) {
        *self.inner.tracking.lock() = Some(ValidityMap::new());
    }

    /// True once [`Self::track_validity`] has been called.
    #[must_use]
    pub fn is_tracking_validity(&self) -> bool {
        self.inner.tracking.lock().is_some()
    }

    /// Snapshot of the tracked validity map (`None` when tracking is off).
    #[must_use]
    pub fn validity(&self) -> Option<ValidityMap> {
        self.inner.tracking.lock().clone()
    }

    /// Enumerates the invalid byte ranges (holes) in `[0, high_water)` —
    /// the ranges a reconciliation pass must re-fetch. This is the
    /// direct replacement for probing validity per offset: one call, one
    /// lock round, sorted disjoint intervals out.
    ///
    /// With tracking disabled nothing is known to be valid, so the whole
    /// of `[0, high_water)` is reported as one hole.
    #[must_use]
    pub fn holes(&self, high_water: u64) -> Vec<Interval> {
        if high_water == 0 {
            return Vec::new();
        }
        match self.inner.tracking.lock().as_ref() {
            Some(map) => map.gaps(high_water),
            None => vec![Interval::new(0, high_water)],
        }
    }

    /// True when every byte of `[start, end)` has been placed since
    /// tracking was enabled (false whenever tracking is off and the
    /// range is non-empty).
    #[must_use]
    pub fn valid_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        self.inner
            .tracking
            .lock()
            .as_ref()
            .is_some_and(|m| m.contains_range(start, end))
    }
}

/// The registration table: STag → region, shared by all QPs of a device.
///
/// "The receiving machine enforces the requirement that the requested
/// memory location must be registered with the device as a valid memory
/// region before placing the data" (paper §II) — [`MrTable::lookup_remote_write`]
/// and friends are that enforcement point.
#[derive(Default)]
pub struct MrTable {
    regions: RwLock<HashMap<u32, MemoryRegion>>,
    next_stag: AtomicU32,
}

impl MrTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            regions: RwLock::new(HashMap::new()),
            next_stag: AtomicU32::new(0x100),
        }
    }

    /// Registers a fresh zeroed region of `len` bytes.
    pub fn register(&self, len: usize, access: Access) -> MemoryRegion {
        let stag = self.next_stag.fetch_add(1, Ordering::Relaxed);
        let mr = MemoryRegion::new(stag, len, access);
        self.regions.write().insert(stag, mr.clone());
        mr
    }

    /// Registers a region initialized with `data`.
    pub fn register_with(&self, data: &[u8], access: Access) -> MemoryRegion {
        let mr = self.register(data.len(), access);
        mr.write(0, data).expect("same-length write is in bounds");
        mr
    }

    /// Invalidates an STag. Subsequent lookups fail; existing clones of
    /// the region remain readable locally (they share the allocation).
    pub fn invalidate(&self, stag: u32) -> IwarpResult<()> {
        self.regions
            .write()
            .remove(&stag)
            .map(|_| ())
            .ok_or(IwarpError::InvalidStag(stag))
    }

    /// Looks up a region without access checks (local use).
    pub fn lookup(&self, stag: u32) -> IwarpResult<MemoryRegion> {
        self.regions
            .read()
            .get(&stag)
            .cloned()
            .ok_or(IwarpError::InvalidStag(stag))
    }

    /// Looks up a region and validates a remote-write of `len` bytes at
    /// `offset` (the tagged-placement enforcement point).
    pub fn lookup_remote_write(
        &self,
        stag: u32,
        offset: u64,
        len: usize,
    ) -> IwarpResult<MemoryRegion> {
        let mr = self.lookup(stag)?;
        if !mr.access().allows_remote_write() {
            return Err(IwarpError::AccessViolation {
                stag,
                offset,
                len: len as u32,
            });
        }
        mr.check(offset, len)?;
        Ok(mr)
    }

    /// Looks up a region and validates a remote-read.
    pub fn lookup_remote_read(
        &self,
        stag: u32,
        offset: u64,
        len: usize,
    ) -> IwarpResult<MemoryRegion> {
        let mr = self.lookup(stag)?;
        if !mr.access().allows_remote_read() {
            return Err(IwarpError::AccessViolation {
                stag,
                offset,
                len: len as u32,
            });
        }
        mr.check(offset, len)?;
        Ok(mr)
    }

    /// Number of live registrations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.read().len()
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_rw() {
        let t = MrTable::new();
        let mr = t.register(128, Access::RemoteWrite);
        mr.write(16, b"hello").unwrap();
        assert_eq!(mr.read_vec(16, 5).unwrap(), b"hello");
        assert_eq!(mr.read_vec(0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn register_with_initial_data() {
        let t = MrTable::new();
        let mr = t.register_with(b"abcdef", Access::Local);
        assert_eq!(mr.read_vec(0, 6).unwrap(), b"abcdef");
        assert_eq!(mr.len(), 6);
    }

    #[test]
    fn unique_stags() {
        let t = MrTable::new();
        let a = t.register(8, Access::Local);
        let b = t.register(8, Access::Local);
        assert_ne!(a.stag(), b.stag());
    }

    #[test]
    fn out_of_bounds_write_rejected() {
        let t = MrTable::new();
        let mr = t.register(32, Access::RemoteWrite);
        assert!(matches!(
            mr.write(30, b"xyz"),
            Err(IwarpError::AccessViolation { .. })
        ));
        assert!(matches!(
            mr.write(u64::MAX, b"x"),
            Err(IwarpError::AccessViolation { .. })
        ));
        // Boundary write succeeds.
        mr.write(29, b"xyz").unwrap();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let t = MrTable::new();
        let mr = t.register(8, Access::Local);
        assert!(mr.read_vec(8, 1).is_err());
        assert!(mr.read_vec(0, 9).is_err());
        assert!(mr.read_vec(0, 8).is_ok());
    }

    #[test]
    fn remote_write_permission_enforced() {
        let t = MrTable::new();
        let local = t.register(64, Access::Local);
        let ro = t.register(64, Access::RemoteRead);
        let rw = t.register(64, Access::RemoteReadWrite);
        assert!(t.lookup_remote_write(local.stag(), 0, 8).is_err());
        assert!(t.lookup_remote_write(ro.stag(), 0, 8).is_err());
        assert!(t.lookup_remote_write(rw.stag(), 0, 8).is_ok());
        assert!(t.lookup_remote_write(rw.stag(), 60, 8).is_err());
    }

    #[test]
    fn remote_read_permission_enforced() {
        let t = MrTable::new();
        let wo = t.register(64, Access::RemoteWrite);
        let ro = t.register(64, Access::RemoteRead);
        assert!(t.lookup_remote_read(wo.stag(), 0, 8).is_err());
        assert!(t.lookup_remote_read(ro.stag(), 0, 8).is_ok());
    }

    #[test]
    fn invalid_stag_lookup() {
        let t = MrTable::new();
        assert_eq!(t.lookup(0xDEAD).unwrap_err(), IwarpError::InvalidStag(0xDEAD));
    }

    #[test]
    fn invalidate_removes() {
        let t = MrTable::new();
        let mr = t.register(8, Access::Local);
        t.invalidate(mr.stag()).unwrap();
        assert!(t.lookup(mr.stag()).is_err());
        assert!(t.invalidate(mr.stag()).is_err());
        // The clone we hold still works locally.
        mr.write(0, b"x").unwrap();
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let t = MrTable::new();
        let mr = t.register(8 * 1024, Access::RemoteWrite);
        std::thread::scope(|s| {
            for i in 0..8usize {
                let mr = mr.clone();
                s.spawn(move || {
                    let chunk = vec![i as u8; 1024];
                    mr.write((i * 1024) as u64, &chunk).unwrap();
                });
            }
        });
        for i in 0..8usize {
            let got = mr.read_vec((i * 1024) as u64, 1024).unwrap();
            assert!(got.iter().all(|&b| b == i as u8), "chunk {i}");
        }
    }

    #[test]
    fn fused_crc_write_places_and_verifies() {
        use crate::hdr::{
            decode_sg, encode_tagged_sg, DdpSegment, RdmapOpcode, TaggedHdr,
        };
        let pool = iwarp_common::pool::BufPool::new();
        let payload: Vec<u8> = (0..9000u32).map(|i| (i % 253) as u8).collect();
        let hdr = TaggedHdr {
            opcode: RdmapOpcode::WriteRecord,
            last: true,
            notify: true,
            stag: 1,
            to: 64,
            base_to: 64,
            total_len: payload.len() as u32,
            src_qpn: 3,
            msg_id: 11,
            imm: 0,
        };
        let sg = encode_tagged_sg(&hdr, &bytes::Bytes::from(payload.clone()), &pool);
        let (seg, pending) = decode_sg(&sg, true).unwrap();
        let pending = pending.expect("multi-part defers the CRC");
        let DdpSegment::Tagged { payload: p, .. } = seg else {
            panic!("tagged expected")
        };

        let t = MrTable::new();
        let mr = t.register(16 * 1024, Access::RemoteWrite);
        mr.write_with_crc(64, &p, &pending).unwrap();
        assert_eq!(mr.read_vec(64, payload.len()).unwrap(), payload);

        // Corrupt payload: the check fails and — store-and-verify — the
        // previously validated bytes are untouched.
        let mut bad = p.to_vec();
        bad[100] ^= 0x80;
        assert_eq!(
            mr.write_with_crc(64, &bad, &pending).unwrap_err(),
            IwarpError::CrcMismatch
        );
        assert_eq!(
            mr.read_vec(64, payload.len()).unwrap(),
            payload,
            "failed CRC write must not clobber validated bytes"
        );
        // Out of bounds is refused before any byte moves.
        assert!(matches!(
            mr.write_with_crc(16 * 1024 - 8, &p, &pending).unwrap_err(),
            IwarpError::AccessViolation { .. }
        ));
    }

    #[test]
    fn holes_untracked_and_empty_map() {
        let t = MrTable::new();
        let mr = t.register(256, Access::RemoteWrite);
        // Tracking off: everything below high water is one hole.
        assert!(!mr.is_tracking_validity());
        assert_eq!(mr.holes(100), vec![Interval::new(0, 100)]);
        assert!(!mr.valid_range(0, 1));
        assert!(mr.validity().is_none());
        // Tracking on, nothing placed yet: same single hole, empty map.
        mr.track_validity();
        assert!(mr.is_tracking_validity());
        assert_eq!(mr.holes(100), vec![Interval::new(0, 100)]);
        assert!(mr.validity().unwrap().is_empty());
        assert_eq!(mr.holes(0), Vec::new());
        assert!(mr.valid_range(5, 5), "empty range is trivially valid");
    }

    #[test]
    fn holes_full_map() {
        let t = MrTable::new();
        let mr = t.register(256, Access::RemoteWrite);
        // Pre-tracking fills must not count as valid.
        mr.fill(0xA5);
        mr.track_validity();
        assert_eq!(mr.holes(256), vec![Interval::new(0, 256)]);
        mr.write(0, &[1u8; 256]).unwrap();
        assert_eq!(mr.holes(256), Vec::new());
        assert!(mr.valid_range(0, 256));
        assert!(mr.validity().unwrap().covers(256));
        // High water below the valid run still reports no holes.
        assert_eq!(mr.holes(100), Vec::new());
    }

    #[test]
    fn holes_fragmented_map() {
        let t = MrTable::new();
        let mr = t.register(1024, Access::RemoteWrite);
        mr.track_validity();
        // Out-of-order, overlapping, and duplicate placements — the
        // union is what matters.
        mr.write(512, &[2u8; 128]).unwrap();
        mr.write(0, &[1u8; 100]).unwrap();
        mr.write(50, &[3u8; 50]).unwrap(); // duplicate tail of run 1
        mr.write(512, &[2u8; 128]).unwrap(); // exact duplicate
        assert_eq!(
            mr.holes(1024),
            vec![Interval::new(100, 512), Interval::new(640, 1024)]
        );
        // High water inside a hole truncates it ...
        assert_eq!(mr.holes(200), vec![Interval::new(100, 200)]);
        // ... and inside a valid run hides everything past it.
        assert_eq!(mr.holes(60), Vec::new());
        assert!(mr.valid_range(0, 100));
        assert!(!mr.valid_range(0, 101));
        assert!(mr.valid_range(512, 640));
        // Bridge the first gap; holes coalesce away.
        mr.write(100, &[4u8; 412]).unwrap();
        assert_eq!(mr.holes(640), Vec::new());
        assert_eq!(mr.holes(1024), vec![Interval::new(640, 1024)]);
    }

    #[test]
    fn tracking_ignores_failed_writes() {
        let t = MrTable::new();
        let mr = t.register(64, Access::RemoteWrite);
        mr.track_validity();
        assert!(mr.write(60, &[0u8; 8]).is_err());
        assert_eq!(mr.holes(64), vec![Interval::new(0, 64)]);
        // track_validity() again resets the map.
        mr.write(0, &[1u8; 64]).unwrap();
        assert!(mr.valid_range(0, 64));
        mr.track_validity();
        assert_eq!(mr.holes(64), vec![Interval::new(0, 64)]);
    }

    #[test]
    fn zero_length_region() {
        let t = MrTable::new();
        let mr = t.register(0, Access::Local);
        assert!(mr.is_empty());
        assert!(mr.write(0, &[]).is_ok());
        assert!(mr.write(0, b"x").is_err());
    }
}
