//! End-to-end tests of the streaming bulk-read engine: batching, the
//! selective-signal discipline, loss recovery through the cc scoreboard,
//! and the error-surfacing contract for unsignaled reads.

use std::time::Duration;

use iwarp::read::{BulkRead, BulkReadConfig, RecoveryConfig, SignalInterval};
use iwarp::{Access, Cq, CqeStatus, Device, QpConfig};
use simnet::{Fabric, LossModel, NodeId, WireConfig};

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 251) as u8).collect()
}

fn poll_cfg() -> QpConfig {
    QpConfig {
        poll_mode: true,
        read_ttl: Duration::from_secs(10),
        ..QpConfig::default()
    }
}

/// A poll-mode requester/responder pair; the requester's receive CQ is
/// deliberately small so the signaling admission rule is live.
fn read_pair(fab: &Fabric, recv_cq_cap: usize) -> (iwarp::UdQp, iwarp::UdQp, Device, Device, Cq) {
    let a = Device::new(fab, NodeId(0));
    let b = Device::new(fab, NodeId(1));
    let a_recv = Cq::new(recv_cq_cap);
    let qa = a
        .create_ud_qp(None, &Cq::new(1024), &a_recv, poll_cfg())
        .unwrap();
    let qb = b
        .create_ud_qp(None, &Cq::new(1024), &Cq::new(1024), poll_cfg())
        .unwrap();
    (qa, qb, a, b, a_recv)
}

#[test]
fn lossless_lastonly_transfer_is_complete_and_quiet() {
    let fab = Fabric::loopback();
    let (qa, qb, a, b, a_recv) = read_pair(&fab, 4);

    let data = pattern(1 << 20);
    let src = b.register_with(&data, Access::RemoteRead);
    let sink = a.register(data.len(), Access::Local);

    let cfg = BulkReadConfig {
        batch_bytes: 64 * 1024,
        window: 8,
        signal: SignalInterval::LastOnly,
        ..BulkReadConfig::default()
    };
    let mut xfer = BulkRead::new(cfg, &sink, 0, data.len() as u64, qb.dest(), src.stag(), 0);
    let report = xfer
        .run(&qa, &qb, Duration::from_secs(30))
        .expect("transfer");

    assert!(!report.dead);
    assert_eq!(report.bytes, data.len() as u64);
    assert_eq!(report.batches, 16);
    assert_eq!(report.reposts, 0, "loopback is lossless");
    assert_eq!(sink.read_vec(0, data.len()).unwrap(), data);
    // All but the final batch retired silently.
    assert_eq!(a_recv.unsignaled_retired(), 15);
    assert_eq!(a_recv.overflows(), 0);
    xfer.check_scoreboard().unwrap();
}

#[test]
fn every_batch_signaled_never_overflows_a_tiny_cq() {
    let fab = Fabric::loopback();
    let (qa, qb, a, b, a_recv) = read_pair(&fab, 2);

    let data = pattern(256 * 1024);
    let src = b.register_with(&data, Access::RemoteRead);
    let sink = a.register(data.len(), Access::Local);

    let cfg = BulkReadConfig {
        batch_bytes: 16 * 1024,
        window: 16,
        signal: SignalInterval::Every(1),
        ..BulkReadConfig::default()
    };
    let mut xfer = BulkRead::new(cfg, &sink, 0, data.len() as u64, qb.dest(), src.stag(), 0);
    let report = xfer
        .run(&qa, &qb, Duration::from_secs(30))
        .expect("transfer");

    assert!(!report.dead);
    assert_eq!(sink.read_vec(0, data.len()).unwrap(), data);
    // The admission rule kept outstanding signaled reads within the CQ:
    // nothing was ever dropped.
    assert_eq!(a_recv.overflows(), 0);
    assert_eq!(a_recv.unsignaled_retired(), 0);
}

#[test]
fn lossy_transfer_recovers_through_the_scoreboard() {
    let fab = Fabric::new(WireConfig {
        loss: LossModel::Bernoulli { rate: 0.02 },
        seed: 0xB17C_4EAD,
        ..WireConfig::default()
    });
    let (qa, qb, a, b, _a_recv) = read_pair(&fab, 8);

    let data = pattern(512 * 1024);
    let src = b.register_with(&data, Access::RemoteRead);
    let sink = a.register(data.len(), Access::Local);

    let cfg = BulkReadConfig {
        batch_bytes: 16 * 1024,
        window: 8,
        signal: SignalInterval::Every(2),
        recovery: RecoveryConfig {
            initial_rto: Duration::from_millis(30),
            min_rto: Duration::from_millis(10),
            ..RecoveryConfig::default()
        },
        ..BulkReadConfig::default()
    };
    let mut xfer = BulkRead::new(cfg, &sink, 0, data.len() as u64, qb.dest(), src.stag(), 0);
    let report = xfer
        .run(&qa, &qb, Duration::from_secs(60))
        .expect("transfer survives 2% loss");

    assert!(!report.dead);
    assert_eq!(report.bytes, data.len() as u64);
    assert!(report.reposts >= 1, "2% loss over ~360 datagrams must hit");
    assert_eq!(sink.read_vec(0, data.len()).unwrap(), data);
    xfer.check_scoreboard().unwrap();
}

#[test]
fn dead_peer_is_reported_not_spun_on() {
    // Requests vanish into a fully lossy wire: every batch exhausts its
    // retry budget and the transfer must finish with `dead`.
    let fab = Fabric::new(WireConfig {
        loss: LossModel::Bernoulli { rate: 1.0 },
        seed: 1,
        ..WireConfig::default()
    });
    let (qa, qb, a, b, _a_recv) = read_pair(&fab, 4);
    let src = b.register_with(&pattern(64 * 1024), Access::RemoteRead);
    let sink = a.register(64 * 1024, Access::Local);

    let cfg = BulkReadConfig {
        batch_bytes: 16 * 1024,
        window: 4,
        signal: SignalInterval::LastOnly,
        recovery: RecoveryConfig {
            initial_rto: Duration::from_millis(5),
            min_rto: Duration::from_millis(5),
            max_rto: Duration::from_millis(20),
            max_retries: 4,
            ..RecoveryConfig::default()
        },
        ..BulkReadConfig::default()
    };
    let mut xfer = BulkRead::new(cfg, &sink, 0, 64 * 1024, qb.dest(), src.stag(), 0);
    let report = xfer
        .run(&qa, &qb, Duration::from_secs(30))
        .expect("terminates");
    assert!(report.dead);
    assert!(report.bytes < 64 * 1024);
}

#[test]
fn unsignaled_read_expiry_still_surfaces_a_cqe() {
    // The error-surfacing contract: an unsignaled read whose response
    // never comes must NOT vanish silently — expiry always CQEs.
    let fab = Fabric::loopback();
    let a = Device::new(&fab, NodeId(0));
    let b = Device::new(&fab, NodeId(1));
    let a_recv = Cq::new(16);
    let cfg = QpConfig {
        read_ttl: Duration::from_millis(100),
        ..QpConfig::default()
    };
    let qa = a
        .create_ud_qp(None, &Cq::new(16), &a_recv, cfg.clone())
        .unwrap();
    let qb = b
        .create_ud_qp(None, &Cq::new(16), &Cq::new(16), cfg)
        .unwrap();

    // Local-only region: the responder denies the read, no response.
    let src = b.register(1024, Access::Local);
    let sink = a.register(1024, Access::Local);
    qa.post_read_unsignaled(42, &sink, 0, 512, qb.dest(), src.stag(), 0)
        .unwrap();

    let cqe = a_recv.poll_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(cqe.wr_id, 42);
    assert_eq!(cqe.status, CqeStatus::Expired);
    assert!(qa.take_retired_reads().is_empty(), "expiry is not a success");
}

#[test]
fn unsignaled_read_success_retires_without_cqe() {
    let fab = Fabric::loopback();
    let a = Device::new(&fab, NodeId(0));
    let b = Device::new(&fab, NodeId(1));
    let a_recv = Cq::new(16);
    let qa = a
        .create_ud_qp(None, &Cq::new(16), &a_recv, QpConfig::default())
        .unwrap();
    let qb = b
        .create_ud_qp(None, &Cq::new(16), &Cq::new(16), QpConfig::default())
        .unwrap();

    let data = pattern(10_000);
    let src = b.register_with(&data, Access::RemoteRead);
    let sink = a.register(16 * 1024, Access::Local);
    qa.post_read_unsignaled(7, &sink, 0, data.len() as u32, qb.dest(), src.stag(), 0)
        .unwrap();

    // Threaded QPs: wait for the retirement to show up.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut retired = Vec::new();
    while retired.is_empty() && std::time::Instant::now() < deadline {
        retired = qa.take_retired_reads();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(retired, vec![7]);
    assert_eq!(sink.read_vec(0, data.len()).unwrap(), data);
    assert!(a_recv.poll().is_none(), "no CQE for an unsignaled success");
    assert_eq!(a_recv.unsignaled_retired(), 1);
}
