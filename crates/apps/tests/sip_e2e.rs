//! End-to-end SIP tests: server + load generator over both transports.

use std::time::Duration;

use iwarp_apps::sip::{
    run_sip_load, SipLoadConfig, SipServer, SipServerConfig, SipTransport,
};
use iwarp_apps::sip::load::run_sip_load_with_peak_sample;
use iwarp_common::memacct::MemRegistry;
use iwarp_socket::{SocketConfig, SocketStack};
use simnet::{Addr, Fabric, NodeId};

fn poll_cfg() -> SocketConfig {
    SocketConfig {
        slot_size: 2048,
        recv_slots: 8,
        qp: iwarp::QpConfig {
            poll_mode: true,
            ..iwarp::QpConfig::default()
        },
        ..SocketConfig::default()
    }
}

fn server_stack(fab: &Fabric, reg: &MemRegistry) -> SocketStack {
    let dev_cfg = iwarp::DeviceConfig {
        mem: Some(reg.clone()),
        stream: simnet::stream::StreamConfig {
            snd_buf: 4096,
            rcv_buf: 4096,
            poll_mode: true,
            ..simnet::stream::StreamConfig::default()
        },
        ..iwarp::DeviceConfig::default()
    };
    SocketStack::with_config(fab, NodeId(1), dev_cfg, poll_cfg())
}

fn client_stack(fab: &Fabric) -> SocketStack {
    let dev_cfg = iwarp::DeviceConfig {
        stream: simnet::stream::StreamConfig {
            snd_buf: 4096,
            rcv_buf: 4096,
            poll_mode: true,
            ..simnet::stream::StreamConfig::default()
        },
        ..iwarp::DeviceConfig::default()
    };
    SocketStack::with_config(fab, NodeId(0), dev_cfg, poll_cfg())
}

#[test]
fn sip_over_ud_basic_calls() {
    let fab = Fabric::loopback();
    let reg = MemRegistry::new();
    let server = SipServer::spawn(
        server_stack(&fab, &reg),
        SipServerConfig {
            transport: SipTransport::Ud,
            port: 5060,
            call_state_bytes: 512,
        },
    )
    .unwrap();

    let clients = client_stack(&fab);
    let cfg = SipLoadConfig {
        calls: 10,
        transport: SipTransport::Ud,
        server_addr: Addr::new(1, 5060),
        timeout: Duration::from_secs(5),
        call_state_bytes: 512,
    };
    let report = run_sip_load(&clients, &cfg).unwrap();
    assert_eq!(report.calls_established, 10);
    assert!(report.response_us.median() > 0.0);

    // Every call must have been torn down.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().active_calls.load(std::sync::atomic::Ordering::Relaxed) > 0 {
        assert!(std::time::Instant::now() < deadline, "calls leaked");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.stats().invites.load(std::sync::atomic::Ordering::Relaxed),
        10
    );
    assert_eq!(
        server.stats().byes.load(std::sync::atomic::Ordering::Relaxed),
        10
    );
    server.stop().unwrap();
    // All tracked server memory released after teardown.
    assert_eq!(reg.current("sip_call"), 0);
}

#[test]
fn sip_over_rc_basic_calls() {
    let fab = Fabric::loopback();
    let reg = MemRegistry::new();
    let server = SipServer::spawn(
        server_stack(&fab, &reg),
        SipServerConfig {
            transport: SipTransport::Rc,
            port: 5061,
            call_state_bytes: 512,
        },
    )
    .unwrap();

    let clients = client_stack(&fab);
    let cfg = SipLoadConfig {
        calls: 10,
        transport: SipTransport::Rc,
        server_addr: Addr::new(1, 5061),
        timeout: Duration::from_secs(5),
        call_state_bytes: 512,
    };
    let report = run_sip_load(&clients, &cfg).unwrap();
    assert_eq!(report.calls_established, 10);
    assert_eq!(
        server.stats().invites.load(std::sync::atomic::Ordering::Relaxed),
        10
    );
    server.stop().unwrap();
}

#[test]
fn sip_memory_ud_beats_rc_at_concurrency() {
    // The Fig. 11 mechanism in miniature: at N concurrent calls the UD
    // server's instrumented memory must undercut the RC server's.
    let calls = 50;
    let measure = |transport: SipTransport, port: u16| -> u64 {
        let fab = Fabric::loopback();
        let reg = MemRegistry::new();
        let server = SipServer::spawn(
            server_stack(&fab, &reg),
            SipServerConfig {
                transport,
                port,
                call_state_bytes: 512,
            },
        )
        .unwrap();
        let clients = client_stack(&fab);
        let cfg = SipLoadConfig {
            calls,
            transport,
            server_addr: Addr::new(1, port),
            timeout: Duration::from_secs(10),
            call_state_bytes: 512,
        };
        let reg2 = reg.clone();
        let report = run_sip_load_with_peak_sample(&clients, &cfg, || {
            (reg2.total_current(), reg2.snapshot().into_iter().map(|(c, cur, _)| (c, cur)).collect())
        })
        .unwrap();
        server.stop().unwrap();
        assert_eq!(report.calls_established, calls);
        report.server_mem_bytes
    };

    let ud_mem = measure(SipTransport::Ud, 5070);
    let rc_mem = measure(SipTransport::Rc, 5071);
    assert!(
        ud_mem < rc_mem,
        "expected UD ({ud_mem}) below RC ({rc_mem})"
    );
    let improvement = (rc_mem - ud_mem) as f64 / rc_mem as f64 * 100.0;
    // The paper reports ~24% at 10k calls; at small scale just require a
    // clearly positive gap.
    assert!(improvement > 5.0, "improvement only {improvement:.1}%");
}
