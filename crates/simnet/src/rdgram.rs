//! `RdConduit` — a reliable datagram (RD) service.
//!
//! The paper's design explicitly keeps datagram-iWARP compatible with
//! *reliable* datagram lower layers: "applications that currently use TCP
//! can also be supported via a reliable UDP implementation that provides
//! the order and reliability guarantees they require" (§IV.B). This module
//! is that reliable-UDP stand-in: message-oriented like UDP, but with
//! per-peer sequencing, cumulative + selective acknowledgements,
//! retransmission and in-order delivery.
//!
//! It layers on [`DgramConduit`], so a single "RD message" still enjoys the
//! all-or-nothing fragmentation semantics of the datagram service — the RD
//! layer then recovers whole lost messages rather than fragments.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use iwarp_telemetry::{Counter, EndpointId, EventKind, Telemetry};
use parking_lot::{Condvar, Mutex};

use crate::dgram::DgramConduit;
use crate::error::{NetError, NetResult};
use crate::fabric::Fabric;
use crate::wire::{Addr, NodeId};

const TYPE_DATA: u8 = 0;
const TYPE_ACK: u8 = 1;

/// RD header: type(1) + seq(8). ACKs carry cum(8) + bitmap(8) instead.
const DATA_HEADER: usize = 9;

/// Hard cap on retransmissions of one message. Generous because a large
/// RD message rides one fragmented datagram: at 5% wire loss a 64 KiB
/// datagram (≈44 fragments) survives only ~10% of attempts, so tens of
/// retransmissions are routine, not pathological.
const MAX_RETRIES: u32 = 150;

/// Configuration of a reliable-datagram endpoint.
#[derive(Clone, Debug)]
pub struct RdConfig {
    /// Maximum unacknowledged messages per peer.
    pub window: usize,
    /// Retransmission timeout.
    pub rto: Duration,
}

impl Default for RdConfig {
    fn default() -> Self {
        Self {
            window: 64,
            rto: Duration::from_millis(20),
        }
    }
}

struct PeerTx {
    next_seq: u64,
    /// seq → (payload, last transmission time, retries).
    unacked: BTreeMap<u64, (Bytes, Instant, u32)>,
}

struct PeerRx {
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
}

struct St {
    tx: HashMap<Addr, PeerTx>,
    rx: HashMap<Addr, PeerRx>,
    ready: VecDeque<(Addr, Bytes)>,
    err: Option<NetError>,
    shutdown: bool,
}

/// Telemetry handles resolved once at bind time.
struct RdTel {
    tel: Telemetry,
    tx_msgs: Counter,
    rx_msgs: Counter,
    retransmits: Counter,
    acks_tx: Counter,
}

struct Inner {
    dg: DgramConduit,
    cfg: RdConfig,
    st: Mutex<St>,
    readable: Condvar,
    writable: Condvar,
    tel: RdTel,
}

impl Inner {
    fn send_data(&self, dst: Addr, seq: u64, payload: &Bytes) {
        let mut b = BytesMut::with_capacity(DATA_HEADER + payload.len());
        b.put_u8(TYPE_DATA);
        b.put_u64(seq);
        b.extend_from_slice(payload);
        let _ = self.dg.send_to(dst, b.freeze());
    }

    fn send_ack(&self, dst: Addr, st: &St) {
        let Some(rx) = st.rx.get(&dst) else { return };
        let mut bitmap = 0u64;
        for (&seq, _) in rx.ooo.range(rx.rcv_nxt..rx.rcv_nxt + 64) {
            bitmap |= 1 << (seq - rx.rcv_nxt);
        }
        let mut b = BytesMut::with_capacity(17);
        b.put_u8(TYPE_ACK);
        b.put_u64(rx.rcv_nxt);
        b.put_u64(bitmap);
        self.tel.acks_tx.inc();
        let _ = self.dg.send_to(dst, b.freeze());
    }

    fn on_datagram(&self, st: &mut St, src: Addr, data: &Bytes) {
        if data.is_empty() {
            return;
        }
        match data[0] {
            TYPE_DATA if data.len() >= DATA_HEADER => {
                let seq = u64::from_be_bytes(data[1..9].try_into().expect("len checked"));
                let payload = data.slice(DATA_HEADER..);
                let rx = st.rx.entry(src).or_insert(PeerRx {
                    rcv_nxt: 0,
                    ooo: BTreeMap::new(),
                });
                if seq == rx.rcv_nxt {
                    rx.rcv_nxt += 1;
                    st.ready.push_back((src, payload));
                    self.tel.rx_msgs.inc();
                    // Drain contiguous out-of-order messages.
                    let rx = st.rx.get_mut(&src).expect("present");
                    while let Some(p) = rx.ooo.remove(&rx.rcv_nxt) {
                        rx.rcv_nxt += 1;
                        st.ready.push_back((src, p));
                        self.tel.rx_msgs.inc();
                    }
                    self.readable.notify_all();
                } else if seq > rx.rcv_nxt {
                    rx.ooo.entry(seq).or_insert(payload);
                }
                // Duplicates (seq < rcv_nxt) are dropped; always re-ACK so
                // the sender learns our state.
                self.send_ack(src, st);
            }
            TYPE_ACK if data.len() >= 17 => {
                let cum = u64::from_be_bytes(data[1..9].try_into().expect("len checked"));
                let bitmap = u64::from_be_bytes(data[9..17].try_into().expect("len checked"));
                if let Some(tx) = st.tx.get_mut(&src) {
                    tx.unacked.retain(|&seq, _| {
                        if seq < cum {
                            return false;
                        }
                        let d = seq - cum;
                        !(d < 64 && bitmap & (1 << d) != 0)
                    });
                    self.writable.notify_all();
                }
            }
            _ => {}
        }
    }

    fn retransmit_due(&self, st: &mut St) {
        let now = Instant::now();
        let mut dead = false;
        for (&peer, tx) in &mut st.tx {
            for (&seq, entry) in &mut tx.unacked {
                if now.duration_since(entry.1) >= self.cfg.rto {
                    entry.1 = now;
                    entry.2 += 1;
                    if entry.2 > MAX_RETRIES {
                        dead = true;
                        break;
                    }
                    let payload = entry.0.clone();
                    self.tel.retransmits.inc();
                    if self.tel.tel.tracer().armed() {
                        let local = self.dg.local_addr();
                        self.tel.tel.tracer().record(
                            self.tel.tel.now_nanos(),
                            EndpointId::new(local.node.0, local.port),
                            EventKind::Retransmit,
                            payload.len() as u64,
                            seq,
                        );
                    }
                    let mut b = BytesMut::with_capacity(DATA_HEADER + payload.len());
                    b.put_u8(TYPE_DATA);
                    b.put_u64(seq);
                    b.extend_from_slice(&payload);
                    let _ = self.dg.send_to(peer, b.freeze());
                }
            }
        }
        if dead {
            st.err = Some(NetError::Timeout);
            self.readable.notify_all();
            self.writable.notify_all();
        }
    }
}

/// Reliable datagram endpoint: unreliable-datagram ergonomics with
/// TCP-grade delivery guarantees per peer.
pub struct RdConduit {
    inner: Arc<Inner>,
    io: Option<std::thread::JoinHandle<()>>,
}

impl RdConduit {
    /// Binds a reliable-datagram conduit at `addr`.
    pub fn bind(fabric: &Fabric, addr: Addr, cfg: RdConfig) -> NetResult<Self> {
        Self::wrap(DgramConduit::bind(fabric, addr)?, cfg)
    }

    /// Binds at an ephemeral port on `node`.
    pub fn bind_ephemeral(fabric: &Fabric, node: NodeId, cfg: RdConfig) -> NetResult<Self> {
        Self::wrap(DgramConduit::bind_ephemeral(fabric, node)?, cfg)
    }

    fn wrap(dg: DgramConduit, cfg: RdConfig) -> NetResult<Self> {
        let t = dg.fabric().telemetry().clone();
        let tel = RdTel {
            tx_msgs: t.counter("simnet.rdgram.tx_msgs"),
            rx_msgs: t.counter("simnet.rdgram.rx_msgs"),
            retransmits: t.counter("simnet.rdgram.retransmits"),
            acks_tx: t.counter("simnet.rdgram.acks_tx"),
            tel: t,
        };
        let inner = Arc::new(Inner {
            dg,
            cfg,
            tel,
            st: Mutex::new(St {
                tx: HashMap::new(),
                rx: HashMap::new(),
                ready: VecDeque::new(),
                err: None,
                shutdown: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        let io_inner = Arc::clone(&inner);
        let io = std::thread::Builder::new()
            .name("rd-io".into())
            .spawn(move || {
                loop {
                    {
                        let st = io_inner.st.lock();
                        if st.shutdown {
                            return;
                        }
                    }
                    let got = io_inner.dg.recv_from(Some(Duration::from_millis(5)));
                    let mut st = io_inner.st.lock();
                    if st.shutdown {
                        return;
                    }
                    match got {
                        Ok((src, data)) => {
                            io_inner.on_datagram(&mut st, src, &data);
                            while let Ok((src, data)) = io_inner.dg.try_recv_from() {
                                io_inner.on_datagram(&mut st, src, &data);
                            }
                        }
                        Err(NetError::Timeout) => {}
                        Err(e) => {
                            st.err = Some(e);
                            io_inner.readable.notify_all();
                            io_inner.writable.notify_all();
                            return;
                        }
                    }
                    io_inner.retransmit_due(&mut st);
                }
            })
            .expect("spawn rd io thread");
        Ok(Self {
            inner,
            io: Some(io),
        })
    }

    /// Local address.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.inner.dg.local_addr()
    }

    /// The fabric this conduit is bound on.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        self.inner.dg.fabric()
    }

    /// Largest message this conduit accepts (one datagram's worth).
    #[must_use]
    pub fn max_datagram(&self) -> usize {
        self.inner.dg.max_datagram() - DATA_HEADER
    }

    /// Sends `payload` reliably to `dst`; blocks while the per-peer window
    /// is full. Returns once the message is queued and transmitted (not
    /// once acknowledged).
    pub fn send_to(&self, dst: Addr, payload: Bytes) -> NetResult<()> {
        if payload.len() > self.max_datagram() {
            return Err(NetError::TooBig {
                len: payload.len(),
                max: self.max_datagram(),
            });
        }
        let inner = &self.inner;
        let mut st = inner.st.lock();
        loop {
            if let Some(e) = &st.err {
                return Err(e.clone());
            }
            let window = inner.cfg.window;
            let tx = st.tx.entry(dst).or_insert(PeerTx {
                next_seq: 0,
                unacked: BTreeMap::new(),
            });
            if tx.unacked.len() < window {
                let seq = tx.next_seq;
                tx.next_seq += 1;
                tx.unacked
                    .insert(seq, (payload.clone(), Instant::now(), 0));
                inner.tel.tx_msgs.inc();
                inner.send_data(dst, seq, &payload);
                return Ok(());
            }
            inner.writable.wait(&mut st);
        }
    }

    /// Receives the next in-order message from any peer.
    pub fn recv_from(&self, timeout: Option<Duration>) -> NetResult<(Addr, Bytes)> {
        let inner = &self.inner;
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = inner.st.lock();
        loop {
            if let Some(item) = st.ready.pop_front() {
                return Ok(item);
            }
            if let Some(e) = &st.err {
                return Err(e.clone());
            }
            match deadline {
                None => {
                    inner.readable.wait(&mut st);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(NetError::Timeout);
                    }
                    inner.readable.wait_for(&mut st, d - now);
                }
            }
        }
    }

    /// Blocks until every queued message to every peer is acknowledged.
    pub fn flush(&self, timeout: Duration) -> NetResult<()> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.st.lock();
        loop {
            if st.tx.values().all(|t| t.unacked.is_empty()) {
                return Ok(());
            }
            if let Some(e) = &st.err {
                return Err(e.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            self.inner.writable.wait_for(&mut st, deadline - now);
        }
    }
}

impl Drop for RdConduit {
    fn drop(&mut self) {
        self.inner.st.lock().shutdown = true;
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireConfig;

    fn pair(fab: &Fabric) -> (RdConduit, RdConduit) {
        let a = RdConduit::bind(fab, Addr::new(0, 300), RdConfig::default()).unwrap();
        let b = RdConduit::bind(fab, Addr::new(1, 300), RdConfig::default()).unwrap();
        (a, b)
    }

    #[test]
    fn basic_roundtrip() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        a.send_to(b.local_addr(), Bytes::from_static(b"reliable")).unwrap();
        let (src, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(src, a.local_addr());
        assert_eq!(&data[..], b"reliable");
    }

    #[test]
    fn ordered_delivery_without_loss() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        for i in 0..200u32 {
            a.send_to(b.local_addr(), Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..200u32 {
            let (_, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
            assert_eq!(u32::from_be_bytes(data[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn ordered_delivery_under_loss() {
        // 5% wire loss: the RD layer must still deliver every message,
        // in order, exactly once.
        let fab = Fabric::new(WireConfig::with_loss(0.05, 21));
        let (a, b) = pair(&fab);
        let n = 300u32;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    a.send_to(b.local_addr(), Bytes::from(i.to_be_bytes().to_vec()))
                        .unwrap();
                }
            });
            for i in 0..n {
                let (_, data) = b.recv_from(Some(Duration::from_secs(10))).unwrap();
                assert_eq!(u32::from_be_bytes(data[..].try_into().unwrap()), i);
            }
        });
    }

    #[test]
    fn flush_waits_for_acks() {
        let fab = Fabric::new(WireConfig::with_loss(0.05, 5));
        let (a, b) = pair(&fab);
        for i in 0..50u8 {
            a.send_to(b.local_addr(), Bytes::from(vec![i])).unwrap();
        }
        a.flush(Duration::from_secs(10)).unwrap();
        // All 50 must now be deliverable without further retransmission.
        for i in 0..50u8 {
            let (_, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
            assert_eq!(data[0], i);
        }
    }

    #[test]
    fn large_message_roundtrip() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 247) as u8).collect();
        a.send_to(b.local_addr(), Bytes::from(payload.clone())).unwrap();
        let (_, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(&data[..], &payload[..]);
    }

    #[test]
    fn oversized_rejected() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let too_big = vec![0u8; a.max_datagram() + 1];
        assert!(matches!(
            a.send_to(b.local_addr(), Bytes::from(too_big)),
            Err(NetError::TooBig { .. })
        ));
    }

    #[test]
    fn bidirectional_flows_independent() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        a.send_to(b.local_addr(), Bytes::from_static(b"a->b")).unwrap();
        b.send_to(a.local_addr(), Bytes::from_static(b"b->a")).unwrap();
        let (_, d1) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
        let (_, d2) = a.recv_from(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(&d1[..], b"a->b");
        assert_eq!(&d2[..], b"b->a");
    }

    #[test]
    fn recv_timeout() {
        let fab = Fabric::loopback();
        let (_a, b) = pair(&fab);
        assert_eq!(
            b.recv_from(Some(Duration::from_millis(20))).unwrap_err(),
            NetError::Timeout
        );
    }
}
