//! Process-wide default for whether endpoints batch packets per call.
//!
//! The burst datapath amortizes per-packet costs — fabric lock rounds,
//! telemetry read-modify-writes, CQ lock/notify pairs — across a vector
//! of packets, while preserving per-packet loss/fault semantics
//! byte-for-byte (see DESIGN.md "Burst datapath" for the RNG draw-order
//! contract). Like [`crate::copypath`], the selection itself is a
//! per-QP/conduit configuration knob; this module only stores the
//! *default* those configs pick up at construction time. The default is
//! [`BurstPath::PerPacket`] so chaos/determinism baselines are untouched
//! unless a run opts in (`--burst-path=burst`).

use std::sync::atomic::{AtomicU8, Ordering};

/// Whether a datapath moves one packet per call or a burst per call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurstPath {
    /// One packet per fabric transmit, one CQE per reap, one notify per
    /// completion. The reference implementation and the default.
    PerPacket,
    /// Vectors of packets per fabric lock round, batched verbs, and one
    /// notify per completion burst. Wire bytes are identical under a
    /// fixed seed.
    Burst,
}

impl BurstPath {
    /// Parses the `--burst-path` CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "per-packet" => Some(Self::PerPacket),
            "burst" => Some(Self::Burst),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::PerPacket => "per-packet",
            Self::Burst => "burst",
        }
    }
}

impl std::fmt::Display for BurstPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

static DEFAULT: AtomicU8 = AtomicU8::new(0); // 0 = PerPacket

/// Sets the process-wide default path picked up by endpoint configs at
/// construction time (e.g. from `scale --burst-path=burst`).
pub fn set_default(path: BurstPath) {
    DEFAULT.store(
        match path {
            BurstPath::PerPacket => 0,
            BurstPath::Burst => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide default path.
#[must_use]
pub fn default_path() -> BurstPath {
    if DEFAULT.load(Ordering::Relaxed) == 0 {
        BurstPath::PerPacket
    } else {
        BurstPath::Burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        assert_eq!(BurstPath::parse("per-packet"), Some(BurstPath::PerPacket));
        assert_eq!(BurstPath::parse("burst"), Some(BurstPath::Burst));
        assert_eq!(BurstPath::parse("batched"), None);
        assert_eq!(BurstPath::Burst.as_str(), "burst");
        assert_eq!(BurstPath::PerPacket.to_string(), "per-packet");
    }
}
