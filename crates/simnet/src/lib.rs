//! `simnet` — the network substrate underneath the datagram-iWARP stack.
//!
//! The paper evaluates a *software* iWARP implementation running over the
//! Linux kernel's UDP and TCP stacks on 10-Gigabit Ethernet. This crate
//! rebuilds that substrate from scratch so the protocol work above it is
//! exercised end-to-end without real NICs:
//!
//! * [`wire`]/[`fabric`] — an in-memory Ethernet-like switch. Endpoints
//!   bind addresses and exchange *wire packets* of at most one MTU. The
//!   fabric applies a configurable [`loss`] model, propagation delay and
//!   (optionally) link-rate pacing per packet, standing in for the paper's
//!   NetEffect 10GbE cards, Fujitsu switch and `tc`-based loss injection.
//! * [`dgram`] — [`dgram::DgramConduit`], a UDP-equivalent datagram service:
//!   datagrams up to 64 KiB, IP-style fragmentation into MTU wire packets
//!   with *all-or-nothing* reassembly. Losing any fragment loses the whole
//!   datagram, reproducing the loss-amplification cliff the paper observes
//!   at the 64 KiB datagram boundary (Figs. 7 and 8).
//! * [`stream`] — [`stream::StreamConduit`], a TCP-equivalent reliable byte
//!   stream built from scratch: three-way handshake, sequence numbers,
//!   cumulative ACKs, retransmission timeouts, fast retransmit, sliding
//!   window flow control, and socket-buffer copies on both sides. RC iWARP
//!   runs over this, so connection state and stream overheads are *real
//!   measured state*, not a model.
//! * [`rdgram`] — [`rdgram::RdConduit`], a reliable-datagram service
//!   (per-peer sequencing, ACK/retransmit, message boundaries) — the "RD"
//!   LLP the paper's design section calls for.
//!
//! All randomness is seeded; a given fabric seed reproduces the same loss
//! pattern byte-for-byte.

#![warn(missing_docs)]

pub mod chaos;
pub mod dgram;
pub mod error;
pub mod fabric;
pub mod loss;
pub mod rdgram;
pub mod ring;
pub mod stream;
pub mod wire;

pub use chaos::{ChaosSnapshot, FaultEvent, FaultKind, FaultPlan, PartitionWindow};
pub use dgram::DgramConduit;
pub use error::{NetError, NetResult};
pub use fabric::{Fabric, RxNotify, SgSend};
pub use loss::LossModel;
pub use rdgram::RdConduit;
pub use stream::{StreamConduit, StreamListener};
pub use wire::{Addr, NodeId, WireConfig};
