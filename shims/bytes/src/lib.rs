//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset it uses: `Bytes` (cheaply cloneable, sliceable, immutable),
//! `BytesMut` (growable builder that freezes into `Bytes`), and the
//! `Buf`/`BufMut` traits' big-endian put/advance methods. `Bytes` is an
//! `Arc<Vec<u8>>` plus an offset window, so `clone()` and `slice()` are
//! O(1) and never copy payload — the property the zero-copy paths in
//! `simnet` and `core` rely on. Storage is `Arc<Vec<u8>>` rather than
//! `Arc<[u8]>` so `From<Vec<u8>>` (and therefore `BytesMut::freeze`) is
//! allocation-free, and so a buffer pool can hold a clone of the storage
//! and reclaim the allocation once every view has been dropped
//! ([`Bytes::from_shared`] / [`Bytes::shared_storage`]).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable window onto shared byte storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            data: Arc::new(Vec::new()),
            off: 0,
            len: 0,
        }
    }

    /// Creates a view over already-shared storage without copying.
    ///
    /// This is how the buffer pool hands out pooled allocations: it keeps
    /// its own clone of the `Arc` and reclaims the `Vec` once the strong
    /// count drops back to one.
    #[must_use]
    pub fn from_shared(data: Arc<Vec<u8>>) -> Self {
        let len = data.len();
        Self { data, off: 0, len }
    }

    /// The shared storage backing this view (the whole allocation, not
    /// just the visible window). Used by pool recycling to observe the
    /// reference count.
    #[must_use]
    pub fn shared_storage(&self) -> &Arc<Vec<u8>> {
        &self.data
    }

    /// Creates `Bytes` viewing a static slice (copied once into shared
    /// storage — unlike upstream this is not zero-alloc, which no caller
    /// here depends on).
    #[must_use]
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }

    /// Copies `s` into new shared storage.
    #[must_use]
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self {
            data: Arc::new(s.to_vec()),
            off: 0,
            len: s.len(),
        }
    }

    /// Returns a zero-copy sub-window of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Number of bytes in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // Zero-copy: the Vec becomes the shared storage as-is. Spare
        // capacity is retained (and reusable if the allocation is later
        // reclaimed by a pool via `shared_storage`).
        let len = v.len();
        Self {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Self::copy_from_slice(&a)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "…(+{})", self.len() - 64)?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Number of readable bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether there are no readable bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resizes the readable region to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(self.head + new_len, value);
    }

    /// Appends `s` to the buffer.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Freezes into an immutable [`Bytes`], consuming the builder.
    #[must_use]
    pub fn freeze(mut self) -> Bytes {
        if self.head > 0 {
            self.buf.drain(..self.head);
        }
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

/// Read-side buffer operations (subset of upstream `bytes::Buf`).
pub trait Buf {
    /// Number of bytes left to consume.
    fn remaining(&self) -> usize;
    /// Discards `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance {cnt} past end {}", self.len);
        self.off += cnt;
        self.len -= cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} past end {}", self.len());
        self.head += cnt;
        // Reclaim the dead prefix once it dominates the buffer, so a
        // long-lived stream reassembly buffer doesn't grow without bound.
        if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

/// Write-side buffer operations (subset of upstream `bytes::BufMut`), all
/// big-endian like the wire formats that call them.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.buf.resize(self.buf.len() + cnt, val);
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

impl<'a> Extend<&'a u8> for BytesMut {
    fn extend<I: IntoIterator<Item = &'a u8>>(&mut self, iter: I) {
        self.buf.extend(iter.into_iter().copied());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090A0B0C0D0E);
        m.extend_from_slice(b"xy");
        assert_eq!(m.len(), 17);
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xA, 0xB, 0xC, 0xD, 0xE, b'x', b'y']
        );
    }

    #[test]
    fn advance_moves_window() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[1, 2, 3, 4]);
        m.advance(2);
        assert_eq!(&m[..], &[3, 4]);
        m.extend_from_slice(&[5]);
        assert_eq!(&m[..], &[3, 4, 5]);
        assert_eq!(&m.freeze()[..], &[3, 4, 5]);

        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn freeze_and_from_vec_share_storage() {
        // `From<Vec<u8>>` must not reallocate: the pool recycling trick
        // depends on views keeping the original allocation alive.
        let v = vec![1u8, 2, 3, 4];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.shared_storage().as_ptr(), ptr);

        let shared = Arc::new(vec![5u8, 6, 7]);
        let view = Bytes::from_shared(Arc::clone(&shared));
        assert_eq!(&view[..], &[5, 6, 7]);
        assert_eq!(Arc::strong_count(&shared), 2);
        let sub = view.slice(1..);
        assert_eq!(Arc::strong_count(&shared), 3);
        drop(view);
        drop(sub);
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn equality_and_resize() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a, b"abc".to_vec());
        let mut m = BytesMut::new();
        m.resize(3, 0x61);
        assert_eq!(&m[..], b"aaa");
        m.put_bytes(0x62, 2);
        assert_eq!(&m[..], b"aaabb");
    }
}
