//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the `parking_lot` API it uses: `Mutex`, `RwLock`, and
//! `Condvar` with the non-poisoning signatures (`lock()` returns a guard,
//! not a `Result`; `Condvar::wait` takes `&mut MutexGuard`). Poison from a
//! panicking holder is swallowed via `PoisonError::into_inner`, which
//! matches parking_lot's semantics of simply not tracking poison.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the underlying std guard in an `Option`
/// so [`Condvar`] can temporarily take it during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult { timed_out: res }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
