//! Packet-conservation property: every packet the fabric accepts is
//! accounted for exactly once — delivered, dropped by the loss process,
//! dropped as unreachable, or still inside the propagation-delay line.
//!
//! `simnet.fabric.tx_packets == delivered + dropped_loss +
//! dropped_unreachable + in_flight`, checked via the telemetry snapshot
//! under both i.i.d. (Bernoulli) and bursty (Gilbert–Elliott) loss.

use bytes::Bytes;
use proptest::prelude::*;

use simnet::{Addr, DgramConduit, Fabric, LossModel, WireConfig};

/// Sends `n` unicast datagrams (plus one to an unbound port) and asserts
/// the conservation identity on the fabric's counters.
fn check_conservation(fab: &Fabric, n: usize) -> Result<(), TestCaseError> {
    let a = DgramConduit::bind(fab, Addr::new(0, 1)).unwrap();
    let b = DgramConduit::bind(fab, Addr::new(1, 1)).unwrap();
    for i in 0..n {
        // Two fragments for every third message exercises multi-packet
        // datagrams (each wire packet is counted individually).
        let len = if i % 3 == 0 { 2000 } else { 100 };
        a.send_to(b.local_addr(), Bytes::from(vec![i as u8; len]))
            .unwrap();
    }
    // Unbound destination: counted as dropped_unreachable, not lost.
    a.send_to(Addr::new(7, 7), Bytes::from_static(b"nobody home"))
        .unwrap();

    let snap = fab.telemetry().snapshot();
    let tx = snap.get("simnet.fabric.tx_packets").unwrap_or(0);
    let delivered = snap.get("simnet.fabric.delivered").unwrap_or(0);
    let lost = snap.get("simnet.fabric.dropped_loss").unwrap_or(0);
    let unreachable = snap.get("simnet.fabric.dropped_unreachable").unwrap_or(0);
    let in_flight = fab.in_flight() as u64;
    prop_assert!(tx > 0);
    prop_assert_eq!(
        tx,
        delivered + lost + unreachable + in_flight,
        "tx={} delivered={} lost={} unreachable={} in_flight={}",
        tx,
        delivered,
        lost,
        unreachable,
        in_flight
    );
    // The aggregate drop counter mirrors the sum of the drop causes.
    prop_assert_eq!(
        snap.get("simnet.fabric.pkts_dropped").unwrap_or(0),
        lost + unreachable
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation holds under seeded 5% Bernoulli loss for any seed and
    /// traffic volume.
    #[test]
    fn packets_conserved_under_bernoulli_loss(seed in any::<u64>(), n in 1usize..150) {
        let fab = Fabric::new(WireConfig::with_loss(0.05, seed));
        check_conservation(&fab, n)?;
    }

    /// Conservation holds under bursty Gilbert–Elliott loss (5% average,
    /// 4-packet mean bursts).
    #[test]
    fn packets_conserved_under_bursty_loss(seed in any::<u64>(), n in 1usize..150) {
        let cfg = WireConfig {
            loss: LossModel::bursty(0.05, 4.0),
            seed,
            ..WireConfig::default()
        };
        let fab = Fabric::new(cfg);
        check_conservation(&fab, n)?;
    }
}

/// The same identity, deterministic: fixed seeds so CI failures reproduce
/// exactly (the acceptance run the issue calls for).
#[test]
fn packets_conserved_fixed_seeds() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let fab = Fabric::new(WireConfig::with_loss(0.05, seed));
        check_conservation(&fab, 100).unwrap();
    }
}
