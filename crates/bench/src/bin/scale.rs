//! `scale` — the many-QP concurrency-scaling harness (PR 4 acceptance).
//!
//! ```text
//! scale [--calls LIST] [--shards LIST] [--idle-ms N] [--out PATH] [--smoke] [--full] [--pin]
//! ```
//!
//! Runs SipStone-style closed-loop call batches (INVITE → 200 → ACK …
//! BYE → 200, one server socket per call, all over one shared socket
//! shim) across a matrix of datapath configurations:
//!
//! * `legacy`  — pre-scale-out baseline: poll-mode QPs, the server's
//!   O(active calls) scan loop (exactly the Fig. 10/11 setup);
//! * `poll`    — shard-driven RX engines but the scan-loop server
//!   (isolates sharding from event notification);
//! * `event`   — shard-driven RX engines and the server parked in
//!   `wait_ready` (the full PR 4 datapath), at 1/2/4 shards.
//!
//! Per configuration it records INVITE→200 p50/p99, aggregate messages/s,
//! and per-call instrumented server memory; while every call is held
//! established it also measures the server's **idle** CPU (process
//! utime+stime ticks over a quiet window) — the number that separates a
//! parked `wait_any` from a spinning scan. Results land in
//! `BENCH_PR4.json`.
//!
//! Caveat recorded in the output: shard *throughput* scaling needs shard
//! workers on separate cores. On a single-CPU host the shards serialize
//! onto one core and msgs/s is flat (or slightly down) with shard count;
//! `host_cpus` and per-run `msgs_per_sec_per_core` are written alongside
//! so readers can judge the numbers, and `--pin` pins shard workers to
//! cores (`sched_setaffinity`, advisory) to take the scheduler out of
//! the measurement. Under `--smoke` on a host with `host_cpus ≥ 2` the
//! bin additionally runs the PR 7 multi-core gate — 1-shard vs 4-shard
//! event mode, pinned, asserting a msgs/s ratio ≥ 1.5 — and records an
//! honest skip (with `host_cpus`) when the host cannot express
//! multi-core scaling at all.

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use iwarp_apps::sip::load::run_sip_load_with_peak_sample;
use iwarp_apps::sip::{SipLoadConfig, SipServer, SipServerConfig, SipTransport};
use iwarp_common::memacct::MemRegistry;
use iwarp_common::notifypath::NotifyPath;
use iwarp_socket::{SocketConfig, SocketStack};
use simnet::{Addr, Fabric, NodeId, WireConfig};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Poll-mode QPs + scan-loop server: the pre-shard baseline.
    Legacy,
    /// Sharded RX engines, scan-loop server (`NotifyPath::Poll`).
    Poll { shards: usize },
    /// Sharded RX engines, `wait_ready`-parked server (`NotifyPath::Event`).
    Event { shards: usize },
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::Legacy => "legacy".into(),
            Mode::Poll { shards } => format!("poll-{shards}shard"),
            Mode::Event { shards } => format!("event-{shards}shard"),
        }
    }

    fn shards(self) -> usize {
        match self {
            Mode::Legacy => 0,
            Mode::Poll { shards } | Mode::Event { shards } => shards,
        }
    }

    fn notify(self) -> NotifyPath {
        match self {
            Mode::Legacy | Mode::Poll { .. } => NotifyPath::Poll,
            Mode::Event { .. } => NotifyPath::Event,
        }
    }
}

struct RunResult {
    mode: String,
    calls: usize,
    shards: usize,
    notify: &'static str,
    established: usize,
    msgs_per_sec: f64,
    /// msgs/s divided by the cores this configuration can actually use
    /// (shard workers + the client driver thread, capped at host_cpus).
    msgs_per_sec_per_core: f64,
    cores_used: usize,
    pinned: bool,
    p50_us: f64,
    p99_us: f64,
    server_mem_bytes: u64,
    per_call_bytes: f64,
    idle_cpu_ticks: u64,
    idle_window_ms: u64,
    elapsed_s: f64,
}

/// Process CPU time in clock ticks: utime+stime from `/proc/self/stat`
/// (fields 14/15; parsed after the last `)` so comm can't confuse it).
fn cpu_ticks() -> u64 {
    let Ok(stat) = fs::read_to_string("/proc/self/stat") else {
        return 0;
    };
    let Some(rest) = stat.rsplit(')').next() else {
        return 0;
    };
    let f: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = f.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
    let stime: u64 = f.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
    utime + stime
}

/// Each SIP transaction is five messages on the wire:
/// INVITE, 200(INVITE), ACK, BYE, 200(BYE).
const MSGS_PER_CALL: f64 = 5.0;

fn run_one(mode: Mode, calls: usize, idle_window: Duration, pin: bool) -> Result<RunResult, String> {
    // Unpaced wire: the harness measures stack processing capacity, not
    // modeled link rate.
    let fab = Fabric::new(WireConfig::default());
    let reg = MemRegistry::new();
    let legacy = mode == Mode::Legacy;
    let server_cfg = SocketConfig {
        recv_slots: 8,
        slot_size: 2048,
        notify: mode.notify(),
        qp: iwarp::QpConfig {
            poll_mode: legacy,
            ..iwarp::QpConfig::default()
        },
        ..SocketConfig::default()
    };
    let server_stack = SocketStack::with_config(
        &fab,
        NodeId(1),
        iwarp::DeviceConfig {
            mem: Some(reg.clone()),
            shard: iwarp::ShardConfig {
                pin_cores: pin,
                ..iwarp::ShardConfig::with_shards(mode.shards())
            },
            ..iwarp::DeviceConfig::default()
        },
        server_cfg,
    );
    // The client is not under test: poll-mode sockets, driven from this
    // thread, identical across configurations.
    let client_cfg = SocketConfig {
        recv_slots: 8,
        slot_size: 2048,
        notify: NotifyPath::Poll,
        qp: iwarp::QpConfig {
            poll_mode: true,
            ..iwarp::QpConfig::default()
        },
        ..SocketConfig::default()
    };
    let client_stack =
        SocketStack::with_config(&fab, NodeId(0), iwarp::DeviceConfig::default(), client_cfg);

    let server = SipServer::spawn(
        server_stack,
        SipServerConfig {
            transport: SipTransport::Ud,
            port: 5060,
            call_state_bytes: 1024,
        },
    )
    .map_err(|e| format!("server spawn: {e:?}"))?;

    let load = SipLoadConfig {
        calls,
        transport: SipTransport::Ud,
        server_addr: Addr::new(1, 5060),
        timeout: Duration::from_secs(30),
        call_state_bytes: 1024,
    };
    let mut idle_ticks = 0u64;
    let t0 = Instant::now();
    let report = run_sip_load_with_peak_sample(&client_stack, &load, || {
        // All calls are established and the wire is quiet: whatever CPU
        // the process burns now is pure idle cost (scan loop vs parked
        // waiters). This thread sleeps through the window.
        let before = cpu_ticks();
        std::thread::sleep(idle_window);
        idle_ticks = cpu_ticks().saturating_sub(before);
        (reg.total_current(), Vec::new())
    })
    .map_err(|e| format!("load: {e:?}"))?;
    let elapsed = t0.elapsed().saturating_sub(idle_window);
    server.stop().map_err(|e| format!("server stop: {e:?}"))?;

    let msgs = MSGS_PER_CALL * report.calls_established as f64;
    let msgs_per_sec = msgs / elapsed.as_secs_f64().max(1e-9);
    // Shard workers plus the client driver thread, capped at what the
    // host actually has.
    let cores_used = iwarp_common::affinity::host_cpus().min(mode.shards().max(1) + 1);
    Ok(RunResult {
        mode: mode.label(),
        calls,
        shards: mode.shards(),
        notify: match mode.notify() {
            NotifyPath::Poll => "poll",
            NotifyPath::Event => "event",
        },
        established: report.calls_established,
        msgs_per_sec,
        msgs_per_sec_per_core: msgs_per_sec / cores_used as f64,
        cores_used,
        pinned: pin,
        p50_us: report.response_us.median(),
        p99_us: report.response_us.percentile(99.0),
        server_mem_bytes: report.server_mem_bytes,
        per_call_bytes: report.server_mem_bytes as f64 / calls.max(1) as f64,
        idle_cpu_ticks: idle_ticks,
        idle_window_ms: idle_window.as_millis() as u64,
        elapsed_s: t0.elapsed().as_secs_f64(),
    })
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|_| format!("bad list item {p:?}")))
        .collect()
}

struct Args {
    calls: Vec<usize>,
    shards: Vec<usize>,
    idle_ms: u64,
    out: String,
    smoke: bool,
    pin: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        calls: vec![64, 256, 1024],
        shards: vec![1, 2, 4],
        idle_ms: 1000,
        out: "BENCH_PR4.json".into(),
        smoke: false,
        pin: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let grab = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--calls" => {
                args.calls = parse_list(&grab(&argv, i, "--calls")?)?;
                i += 1;
            }
            "--shards" => {
                args.shards = parse_list(&grab(&argv, i, "--shards")?)?;
                i += 1;
            }
            "--idle-ms" => {
                args.idle_ms = grab(&argv, i, "--idle-ms")?
                    .parse()
                    .map_err(|_| "bad --idle-ms".to_string())?;
                i += 1;
            }
            "--out" => {
                args.out = grab(&argv, i, "--out")?;
                i += 1;
            }
            "--smoke" => {
                // CI-bounded: one event-mode run, 256 calls over 2 shards,
                // short idle window.
                args.smoke = true;
                args.calls = vec![256];
                args.shards = vec![2];
                args.idle_ms = 250;
            }
            "--full" => args.calls = vec![64, 256, 1024, 4096],
            "--pin" => args.pin = true,
            "--burst-path" => {
                let spec = grab(&argv, i, "--burst-path")?;
                let path = iwarp_common::burstpath::BurstPath::parse(&spec)
                    .ok_or(format!("--burst-path takes 'per-packet' or 'burst', got {spec:?}"))?;
                iwarp_common::burstpath::set_default(path);
                i += 1;
            }
            other => {
                return Err(format!(
                    "unknown arg {other:?}\nusage: scale [--calls LIST] [--shards LIST] \
                     [--idle-ms N] [--out PATH] [--smoke] [--full] [--pin] \
                     [--burst-path {{per-packet,burst}}]"
                ))
            }
        }
        i += 1;
    }
    Ok(args)
}

fn json_runs(results: &[RunResult]) -> String {
    let mut s = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = write!(
            s,
            "\n  {{\"mode\": \"{}\", \"calls\": {}, \"shards\": {}, \"notify\": \"{}\", \
             \"pinned\": {}, \"cores_used\": {}, \"established\": {}, \
             \"msgs_per_sec\": {:.1}, \"msgs_per_sec_per_core\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"server_mem_bytes\": {}, \"per_call_bytes\": {:.1}, \
             \"idle_cpu_ticks\": {}, \"idle_window_ms\": {}, \"elapsed_s\": {:.2}}}{}",
            r.mode,
            r.calls,
            r.shards,
            r.notify,
            r.pinned,
            r.cores_used,
            r.established,
            r.msgs_per_sec,
            r.msgs_per_sec_per_core,
            r.p50_us,
            r.p99_us,
            r.server_mem_bytes,
            r.per_call_bytes,
            r.idle_cpu_ticks,
            r.idle_window_ms,
            r.elapsed_s,
            sep
        );
    }
    s
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let idle_window = Duration::from_millis(args.idle_ms);

    let mut results: Vec<RunResult> = Vec::new();
    println!(
        "{:<16} {:>6} {:>12} {:>9} {:>9} {:>11} {:>10}",
        "mode", "calls", "msgs/s", "p50 us", "p99 us", "mem/call B", "idle ticks"
    );
    for &calls in &args.calls {
        let mut modes: Vec<Mode> = vec![Mode::Legacy];
        if !args.smoke {
            modes.push(Mode::Poll { shards: 2 });
        }
        modes.extend(args.shards.iter().map(|&s| Mode::Event { shards: s.max(1) }));
        for mode in modes {
            match run_one(mode, calls, idle_window, args.pin) {
                Ok(r) => {
                    println!(
                        "{:<16} {:>6} {:>12.0} {:>9.1} {:>9.1} {:>11.0} {:>10}",
                        r.mode, r.calls, r.msgs_per_sec, r.p50_us, r.p99_us,
                        r.per_call_bytes, r.idle_cpu_ticks
                    );
                    results.push(r);
                }
                Err(e) => {
                    eprintln!("FAIL {} @{calls}: {e}", mode.label());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // PR 7 multi-core gate: on a host that can actually express
    // multi-core shard scaling, 4 pinned event shards must beat 1 pinned
    // shard by >= 1.5x msgs/s. On a single-CPU host the shards serialize
    // onto one core, so the gate records an honest skip (with host_cpus)
    // instead of asserting a ratio the hardware cannot produce.
    let mut gate_status = "not_enforced";
    let mut gate_ratio = 0.0f64;
    if args.smoke {
        if host_cpus >= 2 {
            let gate_calls = 256;
            let one = run_one(Mode::Event { shards: 1 }, gate_calls, idle_window, true);
            let four = run_one(Mode::Event { shards: 4 }, gate_calls, idle_window, true);
            match (one, four) {
                (Ok(a), Ok(b)) if a.msgs_per_sec > 0.0 => {
                    gate_ratio = b.msgs_per_sec / a.msgs_per_sec;
                    gate_status = if gate_ratio >= 1.5 { "pass" } else { "fail" };
                    println!(
                        "multi-core gate: 1->4 shard (pinned) msgs/s ratio {gate_ratio:.2} \
                         at {gate_calls} calls (host_cpus={host_cpus}) -> {}",
                        gate_status.to_uppercase()
                    );
                    results.push(a);
                    results.push(b);
                }
                (a, b) => {
                    gate_status = "fail";
                    for r in [a, b].into_iter().flatten() {
                        results.push(r);
                    }
                    eprintln!("multi-core gate: run failed");
                }
            }
        } else {
            gate_status = "skipped";
            println!(
                "multi-core gate: SKIPPED — host_cpus={host_cpus} < 2; a single core \
                 cannot express multi-core shard scaling (recorded in acceptance JSON)"
            );
        }
    }

    // Acceptance summary at the largest call count measured.
    let top = *args.calls.iter().max().unwrap_or(&0);
    let at = |m: &str| {
        results
            .iter()
            .find(|r| r.calls == top && r.mode == m)
    };
    let shard_ratio = match (at("event-1shard"), at("event-4shard")) {
        (Some(a), Some(b)) if a.msgs_per_sec > 0.0 => b.msgs_per_sec / a.msgs_per_sec,
        _ => 0.0,
    };
    let poll_idle = results
        .iter()
        .filter(|r| r.notify == "poll")
        .map(|r| r.idle_cpu_ticks)
        .max()
        .unwrap_or(0);
    let event_idle = results
        .iter()
        .filter(|r| r.notify == "event")
        .map(|r| r.idle_cpu_ticks)
        .max()
        .unwrap_or(0);
    let idle_ratio = poll_idle as f64 / (event_idle.max(1)) as f64;

    let json = format!(
        "{{\n \"pr\": 4,\n \"title\": \"Many-QP scale-out: sharded datapath and event-driven \
         completions\",\n \"harness\": \"scale{}\",\n \"host_cpus\": {},\n \"runs\": [{}\n ],\n \
         \"acceptance\": {{\n  \"shard_msgs_per_sec_ratio_1_to_4_at_{}_calls\": {:.2},\n  \
         \"idle_cpu_ticks_poll_max\": {},\n  \"idle_cpu_ticks_event_max\": {},\n  \
         \"idle_cpu_poll_over_event\": {:.1},\n  \
         \"multicore_gate\": {{\"status\": \"{}\", \"ratio\": {:.2}, \"host_cpus\": {}}}\n }},\n \
         \"notes\": \"Closed-loop SipStone \
         transactions (5 messages/call) over the shared socket shim; one server socket per \
         call. Idle CPU = process utime+stime ticks while all calls are held established and \
         the wire is quiet. Shard throughput scaling requires shard workers on separate \
         cores: on a host with host_cpus=1 every shard serializes onto the same core, so \
         msgs/s stays flat with shard count there and the architectural win shows up in the \
         idle-CPU column (parked wait_any vs scan loop) and on multi-core hosts.\"\n}}\n",
        if args.smoke { " --smoke" } else { "" },
        host_cpus,
        json_runs(&results),
        top,
        shard_ratio,
        poll_idle,
        event_idle,
        idle_ratio,
        gate_status,
        gate_ratio,
        host_cpus,
    );
    if let Err(e) = fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "\nidle CPU: poll={poll_idle} ticks, event={event_idle} ticks ({idle_ratio:.1}x); \
         1->4 shard msgs/s ratio @{top} calls: {shard_ratio:.2} (host_cpus={host_cpus})"
    );
    println!("wrote {}", args.out);

    // Smoke gate for CI: every call established, and the event-mode server
    // must be (near-)silent while idle.
    if args.smoke {
        let ok = results.iter().all(|r| r.established == r.calls);
        if !ok {
            eprintln!("smoke: not every call established");
            return ExitCode::FAILURE;
        }
        if gate_status == "fail" {
            eprintln!("smoke: multi-core gate failed (ratio {gate_ratio:.2} < 1.5)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
