//! Tests for the `simnet::ring` primitive underneath the per-link
//! fabric: property tests over random producer/consumer interleavings
//! (no loss, no duplication, FIFO per producer) plus directed edge cases
//! for full/empty/wraparound/drop-while-nonempty behaviour.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use simnet::ring::{Mpsc, PopError, PushOutcome, RingChannel};

// ---------------------------------------------------------------------
// Property tests: single-threaded model checks over proptest-chosen
// op schedules (push/pop interleavings), so failures shrink and replay.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SPSC: any interleaving of pushes and pops observes exactly the
    /// pushed sequence — no loss, no duplication, FIFO.
    #[test]
    fn spsc_matches_queue_model(cap in 1usize..16,
                                ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let (mut tx, mut rx) = simnet::ring::spsc::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        let mut popped = Vec::new();
        let mut expect = Vec::new();
        for push in ops {
            if push {
                match tx.push(next) {
                    Ok(()) => { model.push_back(next); expect.push(next); }
                    Err(v) => {
                        // Full: ring capacity is a power-of-two rounding
                        // of `cap`, and nothing may be lost.
                        prop_assert_eq!(v, next);
                        prop_assert!(model.len() >= cap);
                        continue;
                    }
                }
                next += 1;
            } else {
                let got = rx.pop();
                prop_assert_eq!(got, model.pop_front());
                if let Some(v) = got { popped.push(v); }
            }
        }
        while let Some(v) = rx.pop() {
            popped.push(v);
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
        prop_assert_eq!(popped, expect);
    }

    /// SPSC batched producer: `push_batch` publishes a prefix of the
    /// batch atomically and leaves the remainder, in order, in the batch.
    #[test]
    fn spsc_push_batch_is_exact_prefix(cap in 1usize..12,
                                       sizes in proptest::collection::vec(1usize..20, 1..20)) {
        let (mut tx, mut rx) = simnet::ring::spsc::<u32>(cap);
        let mut next = 0u32;
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for (round, n) in sizes.into_iter().enumerate() {
            let mut batch: VecDeque<u32> = (0..n as u32).map(|i| next + i).collect();
            let accepted = tx.push_batch(&mut batch);
            prop_assert_eq!(batch.len(), n - accepted);
            // The leftover must be exactly the unaccepted suffix.
            for (i, v) in batch.iter().enumerate() {
                prop_assert_eq!(*v, next + (accepted + i) as u32);
            }
            expect.extend((0..accepted as u32).map(|i| next + i));
            next += n as u32;
            // Drain fully on alternate rounds to exercise wraparound.
            if round % 2 == 1 {
                while let Some(v) = rx.pop() { got.push(v); }
            }
        }
        while let Some(v) = rx.pop() { got.push(v); }
        prop_assert_eq!(got, expect);
    }

    /// MPSC: values from several producers interleaved in any order are
    /// each delivered exactly once, FIFO per producer.
    #[test]
    fn mpsc_fifo_per_producer(cap in 2usize..16,
                              schedule in proptest::collection::vec(0u8..4, 1..200)) {
        let q = Mpsc::<(u8, u32)>::new(cap);
        let mut seqs = [0u32; 3];
        let mut in_flight: VecDeque<(u8, u32)> = VecDeque::new();
        let mut delivered: Vec<(u8, u32)> = Vec::new();
        for slot in schedule {
            if slot < 3 {
                let p = slot;
                match q.try_push((p, seqs[p as usize])) {
                    Ok(()) => {
                        in_flight.push_back((p, seqs[p as usize]));
                        seqs[p as usize] += 1;
                    }
                    Err(v) => prop_assert_eq!(v, (p, seqs[p as usize])),
                }
            } else if let Some(v) = q.try_pop() {
                prop_assert_eq!(Some(v), in_flight.pop_front());
                delivered.push(v);
            }
        }
        while let Some(v) = q.try_pop() {
            prop_assert_eq!(Some(v), in_flight.pop_front());
            delivered.push(v);
        }
        prop_assert!(in_flight.is_empty());
        // FIFO per producer: each producer's delivered sequence is 0..n.
        for p in 0u8..3 {
            let seq: Vec<u32> = delivered.iter().filter(|(q, _)| *q == p).map(|(_, s)| *s).collect();
            prop_assert_eq!(&seq, &(0..seqs[p as usize]).collect::<Vec<_>>());
        }
    }

    /// RingChannel: the spill path is invisible to consumers — any
    /// push/pop interleaving (including ones that overflow the ring many
    /// times over) delivers the exact pushed sequence.
    #[test]
    fn ring_channel_spill_matches_queue_model(cap in 1usize..8,
                                              ops in proptest::collection::vec(any::<bool>(), 1..300)) {
        let ch = RingChannel::<u32>::new(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        let mut spilled = false;
        for push in ops {
            if push {
                match ch.push(next).expect("channel open") {
                    PushOutcome::Ring => {}
                    PushOutcome::Spilled => spilled = true,
                }
                model.push_back(next);
                next += 1;
            } else {
                prop_assert_eq!(ch.try_pop(), model.pop_front());
            }
            prop_assert_eq!(ch.len(), model.len());
        }
        while let Some(v) = ch.try_pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
        prop_assert!(ch.is_empty());
        // With ≤ 8 ring slots and up to 300 pushes most runs spill; the
        // flag is only read to keep the variable honest.
        let _ = spilled;
    }

    /// RingChannel batch ops: `push_batch`/`pop_batch` interleaved with
    /// the single-value calls deliver exactly the pushed sequence — the
    /// one-lock-round amortizers change cost, never contents or order.
    #[test]
    fn ring_channel_batch_ops_match_queue_model(cap in 1usize..8,
                                                ops in proptest::collection::vec(any::<u8>(), 1..200)) {
        let ch = RingChannel::<u32>::new(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        let mut out: Vec<u32> = Vec::new();
        for op in ops {
            match op % 4 {
                0 => {
                    ch.push(next).expect("channel open");
                    model.push_back(next);
                    next += 1;
                }
                1 => {
                    let n = usize::from(op / 4) % 7;
                    let mut batch: VecDeque<u32> = (next..next + n as u32).collect();
                    let (ringed, spilled) =
                        ch.push_batch(&mut batch).expect("channel open");
                    prop_assert!(batch.is_empty());
                    prop_assert_eq!(ringed + spilled, n);
                    model.extend(next..next + n as u32);
                    next += n as u32;
                }
                2 => prop_assert_eq!(ch.try_pop(), model.pop_front()),
                _ => {
                    let max = usize::from(op / 4) % 7;
                    let got = ch.pop_batch(&mut out, max);
                    prop_assert!(got <= max);
                    for v in out.drain(..) {
                        prop_assert_eq!(Some(v), model.pop_front());
                    }
                }
            }
            prop_assert_eq!(ch.len(), model.len());
        }
        let mut tail = Vec::new();
        ch.pop_batch(&mut tail, usize::MAX);
        for v in tail {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
        prop_assert!(ch.is_empty());
    }
}

// ---------------------------------------------------------------------
// Threaded stress: real concurrency on top of the model checks above.
// ---------------------------------------------------------------------

/// Two real threads over one SPSC ring: every value arrives exactly once,
/// in order, across thousands of wraparounds.
#[test]
fn spsc_threaded_fifo() {
    let (mut tx, mut rx) = simnet::ring::spsc::<u64>(8);
    const N: u64 = 20_000;
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            let mut v = i;
            loop {
                match tx.push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        v = back;
                        // Yield, not spin: single-core CI hosts would
                        // otherwise stall a full scheduler quantum per
                        // ring-full collision.
                        std::thread::yield_now();
                    }
                }
            }
        }
    });
    let mut expect = 0u64;
    while expect < N {
        if let Some(v) = rx.pop() {
            assert_eq!(v, expect, "out of order or duplicated");
            expect += 1;
        } else {
            std::thread::yield_now();
        }
    }
    assert!(rx.pop().is_none());
    producer.join().unwrap();
}

/// Four real producers into one RingChannel (the fan-in shape every
/// fabric link has): nothing lost, nothing duplicated, FIFO per producer,
/// even with a 4-slot ring forcing heavy spill.
#[test]
fn ring_channel_threaded_fan_in() {
    const PRODUCERS: u64 = 4;
    const PER: u64 = 5_000;
    let ch = Arc::new(RingChannel::<u64>::new(4));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || {
                for i in 0..PER {
                    ch.push(p << 32 | i).expect("open");
                }
            })
        })
        .collect();
    let mut next = [0u64; PRODUCERS as usize];
    let mut total = 0u64;
    while total < PRODUCERS * PER {
        let v = ch
            .pop_wait(Some(Duration::from_secs(10)))
            .expect("producers still running");
        let (p, i) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
        assert_eq!(i, next[p], "producer {p} out of order");
        next[p] += 1;
        total += 1;
    }
    for h in producers {
        h.join().unwrap();
    }
    assert!(ch.is_empty());
    assert_eq!(next, [PER; PRODUCERS as usize]);
}

// ---------------------------------------------------------------------
// Directed edge cases.
// ---------------------------------------------------------------------

/// Full/empty transitions at the exact capacity boundary, repeated so the
/// indices wrap the ring several times.
#[test]
fn mpsc_full_empty_wraparound() {
    let q = Mpsc::<u32>::new(4); // rounds to 4 slots
    let cap = q.capacity();
    for round in 0..10u32 {
        assert!(q.is_empty());
        for i in 0..cap as u32 {
            q.try_push(round * 100 + i).expect("space");
        }
        assert_eq!(q.len(), cap);
        assert!(q.try_push(999).is_err(), "push into full ring must fail");
        for i in 0..cap as u32 {
            assert_eq!(q.try_pop(), Some(round * 100 + i));
        }
        assert_eq!(q.try_pop(), None);
    }
}

/// Dropping a non-empty ring drops every queued value exactly once —
/// no leak, no double drop.
#[test]
fn drop_while_nonempty_drops_each_value_once() {
    struct Token(Arc<AtomicUsize>);
    impl Drop for Token {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    let drops = Arc::new(AtomicUsize::new(0));

    // SPSC: half-consumed, then dropped mid-stream (head has wrapped).
    let (mut tx, mut rx) = simnet::ring::spsc::<Token>(4);
    for _ in 0..4 {
        tx.push(Token(Arc::clone(&drops))).map_err(|_| ()).unwrap();
    }
    drop(rx.pop()); // 1 drop
    drop(rx.pop()); // 2 drops
    tx.push(Token(Arc::clone(&drops))).map_err(|_| ()).unwrap();
    drop(tx);
    drop(rx); // 3 queued tokens dropped here
    assert_eq!(drops.load(Ordering::SeqCst), 5);

    // RingChannel with values in both the ring and the overflow spill.
    let drops = Arc::new(AtomicUsize::new(0));
    let ch = RingChannel::<Token>::new(2);
    let mut saw_spill = false;
    for _ in 0..10 {
        if ch.push(Token(Arc::clone(&drops))).map_err(|_| ()).unwrap() == PushOutcome::Spilled {
            saw_spill = true;
        }
    }
    assert!(saw_spill, "2-slot ring must spill under 10 pushes");
    drop(ch.try_pop()); // 1 drop
    drop(ch);
    assert_eq!(drops.load(Ordering::SeqCst), 10);
}

/// Close semantics: producers see `Err` after close, consumers drain what
/// was queued and then get `Closed` (never `Timeout`).
#[test]
fn close_drains_then_reports_closed() {
    let ch = RingChannel::<u32>::new(4);
    ch.push(1).unwrap();
    ch.push(2).unwrap();
    ch.close();
    assert!(ch.is_closed());
    let rejected = ch.push(3).unwrap_err();
    assert_eq!(rejected.0, 3);
    assert_eq!(ch.pop_wait(Some(Duration::from_millis(5))), Ok(1));
    assert_eq!(ch.try_pop(), Some(2));
    assert_eq!(
        ch.pop_wait(Some(Duration::from_millis(5))),
        Err(PopError::Closed)
    );
    assert_eq!(ch.pop_wait(None), Err(PopError::Closed));
}

/// A consumer parked in `pop_wait(None)` is woken by close and by data.
#[test]
fn pop_wait_unblocks_on_close_and_data() {
    let ch = Arc::new(RingChannel::<u32>::new(4));
    // Data wakes a parked popper.
    let c = Arc::clone(&ch);
    let h = std::thread::spawn(move || c.pop_wait(None));
    std::thread::sleep(Duration::from_millis(20));
    ch.push(7).unwrap();
    assert_eq!(h.join().unwrap(), Ok(7));
    // Close wakes a parked popper.
    let c = Arc::clone(&ch);
    let h = std::thread::spawn(move || c.pop_wait(None));
    std::thread::sleep(Duration::from_millis(20));
    ch.close();
    assert_eq!(h.join().unwrap(), Err(PopError::Closed));
}
