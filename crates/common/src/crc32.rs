//! CRC32C (Castagnoli) implemented from scratch.
//!
//! iWARP's MPA layer and datagram-iWARP's DDP layer both protect payloads
//! with CRC32C (polynomial `0x1EDC6F41`, reflected `0x82F63B78`) — the same
//! polynomial used by SCTP and iSCSI. Datagram-iWARP makes the CRC
//! *mandatory* for every message (paper §IV.B item 6) because there is no
//! reliable LLP underneath to vouch for payload integrity.
//!
//! The implementation uses the classic "slicing-by-8" technique: eight
//! 256-entry tables generated at first use, processing 8 input bytes per
//! iteration. This keeps the checksum cheap enough that it does not distort
//! the bandwidth experiments, while remaining pure safe Rust.

use std::sync::OnceLock;

/// Reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Number of slicing tables (8 ⇒ one table per byte of a 64-bit word).
const SLICES: usize = 8;

type Tables = [[u32; 256]; SLICES];

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Box<Tables>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; SLICES]);
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            t[0][i as usize] = crc;
        }
        for s in 1..SLICES {
            for i in 0..256 {
                let prev = t[s - 1][i];
                t[s][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Streaming CRC32C state.
///
/// Feed data incrementally with [`Crc32c::update`] and extract the final
/// checksum with [`Crc32c::finish`]. Use [`crc32c`] for the common
/// one-shot case.
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Creates a fresh CRC state (all-ones initial value, per the standard).
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut crc = self.state;

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            // Combine the current CRC with the first 4 bytes, then slice
            // all 8 bytes through the tables.
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][((lo >> 24) & 0xFF) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the final checksum (bit-inverted, per the standard).
    #[must_use]
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32C of `data`.
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bitwise reference implementation used to validate the sliced tables.
    fn crc32c_ref(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) appendix test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn matches_bitwise_reference() {
        let data: Vec<u8> = (0..1021u32).map(|i| (i.wrapping_mul(31) ^ (i >> 3)) as u8).collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 255, 1021] {
            assert_eq!(crc32c(&data[..len]), crc32c_ref(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 5, 8, 100, 4095, 4096] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32c(&data), "split={split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 300];
        let orig = crc32c(&data);
        for bit in [0usize, 7, 100 * 8 + 3, 299 * 8 + 7] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&data), orig, "bit={bit}");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32c(&data), orig);
    }
}
