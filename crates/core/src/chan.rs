//! Event-driven completion notification.
//!
//! A [`CompletionChannel`] is the wait object completion consumers park
//! on instead of spin-polling CQs — the software analogue of the verbs
//! completion channel (and, through [`CompletionChannel::wait_any`], of
//! `epoll_wait` over completion fds). Any number of [`Cq`]s subscribe via
//! [`Cq::attach_channel`], each under an application-chosen token; every
//! CQE pushed to a subscribed CQ marks its token ready and wakes one
//! waiter. One thread can thereby service thousands of QPs/sockets,
//! which is what the paper's SIP scenario needs once concurrent calls
//! outnumber cores by three orders of magnitude.
//!
//! Tokens are *level-ish* edges: a token is queued at most once until
//! collected (readiness is coalesced, like `EPOLLIN`), and the consumer
//! is expected to drain the corresponding CQ completely on each wakeup —
//! exactly the discipline edge-triggered epoll demands.
//!
//! [`Cq`]: crate::cq::Cq

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use iwarp_telemetry::{Counter, Telemetry};
use parking_lot::{Condvar, Mutex};

/// Telemetry handles bound by [`CompletionChannel::attach_telemetry`].
struct ChanTel {
    notifies: Counter,
    coalesced: Counter,
    wakeups: Counter,
    timeouts: Counter,
}

struct ChanState {
    /// Ready tokens in arrival order.
    ready: VecDeque<u64>,
    /// Tokens currently in `ready` (coalescing: one entry per token).
    queued: HashSet<u64>,
}

struct ChanInner {
    state: Mutex<ChanState>,
    cv: Condvar,
    tel: OnceLock<ChanTel>,
}

/// A condvar-backed completion wait object; clones share the same state.
#[derive(Clone)]
pub struct CompletionChannel {
    inner: Arc<ChanInner>,
}

impl Default for CompletionChannel {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionChannel {
    /// Creates an empty channel.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(ChanInner {
                state: Mutex::new(ChanState {
                    ready: VecDeque::new(),
                    queued: HashSet::new(),
                }),
                cv: Condvar::new(),
                tel: OnceLock::new(),
            }),
        }
    }

    /// Binds this channel into a telemetry domain (`core.chan.*`);
    /// idempotent, first domain wins.
    pub fn attach_telemetry(&self, tel: &Telemetry) {
        self.inner.tel.get_or_init(|| ChanTel {
            notifies: tel.counter("core.chan.notifies"),
            coalesced: tel.counter("core.chan.coalesced"),
            wakeups: tel.counter("core.chan.wakeups"),
            timeouts: tel.counter("core.chan.timeouts"),
        });
    }

    /// Marks `token` ready and wakes a waiter. Readiness coalesces: a
    /// token already queued is not queued again. Called by [`Cq::push`]
    /// for subscribed CQs; safe from any thread.
    ///
    /// [`Cq::push`]: crate::cq::Cq::push
    pub fn notify(&self, token: u64) {
        let mut st = self.inner.state.lock();
        if let Some(t) = self.inner.tel.get() {
            t.notifies.inc();
        }
        if !st.queued.insert(token) {
            if let Some(t) = self.inner.tel.get() {
                t.coalesced.inc();
            }
            return;
        }
        st.ready.push_back(token);
        drop(st);
        // notify_all, not _one: several threads may wait_any on the same
        // channel (a worker pool) and a single pending token must not
        // strand the others forever if the woken worker exits.
        self.inner.cv.notify_all();
    }

    /// Collects every ready token without blocking (may be empty).
    #[must_use]
    pub fn try_wait(&self) -> Vec<u64> {
        let mut st = self.inner.state.lock();
        Self::drain(&mut st)
    }

    /// Blocks until at least one subscribed token is ready (or `timeout`
    /// elapses, returning an empty vec) and collects all of them — the
    /// `epoll_wait` analogue. The wait parks on a condvar; an idle
    /// waiter burns no CPU (guarded by a procfs-tick regression test).
    ///
    /// Consumers must fully drain the CQ behind each returned token:
    /// readiness was coalesced while the token sat queued.
    #[must_use]
    pub fn wait_any(&self, timeout: Duration) -> Vec<u64> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if !st.ready.is_empty() {
                if let Some(t) = self.inner.tel.get() {
                    t.wakeups.inc();
                }
                return Self::drain(&mut st);
            }
            let now = Instant::now();
            if now >= deadline {
                if let Some(t) = self.inner.tel.get() {
                    t.timeouts.inc();
                }
                return Vec::new();
            }
            self.inner.cv.wait_for(&mut st, deadline - now);
        }
    }

    fn drain(st: &mut ChanState) -> Vec<u64> {
        let out: Vec<u64> = st.ready.drain(..).collect();
        st.queued.clear();
        out
    }

    /// Tokens currently ready (diagnostic).
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.inner.state.lock().ready.len()
    }
}

impl std::fmt::Debug for CompletionChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionChannel")
            .field("ready", &self.ready_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_then_wait_returns_token() {
        let ch = CompletionChannel::new();
        ch.notify(7);
        assert_eq!(ch.wait_any(Duration::from_millis(1)), vec![7]);
        assert!(ch.wait_any(Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn readiness_coalesces_per_token() {
        let ch = CompletionChannel::new();
        ch.notify(1);
        ch.notify(1);
        ch.notify(2);
        assert_eq!(ch.wait_any(Duration::from_millis(1)), vec![1, 2]);
        // After collection the token can be queued again.
        ch.notify(1);
        assert_eq!(ch.try_wait(), vec![1]);
    }

    #[test]
    fn wait_wakes_on_cross_thread_notify() {
        let ch = CompletionChannel::new();
        std::thread::scope(|s| {
            let ch2 = ch.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                ch2.notify(42);
            });
            let got = ch.wait_any(Duration::from_secs(2));
            assert_eq!(got, vec![42]);
        });
    }
}
