//! `iwarp-socket` — the iWARP socket interface (SDP-for-datagrams shim).
//!
//! The paper's Section V: "The iWARP socket interface was designed to serve
//! as a layer that translates the socket networking calls of applications
//! over to use the verb semantics of iWARP ... allowing existing
//! applications to take advantage of the performance of iWARP while not
//! requiring that they be re-developed to use the verbs interface."
//!
//! The original is an `LD_PRELOAD` shim over libc calls; this crate is the
//! same layer as an explicit API: a [`SocketStack`] owns the device and the
//! socket↔QP table, and hands out:
//!
//! * [`DgramSocket`] — UDP-like `send_to`/`recv_from` over a **UD QP**, in
//!   one of two modes ([`DgramMode`]):
//!   - `SendRecv`: two-sided verbs with a pool of pre-posted receive slots;
//!   - `WriteRecord`: the paper's one-sided path — the receiver exposes a
//!     remote-writable slot ring, senders learn its STag through a one-time
//!     advertisement handshake, and data arrives as Write-Record
//!     completions. Like the paper's shim, delivery into the *application*
//!     buffer is still a copy ("we have elected not to re-exchange remote
//!     buffer locations for every new buffer ... but to copy the data over
//!     to the supplied buffer location instead", §VI.B.1), which is why the
//!     two modes perform almost identically through the socket API.
//! * [`StreamSocket`]/[`StreamListener`] — TCP-like byte streams over an
//!   **RC QP** (message boundaries dissolved at the receiver).
//!
//! Per-socket state is registered with the device's
//! [`iwarp_common::memacct::MemRegistry`] so the
//! SIP memory experiment (paper Fig. 11) measures real footprints.

#![warn(missing_docs)]

mod control;
mod dgram;
mod stack;
mod stream;

pub use dgram::{DgramMode, DgramSocket};
pub use stack::{DgramProfile, SocketConfig, SocketStack};
pub use stream::{StreamListener, StreamSocket};
