//! RDMA Write-Record target-side machinery.
//!
//! "RDMA Write-Record must log at the target side what data has been
//! written to memory and is valid. The target application can then request
//! this information ... by reading the appropriate completion queue
//! entries. These completion queue entries can be designed as either
//! individual entries for each logical chunk of data in a message or can
//! be a validity map; essentially an aggregated form of individual
//! completion notifications." (paper §IV.B.3)
//!
//! [`RecordTable`] implements the aggregated form: as tagged Write-Record
//! segments of a message are placed, their extents accumulate in a
//! [`ValidityMap`]; when the **final** segment (L flag) arrives, a single
//! completion carrying the map is emitted. Losing the final segment loses
//! the whole message (paper §VI.A.2) — the table's garbage collector then
//! reaps the stale record after a TTL, leaving no completion behind.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use simnet::Addr;

use iwarp_common::validity::ValidityMap;

use crate::hdr::TaggedHdr;

/// Validity details delivered with a target-side Write-Record completion.
#[derive(Clone, Debug)]
pub struct WriteRecordInfo {
    /// Sink region the message was written into.
    pub stag: u32,
    /// Tagged offset of the message's first byte in the sink region.
    pub base_to: u64,
    /// Length the sender intended to write.
    pub total_len: u32,
    /// Message-relative valid ranges (offset 0 = `base_to` in the region).
    pub validity: ValidityMap,
}

impl WriteRecordInfo {
    /// True when every intended byte arrived.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.validity.covers(u64::from(self.total_len))
    }

    /// Bytes that actually arrived and were placed.
    #[must_use]
    pub fn valid_bytes(&self) -> u64 {
        self.validity.valid_bytes()
    }

    /// Valid ranges in *sink-region* coordinates.
    #[must_use]
    pub fn absolute_runs(&self) -> Vec<(u64, u64)> {
        self.validity
            .runs()
            .iter()
            .map(|r| (self.base_to + r.start, self.base_to + r.end))
            .collect()
    }
}

struct Record {
    info: WriteRecordInfo,
    last_seen: Instant,
}

/// Aggregates per-segment Write-Record placements into per-message
/// validity maps, keyed by `(source address, source QP, message id)`.
pub struct RecordTable {
    entries: Mutex<HashMap<(Addr, u32, u64), Record>>,
    ttl: Duration,
    last_gc: Mutex<Instant>,
}

/// Statistics snapshot from [`RecordTable::gc`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Stale partial messages reaped (final segment never arrived).
    pub reaped: u64,
}

impl RecordTable {
    /// Creates a table reaping incomplete messages after `ttl`.
    #[must_use]
    pub fn new(ttl: Duration) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            ttl,
            last_gc: Mutex::new(Instant::now()),
        }
    }

    /// Records the placement of one tagged segment; `placed_len` bytes were
    /// written at `hdr.to`. Returns the completed [`WriteRecordInfo`] when
    /// this segment carried the L flag — the declaration point for the
    /// message's validity.
    pub fn ingest(&self, src: Addr, hdr: &TaggedHdr, placed_len: usize) -> Option<WriteRecordInfo> {
        let key = (src, hdr.src_qpn, hdr.msg_id);
        let now = Instant::now();
        let mut entries = self.entries.lock();
        let rec = entries.entry(key).or_insert_with(|| Record {
            info: WriteRecordInfo {
                stag: hdr.stag,
                base_to: hdr.base_to,
                total_len: hdr.total_len,
                validity: ValidityMap::new(),
            },
            last_seen: now,
        });
        rec.last_seen = now;
        let rel = hdr.to.saturating_sub(hdr.base_to);
        rec.info.validity.record(rel, placed_len as u64);
        if hdr.last {
            let rec = entries.remove(&key).expect("present");
            return Some(rec.info);
        }
        None
    }

    /// Reaps records whose message never completed within the TTL.
    /// Called opportunistically by the RX engine; cheap when nothing is
    /// stale (a coarse `last_gc` check throttles full scans).
    pub fn gc(&self) -> GcStats {
        let now = Instant::now();
        {
            let mut last = self.last_gc.lock();
            if now.duration_since(*last) < self.ttl {
                return GcStats::default();
            }
            *last = now;
        }
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|_, rec| now.duration_since(rec.last_seen) <= self.ttl);
        GcStats {
            reaped: (before - entries.len()) as u64,
        }
    }

    /// Messages currently awaiting their final segment.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdr::RdmapOpcode;

    fn hdr(to: u64, last: bool) -> TaggedHdr {
        TaggedHdr {
            opcode: RdmapOpcode::WriteRecord,
            last,
            notify: true,
            stag: 0x300,
            to,
            base_to: 1000,
            total_len: 4000,
            src_qpn: 5,
            msg_id: 1,
            imm: 0,
        }
    }

    fn src() -> Addr {
        Addr::new(0, 9)
    }

    #[test]
    fn single_segment_completes_immediately() {
        let t = RecordTable::new(Duration::from_secs(1));
        let mut h = hdr(1000, true);
        h.total_len = 500;
        let info = t.ingest(src(), &h, 500).expect("L flag completes");
        assert!(info.is_complete());
        assert_eq!(info.valid_bytes(), 500);
        assert_eq!(info.absolute_runs(), vec![(1000, 1500)]);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn multi_segment_completes_on_last() {
        let t = RecordTable::new(Duration::from_secs(1));
        assert!(t.ingest(src(), &hdr(1000, false), 1000).is_none());
        assert!(t.ingest(src(), &hdr(2000, false), 1000).is_none());
        assert!(t.ingest(src(), &hdr(3000, false), 1000).is_none());
        let info = t.ingest(src(), &hdr(4000, true), 1000).unwrap();
        assert!(info.is_complete());
        assert_eq!(info.valid_bytes(), 4000);
    }

    #[test]
    fn partial_placement_declared_on_last() {
        // Middle segment lost: completion still fires on L, with a gap.
        let t = RecordTable::new(Duration::from_secs(1));
        assert!(t.ingest(src(), &hdr(1000, false), 1000).is_none());
        // segment at to=2000 lost
        assert!(t.ingest(src(), &hdr(3000, false), 1000).is_none());
        let info = t.ingest(src(), &hdr(4000, true), 1000).unwrap();
        assert!(!info.is_complete());
        assert_eq!(info.valid_bytes(), 3000);
        let gaps = info.validity.gaps(u64::from(info.total_len));
        assert_eq!(gaps.len(), 1);
        assert_eq!((gaps[0].start, gaps[0].end), (1000, 2000));
    }

    #[test]
    fn lost_last_segment_never_completes_and_gcs() {
        let t = RecordTable::new(Duration::from_millis(20));
        assert!(t.ingest(src(), &hdr(1000, false), 1000).is_none());
        assert_eq!(t.pending(), 1);
        std::thread::sleep(Duration::from_millis(50));
        let stats = t.gc();
        assert_eq!(stats.reaped, 1);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn gc_throttles_within_ttl() {
        let t = RecordTable::new(Duration::from_secs(60));
        assert!(t.ingest(src(), &hdr(1000, false), 1000).is_none());
        assert_eq!(t.gc(), GcStats::default());
        assert_eq!(t.pending(), 1);
    }

    #[test]
    fn messages_from_distinct_sources_independent() {
        let t = RecordTable::new(Duration::from_secs(1));
        let a = Addr::new(0, 1);
        let b = Addr::new(0, 2);
        assert!(t.ingest(a, &hdr(1000, false), 1000).is_none());
        assert!(t.ingest(b, &hdr(1000, false), 1000).is_none());
        assert_eq!(t.pending(), 2);
        let done = t.ingest(a, &hdr(4000, true), 1000).unwrap();
        assert_eq!(done.valid_bytes(), 2000);
        assert_eq!(t.pending(), 1);
    }

    #[test]
    fn duplicate_segments_idempotent() {
        let t = RecordTable::new(Duration::from_secs(1));
        assert!(t.ingest(src(), &hdr(1000, false), 1000).is_none());
        assert!(t.ingest(src(), &hdr(1000, false), 1000).is_none());
        let info = t.ingest(src(), &hdr(4000, true), 1000).unwrap();
        assert_eq!(info.valid_bytes(), 2000);
    }
}
