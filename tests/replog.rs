//! Tier-1 gate for the PR 9 replicated-log workload (`iwarp_apps::replog`
//! checked by `iwarp_chaos::replog`).
//!
//! Two claims:
//!
//! 1. Under a sweep of seeded fault adversaries (drop bursts, duplication,
//!    reordering, corruption, truncation, partitions) across both publish
//!    paths and leader-freeze fail-overs, every agreement invariant holds
//!    and every run converges.
//! 2. The oracle has teeth: the planted ack-before-placement bug (a
//!    follower acknowledging the leader's high-water mark before its
//!    records actually landed) is caught, with a replayable seed in the
//!    failure rendering.

use iwarp_apps::replog::PlantedBug;
use iwarp_chaos::replog::{run_replog_plan, run_replog_sweep, ReplogOpts};
use iwarp_common::rng::derive_seed;

const MASTER: u64 = 0x51EE_D009;

#[test]
fn seeded_sweep_holds_agreement_invariants() {
    let opts = ReplogOpts { entries: 12, ..ReplogOpts::default() };
    let reports = run_replog_sweep(MASTER, 8, &opts);
    for rep in &reports {
        assert!(rep.ok(), "{}", rep.render_failure());
        assert!(rep.outcome.converged, "{}", rep.render_failure());
    }
    // The sweep must actually cover both publish paths and at least one
    // freeze fail-over (cfg derivation is seed-driven).
    use iwarp_apps::replog::PublishPath;
    assert!(reports.iter().any(|r| r.cfg.path == PublishPath::WriteRecord));
    assert!(reports.iter().any(|r| r.cfg.path == PublishPath::TwoSided));
    assert!(reports.iter().any(|r| r.cfg.freeze.is_some()));
}

#[test]
fn planted_ack_before_placement_is_caught() {
    let opts = ReplogOpts {
        entries: 12,
        bug: PlantedBug::AckBeforePlacement,
        ..ReplogOpts::default()
    };
    let mut caught = false;
    for i in 0..6u64 {
        let rep = run_replog_plan(derive_seed(MASTER, 0x600 + i), &opts);
        if !rep.ok() {
            let render = rep.render_failure();
            assert!(
                render.contains("--replay"),
                "failure rendering must carry the replay seed:\n{render}"
            );
            caught = true;
            break;
        }
    }
    assert!(caught, "planted ack-before-placement bug escaped the oracle");
}
