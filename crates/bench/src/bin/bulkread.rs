//! `bulkread` — the one-sided streaming-read sweep (PR 8 acceptance).
//!
//! ```text
//! bulkread [--batches N] [--seed S] [--out PATH] [--smoke]
//! ```
//!
//! Sweeps the [`iwarp::read::BulkRead`] engine over batch sizes
//! 4 KiB – 4 MiB × signaling disciplines {every batch, every 8th,
//! every 32nd, last-only} on a long pipe (80 ms one-way propagation,
//! bandwidth unshaped so host capacity — not a simulated shaper — is
//! the saturation point, as on a real NIC) and records goodput per
//! cell into `BENCH_PR8.json`. Requester and responder run on separate
//! threads, as on real hosts.
//!
//! The propagation delay is what makes the signaling discipline
//! visible: the engine never keeps more *signaled* reads outstanding
//! than its receive CQ has slots (capacity 4 here), so `every1`
//! collapses the effective window to 4 batches — RTT-limited goodput
//! of `4 × batch / 160 ms` — while `lastonly` runs the full 32-batch
//! window. The acceptance block demands throughput rising with batch
//! size (last-only at 4 MiB ≥ last-only at 64 KiB) and `lastonly /
//! every1 ≥ 1.3×` at 1 MiB batches. `--smoke` runs just the two 1 MiB
//! cells and enforces the 1.3× gate (the CI hook).

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::Duration;

use iwarp::read::{BulkRead, BulkReadConfig, RecoveryConfig, SignalInterval};
use iwarp::{Access, Cq, Device, QpConfig};
use iwarp_common::ccalgo::CcAlgo;
use iwarp_common::rng::derive_seed;
use simnet::{Fabric, NodeId, WireConfig};

const RUN_TIMEOUT: Duration = Duration::from_secs(120);
/// Receive-CQ slots on the requester: the admission bound on
/// outstanding signaled reads.
const RECV_CQ_CAP: usize = 4;
/// Flow-control window: batches in flight when signaling permits.
const WINDOW: u64 = 32;

struct Args {
    batches: u64,
    seed: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        batches: 64,
        seed: 0xB01_CEAD,
        out: "BENCH_PR8.json".into(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let grab = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--batches" => {
                args.batches = grab(&argv, i, "--batches")?.parse().map_err(|_| "bad --batches")?;
                i += 1;
            }
            "--seed" => {
                args.seed = grab(&argv, i, "--seed")?.parse().map_err(|_| "bad --seed")?;
                i += 1;
            }
            "--out" => {
                args.out = grab(&argv, i, "--out")?;
                i += 1;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("usage: bulkread [--batches N] [--seed S] [--out PATH] [--smoke]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    args.batches = args.batches.max(2);
    Ok(args)
}

fn signal_label(s: SignalInterval) -> &'static str {
    match s {
        SignalInterval::Every(1) => "every1",
        SignalInterval::Every(8) => "every8",
        SignalInterval::Every(32) => "every32",
        SignalInterval::LastOnly => "lastonly",
        SignalInterval::Every(_) => "every?",
    }
}

struct CellResult {
    elapsed: Duration,
    mbytes_per_sec: f64,
    reposts: u64,
    expired: u64,
    unsignaled_retired: u64,
    cq_overflows: u64,
}

/// One sweep cell: transfer `batches × batch_bytes` from responder to
/// requester over a fresh shaped fabric and report goodput.
fn run_cell(batch_bytes: u32, signal: SignalInterval, batches: u64, wire_seed: u64) -> CellResult {
    let fab = Fabric::new(WireConfig {
        // Unshaped: goodput saturates at host capacity, like a real NIC.
        bandwidth_bps: 0,
        latency: Duration::from_millis(80),
        // A 4 MiB read response is ~2 900 MTU fragments released in one
        // latency cohort; keep the delivery ring above that.
        ring_capacity: 8192,
        seed: wire_seed,
        ..WireConfig::default()
    });
    let a = Device::new(&fab, NodeId(0));
    let b = Device::new(&fab, NodeId(1));
    let cfg = QpConfig {
        max_msg_size: 8 << 20,
        read_ttl: Duration::from_secs(10),
        poll_mode: true,
        ..QpConfig::default()
    };
    let a_recv = Cq::new(RECV_CQ_CAP);
    let qa = a
        .create_ud_qp(None, &Cq::new(1024), &a_recv, cfg.clone())
        .expect("requester qp");
    let qb = b
        .create_ud_qp(None, &Cq::new(1024), &Cq::new(1024), cfg)
        .expect("responder qp");

    let total = batches * u64::from(batch_bytes);
    let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
    let src = b.register_with(&data, Access::RemoteRead);
    let sink = a.register(total as usize, Access::Local);

    let read_cfg = BulkReadConfig {
        batch_bytes,
        window: WINDOW,
        signal,
        recovery: RecoveryConfig {
            algo: CcAlgo::Fixed,
            fixed_window: WINDOW * 2,
            // A batch posted behind a full 128 MiB window waits out the
            // RTT plus the responder's serve time for everything ahead
            // of it; the constant RTO must sit well above that to stay
            // quiet on a lossless run.
            initial_rto: Duration::from_secs(8),
            min_rto: Duration::from_secs(2),
            max_rto: Duration::from_secs(16),
            ..RecoveryConfig::default()
        },
        ..BulkReadConfig::default()
    };
    let mut xfer = BulkRead::new(read_cfg, &sink, 0, total, qb.dest(), src.stag(), 0);

    // Two-host drive: the responder pumps on its own thread, the
    // requester drains and steps the engine here.
    let done = std::sync::atomic::AtomicBool::new(false);
    let start = std::time::Instant::now();
    std::thread::scope(|sc| {
        sc.spawn(|| {
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                qb.progress_burst(4096, Duration::from_micros(50));
            }
        });
        loop {
            qa.progress_burst(4096, Duration::from_micros(20));
            let finished = xfer
                .step(&qa, start.elapsed())
                .unwrap_or_else(|e| panic!("bulkread cell {batch_bytes}B: {e}"));
            if finished {
                break;
            }
            assert!(
                start.elapsed() < RUN_TIMEOUT,
                "bulkread cell {batch_bytes}B/{}: timed out",
                signal_label(signal)
            );
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    let report = xfer.report();
    assert!(!report.dead, "lossless wire must not kill the transfer");
    assert_eq!(report.bytes, total, "short transfer");
    assert_eq!(
        sink.read_vec(0, total as usize).expect("sink readback"),
        data,
        "payload corruption"
    );
    CellResult {
        elapsed,
        mbytes_per_sec: total as f64 / elapsed.as_secs_f64() / 1e6,
        reposts: report.reposts,
        expired: report.expired,
        unsignaled_retired: a_recv.unsignaled_retired(),
        cq_overflows: a_recv.overflows(),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bulkread: {e}");
            return ExitCode::from(2);
        }
    };
    if args.smoke {
        return smoke(&args);
    }

    let batch_sizes: [u32; 6] = [4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let signals = [
        SignalInterval::Every(1),
        SignalInterval::Every(8),
        SignalInterval::Every(32),
        SignalInterval::LastOnly,
    ];

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "\"bench\": \"bulk_read\",");
    let _ = writeln!(json, "\"seed\": {},", args.seed);
    let _ = writeln!(json, "\"batches_per_cell\": {},", args.batches);
    let _ = writeln!(
        json,
        "\"wire\": {{\"bandwidth_bps\": 0, \"latency_ms\": 80}},"
    );
    let _ = writeln!(
        json,
        "\"window\": {WINDOW}, \"recv_cq_capacity\": {RECV_CQ_CAP},"
    );
    let _ = writeln!(json, "\"runs\": [");

    // Acceptance inputs.
    let mut lastonly_64k = 0.0f64;
    let mut lastonly_4m = 0.0f64;
    let mut every1_1m = 0.0f64;
    let mut lastonly_1m = 0.0f64;
    let mut first = true;
    for (bi, &batch) in batch_sizes.iter().enumerate() {
        for (si, &signal) in signals.iter().enumerate() {
            let wire_seed = derive_seed(args.seed, (bi * 8 + si) as u64);
            let r = run_cell(batch, signal, args.batches, wire_seed);
            eprintln!(
                "  {:>7} B × {:8}: {:8.1} MB/s ({:.0} ms, {} reposts, {} retired)",
                batch,
                signal_label(signal),
                r.mbytes_per_sec,
                r.elapsed.as_secs_f64() * 1e3,
                r.reposts,
                r.unsignaled_retired,
            );
            if !first {
                let _ = writeln!(json, ",");
            }
            first = false;
            let _ = write!(
                json,
                "  {{\"batch_bytes\": {batch}, \"signal\": \"{}\", \"elapsed_ms\": {:.3}, \
                 \"mbytes_per_sec\": {:.2}, \"reposts\": {}, \"expired\": {}, \
                 \"unsignaled_retired\": {}, \"cq_overflows\": {}}}",
                signal_label(signal),
                r.elapsed.as_secs_f64() * 1e3,
                r.mbytes_per_sec,
                r.reposts,
                r.expired,
                r.unsignaled_retired,
                r.cq_overflows,
            );
            match (batch, signal) {
                (65_536, SignalInterval::LastOnly) => lastonly_64k = r.mbytes_per_sec,
                (4_194_304, SignalInterval::LastOnly) => lastonly_4m = r.mbytes_per_sec,
                (1_048_576, SignalInterval::Every(1)) => every1_1m = r.mbytes_per_sec,
                (1_048_576, SignalInterval::LastOnly) => lastonly_1m = r.mbytes_per_sec,
                _ => {}
            }
        }
    }
    let _ = writeln!(json, "\n],");

    let ratio_1mb = lastonly_1m / every1_1m;
    let rising = lastonly_4m >= lastonly_64k;
    let pass = rising && ratio_1mb >= 1.3;
    let _ = writeln!(json, "\"acceptance\": {{");
    let _ = writeln!(
        json,
        "  \"lastonly_64k_mbs\": {lastonly_64k:.2}, \"lastonly_4m_mbs\": {lastonly_4m:.2}, \
         \"rising\": {rising},"
    );
    let _ = writeln!(
        json,
        "  \"every1_1mb_mbs\": {every1_1m:.2}, \"lastonly_1mb_mbs\": {lastonly_1m:.2},"
    );
    let _ = writeln!(
        json,
        "  \"lastonly_vs_every1_1mb\": {ratio_1mb:.3}, \"target_1mb\": 1.3,"
    );
    let _ = writeln!(json, "  \"pass\": {pass}");
    let _ = writeln!(json, "}}");
    let _ = writeln!(json, "}}");

    if let Err(e) = fs::write(&args.out, &json) {
        eprintln!("bulkread: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "bulkread: lastonly/every1 at 1 MiB = {ratio_1mb:.2}x (target 1.3x), \
         rising {lastonly_64k:.0} -> {lastonly_4m:.0} MB/s -> {} ({})",
        if pass { "PASS" } else { "FAIL" },
        args.out
    );
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn smoke(args: &Args) -> ExitCode {
    let batches = args.batches.min(32);
    let every1 = run_cell(1 << 20, SignalInterval::Every(1), batches, derive_seed(args.seed, 100));
    let lastonly = run_cell(1 << 20, SignalInterval::LastOnly, batches, derive_seed(args.seed, 101));
    let ratio = lastonly.mbytes_per_sec / every1.mbytes_per_sec;
    println!(
        "bulkread --smoke: 1 MiB batches — every1 {:.0} MB/s, lastonly {:.0} MB/s \
         ({} retired), ratio {ratio:.2}x (target 1.3x)",
        every1.mbytes_per_sec, lastonly.mbytes_per_sec, lastonly.unsignaled_retired,
    );
    if ratio >= 1.3 {
        println!("bulkread smoke PASSED");
        ExitCode::SUCCESS
    } else {
        eprintln!("bulkread smoke FAILED: selective signaling below 1.3x all-signaled");
        ExitCode::FAILURE
    }
}
