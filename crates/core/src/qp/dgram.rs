//! The datagram queue pair: datagram-iWARP's UD and RD modes.
//!
//! One engine serves both modes — the difference is the conduit underneath
//! ([`simnet::DgramConduit`] for UD, [`simnet::RdConduit`] for RD), chosen
//! at creation by [`crate::device::Device::create_ud_qp`] /
//! [`crate::device::Device::create_rd_qp`].
//!
//! Key departures from connected iWARP, per paper §IV.B:
//!
//! * **no connection**: every send names a [`UdDest`]; every receive
//!   completion reports the source address and QP;
//! * **no MPA**: segments go straight into datagrams with a mandatory
//!   CRC32 trailer;
//! * **loss is not fatal**: CRC failures and drops are counted, buffers
//!   recovered on a TTL, and the QP keeps operating;
//! * **RDMA Write-Record**: the one-sided write whose completion is logged
//!   at the *target*, with partial placement under loss;
//! * **UD RDMA Read** (paper future work, implemented as an extension):
//!   reads complete with `Expired` status if the response is lost.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use iwarp_telemetry::{Counter, Histogram, Telemetry};
use simnet::{Addr, DgramConduit, NetError, RdConduit};

use iwarp_common::burstpath::BurstPath;
use iwarp_common::copypath::CopyPath;
use iwarp_common::memacct::MemScope;
use iwarp_common::pool::BufPool;
use iwarp_common::sg::SgBytes;

use crate::buf::{MemoryRegion, MrTable};
use crate::cq::{Cq, Cqe, CqeOpcode, CqeStatus};
use crate::error::{IwarpError, IwarpResult};
use crate::hdr::{
    decode_sg, encode_tagged, encode_tagged_sg, encode_untagged, encode_untagged_sg,
    UntaggedSegBatch, CRC_LEN,
    RdmapOpcode, ReadRequest, TaggedHdr, UntaggedHdr, TAGGED_HDR_LEN, UNTAGGED_HDR_LEN,
};
use crate::qp::rx::{RxAction, RxCore, QN_READ_REQUEST, QN_SEND};
use crate::qp::QpConfig;
use crate::wr::{RecvWr, SendPayload, SendWr, UdDest};

pub use crate::qp::rx::QpStats;

/// The datagram LLP under a QP: unreliable or reliable datagrams.
pub(crate) enum DgLlp {
    /// Unreliable datagram service (UDP analog) — UD mode.
    Ud(DgramConduit),
    /// Reliable datagram service — RD mode.
    Rd(Box<RdConduit>),
}

impl DgLlp {
    fn send_to(&self, dst: Addr, payload: Bytes) -> Result<(), NetError> {
        match self {
            DgLlp::Ud(c) => c.send_to(dst, payload),
            DgLlp::Rd(c) => c.send_to(dst, payload),
        }
    }

    /// Sends one encoded segment given as a scatter-gather list. UD hands
    /// the slices straight to the conduit's zero-copy fragmenter; RD's
    /// windowed retransmit queue needs an owned contiguous message, so
    /// the segment is flattened here (counted — RD is not the zero-copy
    /// target path).
    fn send_seg(&self, dst: Addr, seg: SgBytes, copied: &Counter) -> Result<(), NetError> {
        match self {
            DgLlp::Ud(c) => c.send_sg(dst, seg),
            DgLlp::Rd(c) => {
                if !seg.is_contiguous() {
                    copied.add(seg.len() as u64);
                }
                c.send_to(dst, seg.to_bytes())
            }
        }
    }

    /// Wire packets waiting in the delivery ring, before reassembly.
    fn rx_backlog(&self) -> usize {
        match self {
            DgLlp::Ud(c) => c.rx_backlog(),
            DgLlp::Rd(c) => c.rx_backlog(),
        }
    }

    /// Receives the next complete datagram as a scatter-gather list (an
    /// unfragmented UD datagram arrives as the sender's original slices;
    /// RD always delivers contiguous messages).
    fn recv_sg(&self, timeout: Duration) -> Result<(Addr, SgBytes), NetError> {
        match self {
            DgLlp::Ud(c) => c.recv_sg_from(Some(timeout)),
            DgLlp::Rd(c) => c
                .recv_from(Some(timeout))
                .map(|(src, b)| (src, SgBytes::from(b))),
        }
    }

    /// Non-blocking receive: drains already-delivered wire packets only.
    /// The shard engines' batch-drain primitive.
    fn try_recv_sg(&self) -> Result<(Addr, SgBytes), NetError> {
        match self {
            DgLlp::Ud(c) => c.try_recv_sg_from(),
            DgLlp::Rd(c) => c
                .recv_from(Some(Duration::ZERO))
                .map(|(src, b)| (src, SgBytes::from(b))),
        }
    }

    /// Non-blocking batch receive: up to `max` complete datagrams. UD
    /// pulls wire packets in receive-queue batches
    /// ([`DgramConduit::try_recv_burst`]); RD has no batch primitive and
    /// loops its single-datagram receive.
    fn try_recv_sg_burst(&self, max: usize) -> Vec<(Addr, SgBytes)> {
        match self {
            DgLlp::Ud(c) => c.try_recv_burst(max),
            DgLlp::Rd(c) => {
                let mut out = Vec::new();
                while out.len() < max {
                    match c.recv_from(Some(Duration::ZERO)) {
                        Ok((src, b)) => out.push((src, SgBytes::from(b))),
                        Err(_) => break,
                    }
                }
                out
            }
        }
    }

    /// Installs an arrival notifier on the conduit's wire endpoint.
    /// Returns `false` when the LLP has no notify hook (RD's windowed
    /// protocol needs its own engine thread); such QPs cannot be driven
    /// by a shard engine.
    fn set_notify(&self, notify: Option<simnet::RxNotify>) -> bool {
        match self {
            DgLlp::Ud(c) => {
                c.set_notify(notify);
                true
            }
            DgLlp::Rd(_) => false,
        }
    }

    fn pool(&self) -> BufPool {
        match self {
            DgLlp::Ud(c) => c.fabric().pool().clone(),
            DgLlp::Rd(c) => c.fabric().pool().clone(),
        }
    }

    fn max_datagram(&self) -> usize {
        match self {
            DgLlp::Ud(c) => c.max_datagram(),
            DgLlp::Rd(c) => c.max_datagram(),
        }
    }

    fn local_addr(&self) -> Addr {
        match self {
            DgLlp::Ud(c) => c.local_addr(),
            DgLlp::Rd(c) => c.local_addr(),
        }
    }

    fn is_reliable(&self) -> bool {
        matches!(self, DgLlp::Rd(_))
    }
}

/// Send-side telemetry handles (resolved once at QP creation); shared by
/// the datagram and RC engines.
pub(crate) struct QpTxTel {
    pub(crate) tx_msgs: Counter,
    pub(crate) tx_segments: Counter,
    /// Destination-flush rounds issued by the burst datapath
    /// ([`DatagramQp::post_send_batch`] under `BurstPath::Burst`): one
    /// per (batch, destination) pair, so `tx_msgs / tx_bursts` is the
    /// achieved send-side batching factor.
    pub(crate) tx_bursts: Counter,
    pub(crate) msg_size_tx: Histogram,
    /// Eliminable datapath copies (shared `pool.bytes_copied` name): the
    /// legacy encoder's payload copy and RD's flatten land here. The
    /// mandatory placement copy into the registered region is *not*
    /// counted — it exists on every path.
    pub(crate) bytes_copied: Counter,
}

impl QpTxTel {
    pub(crate) fn new(tel: &Telemetry) -> Self {
        Self {
            tx_msgs: tel.counter("core.qp.tx_msgs"),
            tx_segments: tel.counter("core.qp.tx_segments"),
            tx_bursts: tel.counter("core.qp.tx_bursts"),
            msg_size_tx: tel.histogram("core.qp.msg_size_tx"),
            bytes_copied: tel.counter("pool.bytes_copied"),
        }
    }
}

pub(crate) struct DgInner {
    qpn: u32,
    llp: DgLlp,
    send_cq: Cq,
    rx: RxCore,
    tx_tel: QpTxTel,
    next_msg_id: AtomicU64,
    next_msn: AtomicU32,
    max_msg_size: usize,
    /// Transmit datapath (from [`QpConfig::copy_path`]).
    copy_path: CopyPath,
    /// Batching discipline (from [`QpConfig::burst_path`]): gates the
    /// batch verbs' fabric bursts and the RX engines' batch ingest.
    burst_path: BurstPath,
    /// Header-buffer pool shared with the fabric (SG encoders draw the
    /// pooled `hdr ++ crc` allocations from here).
    pool: BufPool,
    shutdown: AtomicBool,
    _mem: Option<MemScope>,
}

impl DgInner {
    pub(crate) fn qpn(&self) -> u32 {
        self.qpn
    }

    /// See [`DgLlp::set_notify`].
    pub(crate) fn set_notify(&self, notify: Option<simnet::RxNotify>) -> bool {
        self.llp.set_notify(notify)
    }
}

/// A datagram-iWARP queue pair (UD or RD mode).
///
/// Created through [`crate::device::Device`]; see the crate root for the
/// full API tour.
pub struct DatagramQp {
    inner: Arc<DgInner>,
    rx_thread: Option<std::thread::JoinHandle<()>>,
    /// Set when a shard engine drives this QP's receives (no `rx_thread`);
    /// held so Drop can unregister from the shard map.
    shard: Option<(Arc<crate::shard::ShardMap>, u32)>,
}

impl DatagramQp {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        qpn: u32,
        llp: DgLlp,
        mrs: Arc<MrTable>,
        send_cq: Cq,
        recv_cq: Cq,
        cfg: QpConfig,
        mem: Option<MemScope>,
        tel: &Telemetry,
        shards: Option<&Arc<crate::shard::ShardMap>>,
    ) -> Self {
        let max_msg_size = cfg.max_msg_size;
        let copy_path = cfg.copy_path;
        let burst_path = cfg.burst_path;
        let reliable = llp.is_reliable();
        send_cq.attach_telemetry(tel);
        recv_cq.attach_telemetry(tel);
        let rx_tel = crate::qp::rx::RxTel::new(tel, llp.local_addr());
        let pool = llp.pool();
        let inner = Arc::new(DgInner {
            rx: RxCore::new(mrs, recv_cq, cfg, reliable, rx_tel),
            tx_tel: QpTxTel::new(tel),
            qpn,
            llp,
            send_cq,
            next_msg_id: AtomicU64::new(1),
            next_msn: AtomicU32::new(1),
            max_msg_size,
            copy_path,
            burst_path,
            pool,
            shutdown: AtomicBool::new(false),
            _mem: mem,
        });
        // Poll mode always wins (caller-driven, deterministic — chaos
        // replay depends on it). Otherwise prefer a shard engine when the
        // device has one and the LLP supports arrival notification; fall
        // back to the dedicated per-QP thread (RD, or unsharded devices).
        let shard = if inner.rx.cfg.poll_mode {
            None
        } else {
            shards
                .filter(|map| map.register(&inner))
                .map(|map| (Arc::clone(map), qpn))
        };
        let rx_thread = if inner.rx.cfg.poll_mode || shard.is_some() {
            None
        } else {
            let rx_inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name(format!("iwarp-dgqp-{qpn}"))
                    .spawn(move || rx_loop(&rx_inner))
                    .expect("spawn datagram QP rx thread"),
            )
        };
        Self { inner, rx_thread, shard }
    }

    /// True when a device shard engine (not a per-QP thread or the
    /// caller) drives this QP's receive processing.
    #[must_use]
    pub fn is_sharded(&self) -> bool {
        self.shard.is_some()
    }

    /// Poll-mode driver: one receive-engine iteration, waiting up to
    /// `max_wait` for an incoming datagram. Call this (or let the socket
    /// shim call it) when the QP was created with
    /// [`QpConfig::poll_mode`]; in threaded mode the engine thread
    /// already does this work.
    pub fn progress(&self, max_wait: Duration) {
        rx_step(&self.inner, max_wait);
    }

    /// Poll-mode **burst** driver: like [`Self::progress`] but ingests up
    /// to `budget` already-delivered datagrams per call, pulling wire
    /// packets from the endpoint in receive-queue batches. Waits up to
    /// `max_wait` only when nothing is queued. Falls back to a single
    /// [`Self::progress`] step under [`BurstPath::PerPacket`] or on RD.
    pub fn progress_burst(&self, budget: usize, max_wait: Duration) {
        let inner = &self.inner;
        if inner.burst_path == BurstPath::Burst {
            if let DgLlp::Ud(c) = &inner.llp {
                inner.rx.begin_completion_batch();
                for (src, dgram) in c.recv_burst_from(budget, Some(max_wait)) {
                    rx_dispatch(inner, src, &dgram);
                }
                inner.rx.expire();
                inner.rx.flush_completion_batch();
                return;
            }
        }
        rx_step(inner, max_wait);
    }

    /// Wire packets already delivered to this QP but not yet ingested.
    /// A [`Self::progress`] call consumes at least one whenever this is
    /// non-zero, so poll-mode drivers can loop `progress_burst` until
    /// the backlog reads zero to drain a tick to quiescence — the same
    /// end state whichever [`QpConfig::burst_path`] is in force.
    #[must_use]
    pub fn rx_backlog(&self) -> usize {
        self.inner.llp.rx_backlog()
    }

    /// This QP's number (advertise it to peers along with
    /// [`Self::local_addr`]).
    #[must_use]
    pub fn qpn(&self) -> u32 {
        self.inner.qpn
    }

    /// The conduit address peers send to.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.inner.llp.local_addr()
    }

    /// The [`UdDest`] peers should use to reach this QP.
    #[must_use]
    pub fn dest(&self) -> UdDest {
        UdDest {
            addr: self.local_addr(),
            qpn: self.qpn(),
        }
    }

    /// True for RD (reliable datagram) mode.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.inner.llp.is_reliable()
    }

    /// The send completion queue.
    #[must_use]
    pub fn send_cq(&self) -> &Cq {
        &self.inner.send_cq
    }

    /// The receive completion queue.
    #[must_use]
    pub fn recv_cq(&self) -> &Cq {
        &self.inner.rx.recv_cq
    }

    /// Diagnostics counters.
    #[must_use]
    pub fn stats(&self) -> &QpStats {
        &self.inner.rx.stats
    }

    /// Largest message this QP will send.
    #[must_use]
    pub fn max_msg_size(&self) -> usize {
        self.inner.max_msg_size
    }

    /// DDP segment payload capacity per datagram: each segment must fit a
    /// single datagram (the paper's §IV.B "one DDP segment per datagram").
    #[must_use]
    pub fn untagged_seg_capacity(&self) -> usize {
        self.inner.llp.max_datagram() - UNTAGGED_HDR_LEN - CRC_LEN
    }

    /// Tagged-segment payload capacity per datagram.
    #[must_use]
    pub fn tagged_seg_capacity(&self) -> usize {
        self.inner.llp.max_datagram() - TAGGED_HDR_LEN - CRC_LEN
    }

    /// Posts a receive work request.
    pub fn post_recv(&self, wr: RecvWr) -> IwarpResult<()> {
        self.inner.rx.post_recv(wr);
        Ok(())
    }

    /// Posts a batch of receives under a single receive-ring lock round —
    /// the `ibv_post_recv` linked-list idiom as a slice. Ring order is
    /// identical to posting each WR individually.
    pub fn post_recv_batch(&self, wrs: &[RecvWr]) -> IwarpResult<()> {
        self.inner.rx.post_recv_batch(wrs.iter().cloned());
        Ok(())
    }

    /// Number of posted, unconsumed receives.
    #[must_use]
    pub fn posted_recvs(&self) -> usize {
        self.inner.rx.rq_len()
    }

    /// Posts an untagged send to `dest`. Completes on the send CQ as soon
    /// as every segment has been handed to the LLP (datagram semantics:
    /// no acknowledgement is awaited).
    pub fn post_send(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        dest: UdDest,
    ) -> IwarpResult<()> {
        self.post_send_inner(wr_id, payload.into(), dest, false, true)
    }

    /// Posts a **send with solicited event**: identical to
    /// [`Self::post_send`] on the wire except the target's completion is
    /// flagged solicited, waking [`Cq::wait_solicited`] waiters — the
    /// two-sided notification verb the paper compares Write-Record with
    /// (§IV.B.3).
    pub fn post_send_solicited(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        dest: UdDest,
    ) -> IwarpResult<()> {
        self.post_send_inner(wr_id, payload.into(), dest, true, true)
    }

    /// Posts a single [`SendWr`], honoring its `solicited` **and**
    /// `signaled` flags. An unsignaled WR retires silently on success
    /// (counted in `core.cq.unsignaled_retired`); a mid-message flush
    /// failure always surfaces an error CQE regardless of the flag. The
    /// CQ-occupancy-aware placement policy applies to *chains*
    /// ([`Self::post_send_batch`]) only — a lone unsignaled WR cannot
    /// deadlock a CQ by itself.
    pub fn post_send_wr(&self, wr: &SendWr) -> IwarpResult<()> {
        self.post_send_inner(wr.wr_id, wr.payload.clone(), wr.dest, wr.solicited, wr.signaled)
    }

    /// Posts a batch of untagged sends — the multi-WR doorbell.
    ///
    /// Under [`BurstPath::PerPacket`] this is exactly a loop over
    /// [`Self::post_send`]. Under [`BurstPath::Burst`] (UD conduit,
    /// scatter-gather datapath) every WR is segmented first, the segments
    /// are flushed as **one fabric burst per destination**
    /// ([`DgramConduit::send_sg_burst`]), and all completions are pushed
    /// with one CQ lock/notify round ([`Cq::push_batch`]). Wire bytes,
    /// CQE contents and CQE order are identical either way.
    ///
    /// Error contract: a WR that fails validation (oversized payload,
    /// revoked region) stops the batch — earlier WRs are still flushed
    /// and completed, the offender gets no CQE, and its error returns. A
    /// destination whose *flush* fails completes that destination's WRs
    /// with [`CqeStatus::Error`] and the first such error returns after
    /// the whole batch is flushed.
    ///
    /// Selective signaling: each WR's `signaled` flag is first run
    /// through [`crate::signal::place_signals`] against the send CQ's
    /// capacity and occupancy, so an unsignaled chain can never deadlock
    /// a full CQ. Effective-unsignaled WRs produce no success CQE
    /// (retired under `core.cq.unsignaled_retired`); flush errors
    /// complete with a CQE regardless. The all-signaled default leaves
    /// the CQE stream bit-for-bit identical to the legacy behavior, on
    /// both datapaths.
    pub fn post_send_batch(&self, wrs: &[SendWr]) -> IwarpResult<()> {
        // Effective signal flags are decided once, at doorbell time, from
        // the same occupancy snapshot on both datapaths.
        let flags: Vec<bool> = {
            let app: Vec<bool> = wrs.iter().map(|w| w.signaled).collect();
            crate::signal::place_signals(
                &app,
                self.inner.send_cq.capacity(),
                self.inner.send_cq.len(),
            )
        };
        let burst = self.inner.burst_path == BurstPath::Burst
            && self.inner.copy_path == CopyPath::Sg
            && matches!(self.inner.llp, DgLlp::Ud(_));
        if !burst || wrs.len() <= 1 {
            for (wr, signaled) in wrs.iter().zip(&flags) {
                self.post_send_inner(
                    wr.wr_id,
                    wr.payload.clone(),
                    wr.dest,
                    wr.solicited,
                    *signaled,
                )?;
            }
            return Ok(());
        }
        let DgLlp::Ud(conduit) = &self.inner.llp else {
            unreachable!("burst gate requires the UD conduit")
        };
        // Validate and materialize every payload first: the segment count
        // must be known up front so all DDP headers and CRC trailers of
        // the doorbell come out of one pooled arena
        // ([`UntaggedSegBatch`]) — one pool lock per batch.
        let mut result = Ok(());
        let mut datas: Vec<(u64, Bytes, Addr, bool, bool)> = Vec::with_capacity(wrs.len());
        for (wr, signaled) in wrs.iter().zip(&flags) {
            let data = match wr.payload.clone().into_bytes() {
                Ok(d) => d,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            if data.len() > self.inner.max_msg_size {
                result = Err(IwarpError::MessageTooLong {
                    len: data.len(),
                    max: self.inner.max_msg_size,
                });
                break;
            }
            datas.push((wr.wr_id, data, wr.dest.addr, wr.solicited, *signaled));
        }
        let cap = self.untagged_seg_capacity();
        let n_segs: usize = datas
            .iter()
            .map(|(_, d, _, _, _)| d.len().div_ceil(cap).max(1))
            .sum();
        // Segment every WR, grouping segments per destination in
        // first-seen order. Most batches hit one or two destinations, so
        // a linear scan beats hashing.
        let mut dests: Vec<(Addr, Vec<SgBytes>)> = Vec::new();
        let mut seg_dis: Vec<usize> = Vec::with_capacity(n_segs);
        let mut enc = UntaggedSegBatch::new(&self.inner.pool, n_segs);
        // (wr_id, total_len, destination slot, signaled) — enough to
        // build the CQEs once the flush outcome per destination is known.
        let mut posted: Vec<(u64, u32, usize, bool)> = Vec::with_capacity(datas.len());
        for (wr_id, data, addr, solicited, signaled) in datas {
            let msg_id = self.inner.next_msg_id.fetch_add(1, Ordering::Relaxed);
            let msn = self.inner.next_msn.fetch_add(1, Ordering::Relaxed);
            let total = data.len() as u32;
            self.inner.tx_tel.tx_msgs.inc();
            self.inner.tx_tel.msg_size_tx.record(u64::from(total));
            let di = match dests.iter().position(|(d, _)| *d == addr) {
                Some(i) => i,
                None => {
                    dests.push((addr, Vec::new()));
                    dests.len() - 1
                }
            };
            let mut mo = 0usize;
            loop {
                self.inner.tx_tel.tx_segments.inc();
                let end = (mo + cap).min(data.len());
                let hdr = UntaggedHdr {
                    opcode: RdmapOpcode::Send,
                    last: end == data.len(),
                    qn: QN_SEND,
                    msn,
                    mo: mo as u32,
                    total_len: total,
                    src_qpn: self.inner.qpn,
                    msg_id,
                    solicited,
                };
                enc.push(&hdr, data.slice(mo..end));
                seg_dis.push(di);
                if end == data.len() {
                    break;
                }
                mo = end;
            }
            posted.push((wr_id, total, di, signaled));
        }
        for (sg, di) in enc.finish().into_iter().zip(seg_dis) {
            dests[di].1.push(sg);
        }
        // One burst per destination; remember which flushes failed.
        let mut flushed = vec![true; dests.len()];
        for (i, (dst, segs)) in dests.into_iter().enumerate() {
            self.inner.tx_tel.tx_bursts.inc();
            if let Err(e) = conduit.send_sg_burst(dst, segs) {
                flushed[i] = false;
                if result.is_ok() {
                    result = Err(e.into());
                }
            }
        }
        // All completions in WR order under one CQ lock/notify round.
        // Unsignaled WRs whose flush succeeded retire without a CQE;
        // flush errors always surface one.
        let mut retired = 0u64;
        let cqes = posted
            .into_iter()
            .filter_map(|(wr_id, total, di, signaled)| {
                if flushed[di] && !signaled {
                    retired += 1;
                    return None;
                }
                Some(Cqe {
                    wr_id,
                    opcode: CqeOpcode::Send,
                    status: if flushed[di] {
                        CqeStatus::Success
                    } else {
                        CqeStatus::Error
                    },
                    byte_len: total,
                    src: None,
                    write_record: None,
                    imm: None,
                    solicited: false,
                })
            })
            .collect();
        self.inner.send_cq.push_batch(cqes);
        self.inner.send_cq.retire_unsignaled(retired);
        result
    }

    fn post_send_inner(
        &self,
        wr_id: u64,
        payload: SendPayload,
        dest: UdDest,
        solicited: bool,
        signaled: bool,
    ) -> IwarpResult<()> {
        let data = payload.into_bytes()?;
        if data.len() > self.inner.max_msg_size {
            return Err(IwarpError::MessageTooLong {
                len: data.len(),
                max: self.inner.max_msg_size,
            });
        }
        let msg_id = self.inner.next_msg_id.fetch_add(1, Ordering::Relaxed);
        let msn = self.inner.next_msn.fetch_add(1, Ordering::Relaxed);
        let cap = self.untagged_seg_capacity();
        let total = data.len() as u32;
        self.inner.tx_tel.tx_msgs.inc();
        self.inner.tx_tel.msg_size_tx.record(u64::from(total));
        let mut mo = 0usize;
        loop {
            self.inner.tx_tel.tx_segments.inc();
            let end = (mo + cap).min(data.len());
            let hdr = UntaggedHdr {
                opcode: RdmapOpcode::Send,
                last: end == data.len(),
                qn: QN_SEND,
                msn,
                mo: mo as u32,
                total_len: total,
                src_qpn: self.inner.qpn,
                msg_id,
                solicited,
            };
            if let Err(e) = self.send_untagged_seg(&hdr, &data, mo, end, dest.addr) {
                // The WR was accepted and earlier segments may already be
                // on the wire, so the application must see a completion —
                // but never a Success one. `byte_len` reports the bytes
                // flushed before the failure.
                self.inner.send_cq.push(Cqe {
                    wr_id,
                    opcode: CqeOpcode::Send,
                    status: CqeStatus::Error,
                    byte_len: mo as u32,
                    src: None,
                    write_record: None,
                    imm: None,
                    solicited: false,
                });
                return Err(e);
            }
            if end == data.len() {
                break;
            }
            mo = end;
        }
        if signaled {
            self.inner.send_cq.push(Cqe {
                wr_id,
                opcode: CqeOpcode::Send,
                status: CqeStatus::Success,
                byte_len: total,
                src: None,
                write_record: None,
                imm: None,
                solicited: false,
            });
        } else {
            self.inner.send_cq.retire_unsignaled(1);
        }
        Ok(())
    }

    /// Posts an **RDMA Write-Record** to `(remote_stag, remote_to)` on the
    /// target named by `dest` — the paper's new one-sided operation. No
    /// receive is consumed at the target; its stack logs a completion with
    /// a validity map once the final segment arrives.
    pub fn post_write_record(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        dest: UdDest,
        remote_stag: u32,
        remote_to: u64,
    ) -> IwarpResult<()> {
        self.post_tagged(
            wr_id,
            payload.into(),
            dest,
            remote_stag,
            remote_to,
            RdmapOpcode::WriteRecord,
            true,
            0,
        )
    }

    /// Posts an InfiniBand-style **RDMA Write with Immediate**: data is
    /// placed one-sided, but delivering `imm` consumes a *posted receive*
    /// at the target — the requirement RDMA Write-Record removes
    /// (paper §IV.B.3). On UD, if no receive is posted the immediate is
    /// lost (counted in the target's `dropped_no_rq`).
    pub fn post_write_imm(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        dest: UdDest,
        remote_stag: u32,
        remote_to: u64,
        imm: u32,
    ) -> IwarpResult<()> {
        self.post_tagged(
            wr_id,
            payload.into(),
            dest,
            remote_stag,
            remote_to,
            RdmapOpcode::RdmaWriteImm,
            true,
            imm,
        )
    }

    /// Posts a plain RDMA Write (no target-side completion). Only
    /// meaningful on RD mode, where delivery is guaranteed; on UD the
    /// target application would have no way to learn the data arrived —
    /// use [`Self::post_write_record`] there (the paper's point).
    pub fn post_write(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        dest: UdDest,
        remote_stag: u32,
        remote_to: u64,
    ) -> IwarpResult<()> {
        self.post_tagged(
            wr_id,
            payload.into(),
            dest,
            remote_stag,
            remote_to,
            RdmapOpcode::RdmaWrite,
            false,
            0,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn post_tagged(
        &self,
        wr_id: u64,
        payload: SendPayload,
        dest: UdDest,
        remote_stag: u32,
        remote_to: u64,
        opcode: RdmapOpcode,
        notify: bool,
        imm: u32,
    ) -> IwarpResult<()> {
        let data = payload.into_bytes()?;
        if data.len() > self.inner.max_msg_size {
            return Err(IwarpError::MessageTooLong {
                len: data.len(),
                max: self.inner.max_msg_size,
            });
        }
        let msg_id = self.inner.next_msg_id.fetch_add(1, Ordering::Relaxed);
        let cap = self.tagged_seg_capacity();
        let total = data.len() as u32;
        self.inner.tx_tel.tx_msgs.inc();
        self.inner.tx_tel.msg_size_tx.record(u64::from(total));
        let mut off = 0usize;
        loop {
            self.inner.tx_tel.tx_segments.inc();
            let end = (off + cap).min(data.len());
            let hdr = TaggedHdr {
                opcode,
                last: end == data.len(),
                notify,
                stag: remote_stag,
                to: remote_to + off as u64,
                base_to: remote_to,
                total_len: total,
                src_qpn: self.inner.qpn,
                msg_id,
                imm,
            };
            if let Err(e) = send_tagged_seg(&self.inner, &hdr, &data, off, end, dest.addr) {
                // Same contract as the untagged path: a mid-message flush
                // failure completes the WR with an error, never Success.
                self.inner.send_cq.push(Cqe {
                    wr_id,
                    opcode: CqeOpcode::RdmaWrite,
                    status: CqeStatus::Error,
                    byte_len: off as u32,
                    src: None,
                    write_record: None,
                    imm: None,
                    solicited: false,
                });
                return Err(e);
            }
            if end == data.len() {
                break;
            }
            off = end;
        }
        self.inner.send_cq.push(Cqe {
            wr_id,
            opcode: CqeOpcode::RdmaWrite,
            status: CqeStatus::Success,
            byte_len: total,
            src: None,
            write_record: None,
        imm: None,
        solicited: false,
        });
        Ok(())
    }

    /// Posts an RDMA Read (paper future-work extension): fetches
    /// `len` bytes from `(remote_stag, remote_to)` on `dest` into
    /// `(sink, sink_to)`. Completes on the **receive** CQ with the given
    /// `wr_id`; if the response is lost on UD, the completion carries
    /// [`CqeStatus::Expired`] after the configured read TTL.
    #[allow(clippy::too_many_arguments)]
    pub fn post_read(
        &self,
        wr_id: u64,
        sink: &MemoryRegion,
        sink_to: u64,
        len: u32,
        dest: UdDest,
        remote_stag: u32,
        remote_to: u64,
    ) -> IwarpResult<()> {
        self.post_read_inner(wr_id, sink, sink_to, len, dest, remote_stag, remote_to, true)
    }

    /// Posts an **unsignaled** RDMA Read: on success no CQE is generated —
    /// the completed `wr_id` is instead retired into a drainable list
    /// ([`Self::take_retired_reads`]) and counted under
    /// `core.cq.unsignaled_retired`. A read that *expires* (response lost
    /// past the read TTL) always surfaces an [`CqeStatus::Expired`] CQE,
    /// signaled or not — errors are never silent. This is the
    /// `sq_sig_all=0` discipline for the streaming-read engine
    /// ([`crate::read::BulkRead`]).
    #[allow(clippy::too_many_arguments)]
    pub fn post_read_unsignaled(
        &self,
        wr_id: u64,
        sink: &MemoryRegion,
        sink_to: u64,
        len: u32,
        dest: UdDest,
        remote_stag: u32,
        remote_to: u64,
    ) -> IwarpResult<()> {
        self.post_read_inner(wr_id, sink, sink_to, len, dest, remote_stag, remote_to, false)
    }

    /// Completed unsignaled reads' `wr_id`s, drained in completion order.
    #[must_use]
    pub fn take_retired_reads(&self) -> Vec<u64> {
        self.inner.rx.take_retired_reads()
    }

    #[allow(clippy::too_many_arguments)]
    fn post_read_inner(
        &self,
        wr_id: u64,
        sink: &MemoryRegion,
        sink_to: u64,
        len: u32,
        dest: UdDest,
        remote_stag: u32,
        remote_to: u64,
        signaled: bool,
    ) -> IwarpResult<()> {
        // Validate the sink locally before emitting the request.
        sink.read_bytes(sink_to, 0)?;
        if u64::from(len) + sink_to > sink.len() as u64 {
            return Err(IwarpError::AccessViolation {
                stag: sink.stag(),
                offset: sink_to,
                len,
            });
        }
        let msg_id = self.inner.next_msg_id.fetch_add(1, Ordering::Relaxed);
        self.inner.rx.register_read(
            msg_id,
            RxCore::new_pending_read(wr_id, sink.clone(), sink_to, len, signaled),
        );
        let req = ReadRequest {
            sink_stag: sink.stag(),
            sink_to,
            len,
            src_stag: remote_stag,
            src_to: remote_to,
        };
        let hdr = UntaggedHdr {
            opcode: RdmapOpcode::ReadRequest,
            last: true,
            solicited: false,
            qn: QN_READ_REQUEST,
            msn: self.inner.next_msn.fetch_add(1, Ordering::Relaxed),
            mo: 0,
            total_len: crate::hdr::READ_REQUEST_LEN as u32,
            src_qpn: self.inner.qpn,
            msg_id,
        };
        let req = req.encode();
        self.inner.tx_tel.tx_msgs.inc();
        self.inner.tx_tel.tx_segments.inc();
        self.send_untagged_seg(&hdr, &req, 0, req.len(), dest.addr)?;
        Ok(())
    }

    /// Emits one untagged segment (`data[mo..end]` under `hdr`) on the
    /// configured datapath: pooled-header scatter-gather or the legacy
    /// contiguous encode (whose payload copy is counted).
    fn send_untagged_seg(
        &self,
        hdr: &UntaggedHdr,
        data: &Bytes,
        mo: usize,
        end: usize,
        dst: Addr,
    ) -> IwarpResult<()> {
        let inner = &self.inner;
        match inner.copy_path {
            CopyPath::Sg => {
                let seg = encode_untagged_sg(hdr, &data.slice(mo..end), &inner.pool);
                inner.llp.send_seg(dst, seg, &inner.tx_tel.bytes_copied)?;
            }
            CopyPath::Legacy => {
                inner.tx_tel.bytes_copied.add((end - mo) as u64);
                inner.llp.send_to(dst, encode_untagged(hdr, &data[mo..end], true))?;
            }
        }
        Ok(())
    }

    /// Write-Record messages at this *target* still awaiting their final
    /// segment (diagnostic).
    #[must_use]
    pub fn records_pending(&self) -> usize {
        self.inner.rx.records_pending()
    }

    /// Whether the receive engine's cold substructures (reassembly map,
    /// Write-Record table, pending-read scoreboard) have been allocated.
    /// Stays `false` for idle QPs and for traffic that rides the
    /// single-segment fast path — the memory-scaling invariant the slab
    /// compaction work (and its regression tests) relies on.
    #[must_use]
    pub fn rx_cold_allocated(&self) -> bool {
        self.inner.rx.cold_state_allocated()
    }

    /// Subscribes this UD QP to a multicast group: sends addressed to
    /// `UdDest { addr: group, .. }` then reach every member — the
    /// "multicast capable iWARP" the paper's motivation calls out for
    /// high-bandwidth media distribution (§IV.A). UD mode only.
    pub fn join_multicast(&self, group: Addr) -> IwarpResult<()> {
        match &self.inner.llp {
            DgLlp::Ud(c) => Ok(c.join_multicast(group)?),
            DgLlp::Rd(_) => Err(IwarpError::QpState(
                "multicast is defined for UD QPs only",
            )),
        }
    }

    /// Unsubscribes this UD QP from `group` (no-op on RD).
    pub fn leave_multicast(&self, group: Addr) {
        if let DgLlp::Ud(c) = &self.inner.llp {
            c.leave_multicast(group);
        }
    }
}

impl std::fmt::Debug for DatagramQp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatagramQp")
            .field("qpn", &self.inner.qpn)
            .field("addr", &self.local_addr())
            .field("reliable", &self.is_reliable())
            .finish()
    }
}

impl Drop for DatagramQp {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some((map, qpn)) = self.shard.take() {
            // Silence the fabric notifier first so no new readiness is
            // queued, then pull the QP out of its shard's inbox.
            let _ = self.inner.llp.set_notify(None);
            map.unregister(qpn);
        }
        if let Some(t) = self.rx_thread.take() {
            let _ = t.join();
        }
        self.inner.rx.flush();
    }
}

/// RX engine thread body (threaded mode).
fn rx_loop(inner: &DgInner) {
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        rx_step(inner, Duration::from_millis(5));
    }
}

/// One receive-engine iteration: the software stand-in for the RNIC's
/// receive DMA engine. Shared by the engine thread and poll-mode callers.
///
/// Datagrams arrive as scatter-gather lists: an unfragmented SG-path
/// datagram reaches this decode as the sender's original slices, with its
/// CRC check deferred ([`decode_sg`]) so the engine can fuse it with the
/// placement copy instead of flattening here.
fn rx_step(inner: &DgInner, max_wait: Duration) {
    match inner.llp.recv_sg(max_wait) {
        Ok((src, dgram)) => rx_dispatch(inner, src, &dgram),
        Err(NetError::Timeout) => {}
        Err(_) => return,
    }
    inner.rx.expire();
}

/// Decodes and places one received datagram — the per-message half of
/// [`rx_step`], shared with the shard engines' batch drain.
fn rx_dispatch(inner: &DgInner, src: Addr, dgram: &SgBytes) {
    let with_crc = true; // mandatory on the datagram path (paper §IV.B.6)
    match decode_sg(dgram, with_crc) {
        Ok((seg, pending)) => {
            if let Some(action) = inner.rx.handle_deferred(src, seg, pending) {
                respond(inner, action);
            }
        }
        Err(IwarpError::CrcMismatch) => {
            inner.rx.stats.crc_errors.fetch_add(1, Ordering::Relaxed);
            inner.rx.note_crc_error();
        }
        Err(_) => {
            inner.rx.stats.malformed.fetch_add(1, Ordering::Relaxed);
            inner.rx.note_malformed();
        }
    }
}

/// Shard-engine drain: processes up to `budget` already-delivered
/// datagrams without blocking, then runs the (self-throttled) expiry
/// sweep. Returns `true` when the budget was exhausted — more datagrams
/// may be pending and the caller should re-queue this QP (fairness:
/// a flooding QP must not starve its shard siblings).
pub(crate) fn rx_drain(inner: &DgInner, budget: usize) -> bool {
    if inner.burst_path == BurstPath::Burst {
        // Burst ingest: one receive-queue lock round pulls the whole
        // batch, then each datagram runs the identical dispatch path.
        let dgrams = inner.llp.try_recv_sg_burst(budget);
        let exhausted = dgrams.len() == budget;
        inner.rx.begin_completion_batch();
        for (src, dgram) in &dgrams {
            rx_dispatch(inner, *src, dgram);
        }
        inner.rx.expire();
        inner.rx.flush_completion_batch();
        return exhausted;
    }
    for _ in 0..budget {
        match inner.llp.try_recv_sg() {
            Ok((src, dgram)) => rx_dispatch(inner, src, &dgram),
            Err(NetError::Timeout) => {
                inner.rx.expire();
                return false;
            }
            Err(_) => return false,
        }
    }
    inner.rx.expire();
    true
}

/// Runs one TTL-expiry sweep (self-throttled inside [`RxCore::expire`]).
/// Shard workers call this for *idle* QPs on their housekeeping tick so
/// a partially received message still expires into an `Expired` CQE when
/// its peer goes quiet.
///
/// [`RxCore::expire`]: crate::qp::rx::RxCore::expire
pub(crate) fn expire_tick(inner: &DgInner) {
    inner.rx.expire();
}

/// Emits one tagged segment (`data[off..end]` under `hdr`) on the
/// configured datapath (see [`DatagramQp::send_untagged_seg`]).
fn send_tagged_seg(
    inner: &DgInner,
    hdr: &TaggedHdr,
    data: &Bytes,
    off: usize,
    end: usize,
    dst: Addr,
) -> IwarpResult<()> {
    match inner.copy_path {
        CopyPath::Sg => {
            let seg = encode_tagged_sg(hdr, &data.slice(off..end), &inner.pool);
            inner.llp.send_seg(dst, seg, &inner.tx_tel.bytes_copied)?;
        }
        CopyPath::Legacy => {
            inner.tx_tel.bytes_copied.add((end - off) as u64);
            inner.llp.send_to(dst, encode_tagged(hdr, &data[off..end], true))?;
        }
    }
    Ok(())
}

/// Sends an RDMA Read Response as tagged `ReadResponse` segments.
fn respond(inner: &DgInner, action: RxAction) {
    let RxAction::SendReadResponse {
        dst,
        sink_stag,
        sink_to,
        data,
        msg_id,
    } = action;
    let cap = inner.llp.max_datagram() - TAGGED_HDR_LEN - CRC_LEN;
    let total = data.len() as u32;
    let mut off = 0usize;
    loop {
        let end = (off + cap).min(data.len());
        let hdr = TaggedHdr {
            opcode: RdmapOpcode::ReadResponse,
            last: end == data.len(),
            notify: false,
            stag: sink_stag,
            to: sink_to + off as u64,
            base_to: sink_to,
            total_len: total,
            src_qpn: inner.qpn,
            msg_id,
            imm: 0,
        };
        let _ = send_tagged_seg(inner, &hdr, &data, off, end, dst);
        if end == data.len() {
            break;
        }
        off = end;
    }
}
