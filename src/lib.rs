//! `datagram-iwarp` — umbrella crate for the datagram-iWARP workspace.
//!
//! A from-scratch Rust reproduction of *RDMA Capable iWARP over Datagrams*
//! (Grant, Rashti, Afsahi, Balaji — IPDPS 2011): a software iWARP stack
//! extended to unreliable (UD) and reliable (RD) datagram transports, the
//! **RDMA Write-Record** one-sided operation, an SDP-like socket shim, the
//! paper's evaluation applications, and a simulated Ethernet substrate.
//!
//! This crate re-exports the workspace members under one roof:
//!
//! * [`common`] — CRC32C, validity maps, memory accounting, stats;
//! * [`net`] — the simulated fabric and transport conduits;
//! * [`verbs`] — the iWARP stack itself (devices, QPs, CQs, MRs);
//! * [`sockets`] — the socket interface over UD/RC queue pairs;
//! * [`apps`] — the media-streaming and SIP evaluation workloads;
//! * [`cc`] — the shared loss-recovery engine and pluggable congestion
//!   controllers driving the reliable conduits;
//! * [`telemetry`] — stack-wide counters, histograms, and packet tracing
//!   (reach it from a running stack via `fabric.telemetry()`);
//! * [`chaos`] — the seeded fault adversary, cross-layer invariant
//!   oracle, and replayable chaos harness (see `chaos --replay`).
//!
//! Start with `examples/quickstart.rs`, then see DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the figure-by-figure reproduction.

pub use iwarp_apps as apps;
pub use iwarp_cc as cc;
pub use iwarp_chaos as chaos;
pub use iwarp_common as common;
pub use iwarp_socket as sockets;
pub use iwarp as verbs;
pub use iwarp_telemetry as telemetry;
pub use simnet as net;
