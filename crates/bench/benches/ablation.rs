//! Ablation benchmarks for the design costs the paper calls out:
//!
//! * CRC32 — mandatory on every datagram-iWARP segment;
//! * MPA marker insertion/removal — the per-byte cost datagram mode
//!   deletes ("a high overhead activity", §IV.A);
//! * DDP segmentation — header encode + CRC per segment;
//! * validity-map maintenance — the Write-Record bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iwarp::hdr::{encode_untagged, RdmapOpcode, UntaggedHdr};
use iwarp::mpa::{MpaConfig, MpaRx, MpaTx};
use iwarp_common::crc32::crc32c;
use iwarp_common::validity::ValidityMap;

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_crc32c");
    for size in [1500usize, 64 * 1024] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| crc32c(data));
        });
    }
    g.finish();
}

fn bench_mpa(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mpa");
    // MULPDU is bounded by the stream MSS in practice; use a large-but-
    // legal ULPDU (the FPDU length field is 16-bit).
    let payload = vec![0x5Au8; 32 * 1024];
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (label, markers, crc) in [
        ("markers+crc", true, true),
        ("crc_only", false, true),
        ("framing_only", false, false),
    ] {
        let cfg = MpaConfig { markers, crc };
        g.bench_function(format!("frame_{label}"), |b| {
            b.iter_batched(
                || MpaTx::new(cfg),
                |mut tx| tx.frame(&payload),
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("roundtrip_{label}"), |b| {
            b.iter_batched(
                || (MpaTx::new(cfg), MpaRx::new(cfg)),
                |(mut tx, mut rx)| {
                    let framed = tx.frame(&payload);
                    let mut out = Vec::new();
                    rx.feed(&framed, &mut out).expect("mpa roundtrip");
                    out
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ddp_segment");
    let msg = vec![0x11u8; 64 * 1024];
    let seg = 1448usize;
    g.throughput(Throughput::Bytes(msg.len() as u64));
    for (label, with_crc) in [("with_crc", true), ("without_crc", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut out = 0usize;
                let mut mo = 0usize;
                let mut msn = 0u32;
                while mo < msg.len() {
                    let end = (mo + seg).min(msg.len());
                    let hdr = UntaggedHdr {
                        opcode: RdmapOpcode::Send,
                        last: end == msg.len(),
                        solicited: false,
                        qn: 0,
                        msn,
                        mo: mo as u32,
                        total_len: msg.len() as u32,
                        src_qpn: 1,
                        msg_id: 7,
                    };
                    out += encode_untagged(&hdr, &msg[mo..end], with_crc).len();
                    mo = end;
                    msn += 1;
                }
                out
            });
        });
    }
    g.finish();
}

fn bench_validity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_validity_map");
    g.bench_function("record_in_order_44_frags", |b| {
        b.iter(|| {
            let mut m = ValidityMap::new();
            for i in 0..44u64 {
                m.record(i * 1448, 1448);
            }
            m.valid_bytes()
        });
    });
    g.bench_function("record_reverse_44_frags", |b| {
        b.iter(|| {
            let mut m = ValidityMap::new();
            for i in (0..44u64).rev() {
                m.record(i * 1448, 1448);
            }
            m.valid_bytes()
        });
    });
    g.bench_function("record_with_gaps", |b| {
        b.iter(|| {
            let mut m = ValidityMap::new();
            for i in (0..88u64).step_by(2) {
                m.record(i * 1448, 1448);
            }
            m.gaps(88 * 1448).len()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_mpa,
    bench_segmentation,
    bench_validity
);
criterion_main!(benches);
