//! Property tests for the recovery engine's scoreboard invariant.
//!
//! The engine promises that at every point in its lifetime, the tracked
//! segments — in-flight ∪ sacked ∪ lost — exactly partition the
//! outstanding sequence range `[una, nxt)`: no gaps, no overlaps, in
//! every congestion-control mode, under any interleaving of sends,
//! cumulative ACKs (including partial ACKs that split segments), SACK
//! ranges, duplicate ACKs, timer sweeps and retransmit pops. These tests
//! drive random event sequences and call `check_partition` after every
//! single step.

use std::time::Duration;

use iwarp_cc::{RecoveryConfig, RecoveryEngine};
use iwarp_common::ccalgo::CcAlgo;
use proptest::prelude::*;

/// One randomly generated engine event.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Send `len` fresh units.
    Send(u64),
    /// Cumulative-ACK a fraction of the outstanding range (scaled 0..=64
    /// over `[una, nxt]`, so partial-ACK splits get exercised).
    CumAck(u8),
    /// SACK a sub-range of the outstanding span (fractions of 64).
    Sack(u8, u8),
    /// A duplicate cumulative ACK.
    DupAck,
    /// Run gap-based loss detection.
    Detect,
    /// Advance time to the timer deadline and sweep.
    Rto,
    /// Drain one retransmission.
    PopRtx,
}

prop_compose! {
    fn ev_send()(len in 1u64..12) -> Ev { Ev::Send(len) }
}
prop_compose! {
    fn ev_cum_ack()(f in 0u8..=64) -> Ev { Ev::CumAck(f) }
}
prop_compose! {
    fn ev_sack()(a in 0u8..=64, b in 0u8..=64) -> Ev { Ev::Sack(a.min(b), a.max(b)) }
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        ev_send(),
        ev_cum_ack(),
        ev_sack(),
        Just(Ev::DupAck),
        Just(Ev::Detect),
        Just(Ev::Rto),
        Just(Ev::PopRtx),
    ]
}

/// Maps a 0..=64 fraction onto the current outstanding range.
fn scale(una: u64, nxt: u64, f: u8) -> u64 {
    una + (nxt - una) * u64::from(f) / 64
}

fn run_events(algo: CcAlgo, events: &[Ev]) -> Result<(), TestCaseError> {
    let cfg = RecoveryConfig {
        algo,
        quantum: 1,
        init_cwnd: 4,
        fixed_window: 32,
        bdp_cap: 128,
        initial_rto: Duration::from_millis(10),
        min_rto: Duration::from_millis(1),
        max_rto: Duration::from_millis(200),
        backoff: true,
        max_retries: 4,
        dup_threshold: 2,
        rtx_queue_cap: 8, // small, so overflow + requeue paths run
        paced: false,
    };
    let mut e = RecoveryEngine::new_at(cfg, 1);
    let mut t = Duration::ZERO;
    for (i, ev) in events.iter().enumerate() {
        t += Duration::from_micros(250);
        match *ev {
            Ev::Send(len) => {
                if e.can_send(len, u64::MAX) {
                    e.on_send(t, len);
                }
            }
            Ev::CumAck(f) => {
                e.on_cum_ack(t, scale(e.una(), e.nxt(), f));
            }
            Ev::Sack(lo, hi) => {
                let (l, h) = (scale(e.una(), e.nxt(), lo), scale(e.una(), e.nxt(), hi));
                e.on_sack_range(t, l, h);
            }
            Ev::DupAck => e.on_dup_ack(t),
            Ev::Detect => {
                e.detect_losses(t);
            }
            Ev::Rto => {
                if let Some(d) = e.rto_deadline() {
                    t = t.max(d);
                    e.sweep(t);
                }
            }
            Ev::PopRtx => {
                e.pop_rtx(t);
            }
        }
        if let Err(msg) = e.check_partition() {
            return Err(TestCaseError::fail(format!(
                "after event #{i} {ev:?} (algo {algo}): {msg}"
            )));
        }
        // The scoreboard totals must account for the whole span.
        let (inf, sack, lost) = e.scoreboard();
        prop_assert_eq!(
            inf + sack + lost,
            e.outstanding(),
            "scoreboard totals diverged after event #{} {:?}",
            i,
            ev
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partition invariant holds for every algorithm under random
    /// event interleavings.
    #[test]
    fn scoreboard_partitions_outstanding_range(
        events in proptest::collection::vec(ev_strategy(), 1..120),
        algo_idx in 0usize..3,
    ) {
        run_events(CcAlgo::ALL[algo_idx], &events)?;
    }

    /// Determinism: feeding the same event sequence twice produces the
    /// same scoreboard (the engine holds no RNG / hidden clock state).
    #[test]
    fn same_events_same_scoreboard(
        events in proptest::collection::vec(ev_strategy(), 1..80),
        algo_idx in 0usize..3,
    ) {
        let algo = CcAlgo::ALL[algo_idx];
        let run = |events: &[Ev]| {
            let cfg = RecoveryConfig {
                algo,
                quantum: 1,
                init_cwnd: 4,
                fixed_window: 32,
                bdp_cap: 128,
                initial_rto: Duration::from_millis(10),
                min_rto: Duration::from_millis(1),
                max_rto: Duration::from_millis(200),
                backoff: true,
                max_retries: 4,
                dup_threshold: 2,
                rtx_queue_cap: 8,
                paced: false,
            };
            let mut e = RecoveryEngine::new_at(cfg, 1);
            let mut t = Duration::ZERO;
            let mut pops = Vec::new();
            for ev in events {
                t += Duration::from_micros(250);
                match *ev {
                    Ev::Send(len) => {
                        if e.can_send(len, u64::MAX) {
                            e.on_send(t, len);
                        }
                    }
                    Ev::CumAck(f) => {
                        e.on_cum_ack(t, scale(e.una(), e.nxt(), f));
                    }
                    Ev::Sack(lo, hi) => {
                        let (l, h) = (scale(e.una(), e.nxt(), lo), scale(e.una(), e.nxt(), hi));
                        e.on_sack_range(t, l, h);
                    }
                    Ev::DupAck => e.on_dup_ack(t),
                    Ev::Detect => {
                        e.detect_losses(t);
                    }
                    Ev::Rto => {
                        if let Some(d) = e.rto_deadline() {
                            t = t.max(d);
                            e.sweep(t);
                        }
                    }
                    Ev::PopRtx => pops.push(e.pop_rtx(t)),
                }
            }
            (e.una(), e.nxt(), e.cwnd(), e.scoreboard(), e.is_dead(), pops)
        };
        prop_assert_eq!(run(&events), run(&events));
    }
}
