//! Queue pairs: the verbs-level objects applications talk to.
//!
//! Three flavours, per the paper's design space:
//!
//! * [`RcQp`] — standard reliable-connection iWARP over the TCP-like
//!   stream LLP with MPA framing (the baseline);
//! * [`UdQp`] — datagram-iWARP over unreliable datagrams, with
//!   send/recv, **RDMA Write-Record** and the UD RDMA Read extension;
//! * [`RdQp`] — datagram-iWARP over the reliable-datagram LLP.
//!
//! UD and RD share one engine ([`DatagramQp`]); they differ only in the
//! conduit underneath — exactly the paper's framing, where the same
//! datagram-iWARP design runs over "both unreliable and reliable datagram
//! transports" (§IV.B).
//!
//! ## Threading model
//!
//! This is a *software* iWARP stack, like the paper's proof of concept:
//! posting a send performs RDMAP/DDP processing inline in the caller
//! (completing "at the moment that the last bit of the message is passed
//! to the transport layer", §IV.B.3), while a per-QP RX engine thread
//! plays the role of the RNIC's receive-side DMA engine.

pub(crate) mod dgram;
pub(crate) mod rc;
pub(crate) mod rx;

pub use dgram::{DatagramQp, QpStats};
pub use rc::{RcListener, RcQp};

use std::time::Duration;

/// A datagram QP over the *unreliable* datagram LLP (UDP analog).
pub type UdQp = DatagramQp;

/// A datagram QP over the *reliable* datagram LLP ("RD mode").
pub type RdQp = DatagramQp;

/// Queue-pair configuration knobs.
#[derive(Clone, Debug)]
pub struct QpConfig {
    /// Largest message the QP will segment and send.
    pub max_msg_size: usize,
    /// How long a partially received untagged message may wait for its
    /// missing segments before the posted receive is recovered with an
    /// [`crate::cq::CqeStatus::Expired`] completion.
    pub recv_ttl: Duration,
    /// How long a Write-Record message missing its final segment is
    /// remembered before the record is reaped (no completion).
    pub record_ttl: Duration,
    /// How long a pending RDMA Read waits for its response.
    pub read_ttl: Duration,
    /// Poll mode: no per-QP RX engine thread is spawned; receive-side
    /// protocol processing runs inside [`DatagramQp::progress`] /
    /// [`RcQp::progress`] calls (typically driven by the socket shim's
    /// receive path). This is how one process scales to tens of thousands
    /// of QPs for the paper's memory experiment.
    pub poll_mode: bool,
    /// Which transmit datapath the QP uses: scatter-gather (pooled header
    /// buffers chained with payload slices) or the legacy contiguous
    /// reference path. Defaults to the process-wide
    /// [`iwarp_common::copypath::default_path`] at construction time, so
    /// `figures --copy-path=legacy` A/Bs the whole stack.
    pub copy_path: iwarp_common::copypath::CopyPath,
    /// Whether batch verbs and the RX engine move one packet per call
    /// ([`BurstPath::PerPacket`], the reference behaviour) or batch
    /// vectors of packets per fabric/CQ lock round
    /// ([`BurstPath::Burst`]). Wire bytes are identical under a fixed
    /// seed either way; defaults to the process-wide
    /// [`iwarp_common::burstpath::default_path`] at construction time, so
    /// `--burst-path=burst` A/Bs the whole stack.
    ///
    /// [`BurstPath::PerPacket`]: iwarp_common::burstpath::BurstPath::PerPacket
    /// [`BurstPath::Burst`]: iwarp_common::burstpath::BurstPath::Burst
    pub burst_path: iwarp_common::burstpath::BurstPath,
}

impl Default for QpConfig {
    fn default() -> Self {
        Self {
            max_msg_size: 16 * 1024 * 1024,
            recv_ttl: Duration::from_millis(500),
            record_ttl: Duration::from_millis(500),
            read_ttl: Duration::from_millis(500),
            poll_mode: false,
            copy_path: iwarp_common::copypath::default_path(),
            burst_path: iwarp_common::burstpath::default_path(),
        }
    }
}
