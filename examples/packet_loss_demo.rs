//! Packet loss and partial placement (the paper's Figs. 7–8 in miniature).
//!
//! ```text
//! cargo run --release --example packet_loss_demo
//! ```
//!
//! Sweeps the paper's loss rates over one large message size and shows the
//! core Write-Record claim: when messages span many datagrams, send/recv
//! loses *everything* unless every datagram arrives, while Write-Record's
//! partial placement salvages the bytes that did land — and a reliable
//! datagram (RD) QP recovers everything at the cost of retransmission.

use std::time::Duration;

use bytes::Bytes;
use datagram_iwarp::net::{Fabric, LossModel, NodeId, WireConfig};
use datagram_iwarp::verbs::wr::RecvWr;
use datagram_iwarp::verbs::{Access, Cq, CqeStatus, Device, QpConfig};

const MSG: usize = 512 * 1024; // eight 64 KiB datagrams per message
const MSGS: usize = 24;

fn main() {
    println!(
        "{} messages of {} KiB each ({} datagrams per message)\n",
        MSGS,
        MSG >> 10,
        MSG.div_ceil(64 * 1024)
    );
    println!(
        "{:>8} | {:>26} | {:>26} | {:>20}",
        "loss", "UD send/recv", "UD Write-Record", "RD send/recv"
    );
    println!(
        "{:>8} | {:>26} | {:>26} | {:>20}",
        "", "complete msgs / bytes", "declared msgs / valid bytes", "complete msgs"
    );
    for rate in [0.0, 0.001, 0.005, 0.01, 0.05] {
        let (sr_msgs, sr_bytes) = run(rate, Mode::SendRecv);
        let (wr_msgs, wr_bytes) = run(rate, Mode::WriteRecord);
        let (rd_msgs, _) = run(rate, Mode::Rd);
        println!(
            "{:>7.1}% | {:>11} / {:>10} KiB | {:>11} / {:>10} KiB | {:>20}",
            rate * 100.0,
            sr_msgs,
            sr_bytes >> 10,
            wr_msgs,
            wr_bytes >> 10,
            rd_msgs,
        );
    }
    println!(
        "\nshape: send/recv completes only all-or-nothing messages; Write-Record\n\
         declares partially placed ones too (valid bytes >> send/recv bytes under\n\
         loss); RD trades latency for full reliability."
    );
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    SendRecv,
    WriteRecord,
    Rd,
}

fn run(rate: f64, mode: Mode) -> (usize, u64) {
    let fabric = Fabric::new(WireConfig {
        loss: LossModel::bernoulli(rate),
        seed: 42 + (rate * 1e4) as u64,
        ..WireConfig::default()
    });
    let dev_a = Device::new(&fabric, NodeId(0));
    let dev_b = Device::new(&fabric, NodeId(1));
    let (a_s, a_r) = (Cq::new(MSGS + 32), Cq::new(MSGS + 32));
    let (b_s, b_r) = (Cq::new(MSGS + 32), Cq::new(MSGS + 32));
    let cfg = QpConfig {
        recv_ttl: Duration::from_millis(150),
        record_ttl: Duration::from_millis(150),
        ..QpConfig::default()
    };
    let (qa, qb) = if mode == Mode::Rd {
        (
            dev_a.create_rd_qp(None, &a_s, &a_r, cfg.clone()).unwrap(),
            dev_b.create_rd_qp(None, &b_s, &b_r, cfg).unwrap(),
        )
    } else {
        (
            dev_a.create_ud_qp(None, &a_s, &a_r, cfg.clone()).unwrap(),
            dev_b.create_ud_qp(None, &b_s, &b_r, cfg).unwrap(),
        )
    };
    let sink = dev_b.register(MSG, Access::RemoteWrite);
    let payload = Bytes::from(vec![0x3Cu8; MSG]);

    if mode != Mode::WriteRecord {
        for i in 0..MSGS {
            qb.post_recv(RecvWr::whole(i as u64, &sink)).unwrap();
        }
    }
    for _ in 0..MSGS {
        match mode {
            Mode::WriteRecord => qa
                .post_write_record(0, payload.clone(), qb.dest(), sink.stag(), 0)
                .unwrap(),
            _ => qa.post_send(0, payload.clone(), qb.dest()).unwrap(),
        }
        while qa.send_cq().poll().is_some() {}
    }

    let mut complete = 0usize;
    let mut bytes = 0u64;
    let mut seen = 0usize;
    while seen < MSGS {
        match b_r.poll_timeout(Duration::from_secs(2)) {
            Ok(cqe) => {
                seen += 1;
                match cqe.status {
                    CqeStatus::Success => {
                        complete += 1;
                        bytes += u64::from(cqe.byte_len);
                    }
                    CqeStatus::Partial => {
                        complete += 1; // declared, with gaps
                        bytes += u64::from(cqe.byte_len);
                    }
                    _ => {}
                }
            }
            Err(_) => break,
        }
    }
    (complete, bytes)
}
