//! SIP server load test (the paper's SIPp experiment, Figs. 10–11).
//!
//! ```text
//! cargo run --release --example sip_loadtest [-- <concurrent-calls>]
//! ```
//!
//! Spawns a SIP UAS over each transport, establishes N concurrent calls
//! with a SipStone-style load generator, and reports the INVITE→200
//! response time plus the server's instrumented memory at peak — the two
//! quantities behind the paper's "43.1% faster, 24.1% less memory" claims.

use std::time::Duration;

use datagram_iwarp::apps::sip::load::run_sip_load_with_peak_sample;
use datagram_iwarp::apps::sip::{SipLoadConfig, SipServer, SipServerConfig, SipTransport};
use datagram_iwarp::common::memacct::MemRegistry;
use datagram_iwarp::net::{Addr, Fabric, NodeId};
use datagram_iwarp::sockets::{SocketConfig, SocketStack};

fn stacks(fab: &Fabric, reg: MemRegistry) -> (SocketStack, SocketStack) {
    // Poll-mode everything: thousands of calls cost memory, not threads.
    let sock = SocketConfig {
        recv_slots: 8,
        slot_size: 2048,
        qp: datagram_iwarp::verbs::QpConfig {
            poll_mode: true,
            ..datagram_iwarp::verbs::QpConfig::default()
        },
        ..SocketConfig::default()
    };
    let stream = datagram_iwarp::net::stream::StreamConfig {
        snd_buf: 3072,
        rcv_buf: 3072,
        poll_mode: true,
        ..datagram_iwarp::net::stream::StreamConfig::default()
    };
    let server = SocketStack::with_config(
        fab,
        NodeId(1),
        datagram_iwarp::verbs::DeviceConfig {
            mem: Some(reg),
            stream: stream.clone(),
            ..datagram_iwarp::verbs::DeviceConfig::default()
        },
        sock.clone(),
    );
    let client = SocketStack::with_config(
        fab,
        NodeId(0),
        datagram_iwarp::verbs::DeviceConfig {
            stream,
            ..datagram_iwarp::verbs::DeviceConfig::default()
        },
        sock,
    );
    (server, client)
}

fn main() {
    let calls: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("calls must be a number"))
        .unwrap_or(500);
    println!("SipStone load: {calls} concurrent calls per transport\n");

    let mut memory = Vec::new();
    for (transport, port) in [(SipTransport::Ud, 5060u16), (SipTransport::Rc, 5061)] {
        let fab = Fabric::loopback();
        let reg = MemRegistry::new();
        let (server_stack, client_stack) = stacks(&fab, reg.clone());
        let server = SipServer::spawn(
            server_stack,
            SipServerConfig {
                transport,
                port,
                call_state_bytes: 1024,
            },
        )
        .expect("spawn server");

        let reg2 = reg.clone();
        let report = run_sip_load_with_peak_sample(
            &client_stack,
            &SipLoadConfig {
                calls,
                transport,
                server_addr: Addr::new(1, port),
                timeout: Duration::from_secs(30),
                call_state_bytes: 1024,
            },
            || {
                (
                    reg2.total_current(),
                    reg2.snapshot()
                        .into_iter()
                        .map(|(c, cur, _)| (c, cur))
                        .collect(),
                )
            },
        )
        .expect("load run");
        server.stop().expect("server stop");

        println!(
            "{transport:?}: {} calls, INVITE→200 median {:.0} µs (p95 {:.0} µs)",
            report.calls_established,
            report.response_us.median(),
            report.response_us.percentile(95.0),
        );
        println!("  server memory at peak: {} KiB", report.server_mem_bytes >> 10);
        for (cat, bytes) in &report.server_mem_by_category {
            println!("    {cat:<16} {:>10} KiB", bytes >> 10);
        }
        memory.push(report.server_mem_bytes as f64);
        println!();
    }

    let improvement = 100.0 * (1.0 - memory[0] / memory[1]);
    println!(
        "UD server memory is {improvement:.1}% below RC at {calls} concurrent calls \
         (paper: 24.1% at 10000 calls)"
    );
}
