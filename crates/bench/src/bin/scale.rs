//! `scale` — the many-QP concurrency-scaling harness (PR 4 acceptance).
//!
//! ```text
//! scale [--calls LIST] [--shards LIST] [--idle-ms N] [--out PATH] [--smoke] [--full] [--pin]
//!       [--ramp] [--ramp-calls LIST]
//! ```
//!
//! Runs SipStone-style closed-loop call batches (INVITE → 200 → ACK …
//! BYE → 200, one server socket per call, all over one shared socket
//! shim) across a matrix of datapath configurations:
//!
//! * `legacy`  — pre-scale-out baseline: poll-mode QPs, the server's
//!   O(active calls) scan loop (exactly the Fig. 10/11 setup);
//! * `poll`    — shard-driven RX engines but the scan-loop server
//!   (isolates sharding from event notification);
//! * `event`   — shard-driven RX engines and the server parked in
//!   `wait_ready` (the full PR 4 datapath), at 1/2/4 shards.
//!
//! Per configuration it records INVITE→200 p50/p99, aggregate messages/s,
//! and per-call instrumented server memory; while every call is held
//! established it also measures the server's **idle** CPU (process
//! utime+stime ticks over a quiet window) — the number that separates a
//! parked `wait_any` from a spinning scan. Results land in
//! `BENCH_PR4.json`.
//!
//! Caveat recorded in the output: shard *throughput* scaling needs shard
//! workers on separate cores. On a single-CPU host the shards serialize
//! onto one core and msgs/s is flat (or slightly down) with shard count;
//! `host_cpus` and per-run `msgs_per_sec_per_core` are written alongside
//! so readers can judge the numbers, and `--pin` pins shard workers to
//! cores (`sched_setaffinity`, advisory) to take the scheduler out of
//! the measurement. Under `--smoke` on a host with `host_cpus ≥ 2` the
//! bin additionally runs the PR 7 multi-core gate — 1-shard vs 4-shard
//! event mode, pinned, asserting a msgs/s ratio ≥ 1.5 — and records an
//! honest skip (with `host_cpus`) when the host cannot express
//! multi-core scaling at all. Smoke also enforces the PR 10 memory gate:
//! instrumented per-call bytes ≤ 6 KB at 1024 event-mode calls.
//!
//! `--ramp` switches to the PR 10 open-loop memory-scaling run: SipStone
//! dialogs are established and *held* at each `--ramp-calls` plateau
//! (default 10k/50k/100k, sharded round-robin across [`RAMP_STACKS`]
//! server/client stack pairs to dodge the u16 port ceiling), with a
//! memacct/RSS/slab/pool checkpoint and OPTIONS latency probes taken at
//! every plateau, then one closed-loop 1k event run to show the
//! compaction kept PR 4's throughput. Results land in `BENCH_PR10.json`.

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use iwarp_apps::sip::codec::{make_ack, make_invite, SipMessage, SipMethod};
use iwarp_apps::sip::load::run_sip_load_with_peak_sample;
use iwarp_apps::sip::{SipLoadConfig, SipServer, SipServerConfig, SipTransport};
use iwarp_common::memacct::{procfs_rss_bytes, MemRegistry};
use iwarp_common::notifypath::NotifyPath;
use iwarp_common::stats::Summary;
use iwarp_socket::{DgramProfile, DgramSocket, SocketConfig, SocketStack};
use simnet::{Addr, Fabric, NodeId, WireConfig};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Poll-mode QPs + scan-loop server: the pre-shard baseline.
    Legacy,
    /// Sharded RX engines, scan-loop server (`NotifyPath::Poll`).
    Poll { shards: usize },
    /// Sharded RX engines, `wait_ready`-parked server (`NotifyPath::Event`).
    Event { shards: usize },
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::Legacy => "legacy".into(),
            Mode::Poll { shards } => format!("poll-{shards}shard"),
            Mode::Event { shards } => format!("event-{shards}shard"),
        }
    }

    fn shards(self) -> usize {
        match self {
            Mode::Legacy => 0,
            Mode::Poll { shards } | Mode::Event { shards } => shards,
        }
    }

    fn notify(self) -> NotifyPath {
        match self {
            Mode::Legacy | Mode::Poll { .. } => NotifyPath::Poll,
            Mode::Event { .. } => NotifyPath::Event,
        }
    }
}

struct RunResult {
    mode: String,
    calls: usize,
    shards: usize,
    notify: &'static str,
    established: usize,
    msgs_per_sec: f64,
    /// msgs/s divided by the cores this configuration can actually use
    /// (shard workers + the client driver thread, capped at host_cpus).
    msgs_per_sec_per_core: f64,
    cores_used: usize,
    pinned: bool,
    p50_us: f64,
    p99_us: f64,
    server_mem_bytes: u64,
    per_call_bytes: f64,
    idle_cpu_ticks: u64,
    idle_window_ms: u64,
    elapsed_s: f64,
}

/// Process CPU time in clock ticks: utime+stime from `/proc/self/stat`
/// (fields 14/15; parsed after the last `)` so comm can't confuse it).
fn cpu_ticks() -> u64 {
    let Ok(stat) = fs::read_to_string("/proc/self/stat") else {
        return 0;
    };
    let Some(rest) = stat.rsplit(')').next() else {
        return 0;
    };
    let f: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = f.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
    let stime: u64 = f.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
    utime + stime
}

/// Each SIP transaction is five messages on the wire:
/// INVITE, 200(INVITE), ACK, BYE, 200(BYE).
const MSGS_PER_CALL: f64 = 5.0;

fn run_one(mode: Mode, calls: usize, idle_window: Duration, pin: bool) -> Result<RunResult, String> {
    // Unpaced wire: the harness measures stack processing capacity, not
    // modeled link rate.
    let fab = Fabric::new(WireConfig::default());
    let reg = MemRegistry::new();
    let legacy = mode == Mode::Legacy;
    let server_cfg = SocketConfig {
        recv_slots: 8,
        slot_size: 2048,
        notify: mode.notify(),
        qp: iwarp::QpConfig {
            poll_mode: legacy,
            ..iwarp::QpConfig::default()
        },
        ..SocketConfig::default()
    };
    let server_stack = SocketStack::with_config(
        &fab,
        NodeId(1),
        iwarp::DeviceConfig {
            mem: Some(reg.clone()),
            shard: iwarp::ShardConfig {
                pin_cores: pin,
                ..iwarp::ShardConfig::with_shards(mode.shards())
            },
            ..iwarp::DeviceConfig::default()
        },
        server_cfg,
    );
    // The client is not under test: poll-mode sockets, driven from this
    // thread, identical across configurations.
    let client_cfg = SocketConfig {
        recv_slots: 8,
        slot_size: 2048,
        notify: NotifyPath::Poll,
        qp: iwarp::QpConfig {
            poll_mode: true,
            ..iwarp::QpConfig::default()
        },
        ..SocketConfig::default()
    };
    let client_stack =
        SocketStack::with_config(&fab, NodeId(0), iwarp::DeviceConfig::default(), client_cfg);

    let server = SipServer::spawn(
        server_stack,
        SipServerConfig {
            transport: SipTransport::Ud,
            port: 5060,
            call_state_bytes: 1024,
        },
    )
    .map_err(|e| format!("server spawn: {e:?}"))?;

    let load = SipLoadConfig {
        calls,
        transport: SipTransport::Ud,
        server_addr: Addr::new(1, 5060),
        timeout: Duration::from_secs(30),
        call_state_bytes: 1024,
    };
    let mut idle_ticks = 0u64;
    let t0 = Instant::now();
    let report = run_sip_load_with_peak_sample(&client_stack, &load, || {
        // All calls are established and the wire is quiet: whatever CPU
        // the process burns now is pure idle cost (scan loop vs parked
        // waiters). This thread sleeps through the window.
        let before = cpu_ticks();
        std::thread::sleep(idle_window);
        idle_ticks = cpu_ticks().saturating_sub(before);
        (reg.total_current(), Vec::new())
    })
    .map_err(|e| format!("load: {e:?}"))?;
    let elapsed = t0.elapsed().saturating_sub(idle_window);
    server.stop().map_err(|e| format!("server stop: {e:?}"))?;

    let msgs = MSGS_PER_CALL * report.calls_established as f64;
    let msgs_per_sec = msgs / elapsed.as_secs_f64().max(1e-9);
    // Shard workers plus the client driver thread, capped at what the
    // host actually has.
    let cores_used = iwarp_common::affinity::host_cpus().min(mode.shards().max(1) + 1);
    Ok(RunResult {
        mode: mode.label(),
        calls,
        shards: mode.shards(),
        notify: match mode.notify() {
            NotifyPath::Poll => "poll",
            NotifyPath::Event => "event",
        },
        established: report.calls_established,
        msgs_per_sec,
        msgs_per_sec_per_core: msgs_per_sec / cores_used as f64,
        cores_used,
        pinned: pin,
        p50_us: report.response_us.median(),
        p99_us: report.response_us.percentile(99.0),
        server_mem_bytes: report.server_mem_bytes,
        per_call_bytes: report.server_mem_bytes as f64 / calls.max(1) as f64,
        idle_cpu_ticks: idle_ticks,
        idle_window_ms: idle_window.as_millis() as u64,
        elapsed_s: t0.elapsed().as_secs_f64(),
    })
}

// ---------------------------------------------------------------------------
// PR 10: open-loop memory-scaling ramp (Fig. 11 at 100k concurrent calls).
// ---------------------------------------------------------------------------

/// Stacks per side for the ramp. Calls are sharded round-robin across
/// `RAMP_STACKS` server nodes (each running its own evented SIP server)
/// and as many client nodes, so no single node exhausts the u16 port
/// space at 100k concurrent calls (~25k ports per node at 4 stacks).
const RAMP_STACKS: usize = 4;

/// OPTIONS probes per checkpoint (round-robin across the server mains) —
/// the sampled-active-subset latency measurement.
const RAMP_PROBES: usize = 64;

/// Link-ring slots for the ramp fabric. Every bound socket owns a
/// delivery ring; at ~200k sockets the default 256-slot rings would be
/// pure resident overhead for sockets that see five messages total, so
/// the ramp shrinks them and lets the (mutex-guarded, lossless) spill
/// path absorb any burst beyond 16.
const RAMP_RING_SLOTS: usize = 16;

struct RampCheckpoint {
    calls: usize,
    server_tracked_bytes: u64,
    client_tracked_bytes: u64,
    per_call_bytes: f64,
    /// `None` = procfs unavailable; recorded as an honest skip, never 0.
    rss_bytes: Option<u64>,
    rss_delta_bytes: Option<u64>,
    tracked_fraction_of_rss_delta: Option<f64>,
    pool_retained_bytes: u64,
    pool_in_flight_bytes: u64,
    slab_live: u64,
    slab_slots: u64,
    setup_p50_us: f64,
    setup_p99_us: f64,
    probe_p50_us: f64,
    probe_p99_us: f64,
    elapsed_s: f64,
}

/// One held call: the client leg socket (kept open — dropping it is the
/// teardown) and the server's per-call dialog address (adopted from the
/// 200 OK source).
struct RampLeg {
    _sock: DgramSocket,
    _peer: Addr,
}

fn ramp_recv(sock: &DgramSocket, timeout: Duration) -> Result<(SipMessage, Addr), String> {
    let mut buf = [0u8; 2048];
    let (n, src) = sock
        .recv_from(&mut buf, timeout)
        .map_err(|e| format!("ramp recv: {e:?}"))?;
    let msg = SipMessage::parse(&buf[..n]).map_err(|e| format!("ramp parse: {e}"))?;
    Ok((msg, src))
}

/// Establishes one call on `client_stack` against `server_main`,
/// returning the held leg and the INVITE→200 time.
fn ramp_establish(
    client_stack: &SocketStack,
    server_main: Addr,
    seq: usize,
) -> Result<(RampLeg, Duration), String> {
    let call_id = format!("ramp-{seq}@loadgen");
    let from = format!("sipp-{seq}@client.example");
    let invite = make_invite(&call_id, &from, "uas@server.example", 1).encode();
    let sock = client_stack
        .dgram_with(DgramProfile::compact())
        .map_err(|e| format!("ramp socket: {e:?}"))?;
    let t0 = Instant::now();
    sock.send_to(&invite, server_main)
        .map_err(|e| format!("ramp INVITE: {e:?}"))?;
    let (reply, peer) = ramp_recv(&sock, Duration::from_secs(30))?;
    let rt = t0.elapsed();
    if reply.status() != Some(200) {
        return Err(format!("call {seq}: INVITE answered {:?}", reply.status()));
    }
    sock.send_to(&make_ack(&call_id, &from, "uas@server.example", 1).encode(), peer)
        .map_err(|e| format!("ramp ACK: {e:?}"))?;
    Ok((RampLeg { _sock: sock, _peer: peer }, rt))
}

/// Round-robin OPTIONS probes against the server mains from a dedicated
/// probe socket: p50/p99 request→200 time while `calls` dialogs are held
/// established — the latency-under-memory-load sample.
fn ramp_probe(
    probe: &DgramSocket,
    mains: &[Addr],
    round: usize,
) -> Result<Summary, String> {
    let mut rtts = Summary::new();
    for i in 0..RAMP_PROBES {
        let options = SipMessage::request(SipMethod::Options, "sip:uas@server.example")
            .with_header("Via", "SIP/2.0/UDP probe.invalid;branch=z9hG4bKprobe")
            .with_header("From", "<sip:probe@client.example>;tag=probe")
            .with_header("To", "<sip:uas@server.example>")
            .with_header("Call-ID", &format!("probe-{round}-{i}@loadgen"))
            .with_header("CSeq", "1 OPTIONS")
            .encode();
        let t0 = Instant::now();
        probe
            .send_to(&options, mains[i % mains.len()])
            .map_err(|e| format!("probe send: {e:?}"))?;
        let (reply, _) = ramp_recv(probe, Duration::from_secs(10))?;
        if reply.status() != Some(200) {
            return Err(format!("probe answered {:?}", reply.status()));
        }
        rtts.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    Ok(rtts)
}

struct RampOutput {
    checkpoints: Vec<RampCheckpoint>,
    completed_calls: usize,
}

fn run_ramp(levels: &[usize]) -> Result<RampOutput, String> {
    let fab = Fabric::new(WireConfig {
        ring_capacity: RAMP_RING_SLOTS,
        ..WireConfig::default()
    });
    let server_reg = MemRegistry::new();
    let client_reg = MemRegistry::new();

    // Server side: RAMP_STACKS evented stacks, one SIP server each, all
    // reporting into one registry (Fig. 11 counts whole-server state).
    let mut servers = Vec::with_capacity(RAMP_STACKS);
    let mut mains = Vec::with_capacity(RAMP_STACKS);
    for s in 0..RAMP_STACKS {
        let node = NodeId(1 + s as u16);
        let stack = SocketStack::with_config(
            &fab,
            node,
            iwarp::DeviceConfig {
                mem: Some(server_reg.clone()),
                shard: iwarp::ShardConfig::with_shards(1),
                ..iwarp::DeviceConfig::default()
            },
            SocketConfig {
                recv_slots: 8,
                slot_size: 2048,
                notify: NotifyPath::Event,
                ..SocketConfig::default()
            },
        );
        let server = SipServer::spawn(
            stack,
            SipServerConfig {
                transport: SipTransport::Ud,
                port: 5060,
                call_state_bytes: 1024,
            },
        )
        .map_err(|e| format!("ramp server {s}: {e:?}"))?;
        servers.push(server);
        mains.push(Addr::new(node.0, 5060));
    }

    // Client side: poll-mode stacks driven from this thread.
    let client_stacks: Vec<SocketStack> = (0..RAMP_STACKS)
        .map(|s| {
            SocketStack::with_config(
                &fab,
                NodeId(101 + s as u16),
                iwarp::DeviceConfig {
                    mem: Some(client_reg.clone()),
                    ..iwarp::DeviceConfig::default()
                },
                SocketConfig {
                    recv_slots: 4,
                    slot_size: 2048,
                    notify: NotifyPath::Poll,
                    qp: iwarp::QpConfig {
                        poll_mode: true,
                        ..iwarp::QpConfig::default()
                    },
                    ..SocketConfig::default()
                },
            )
        })
        .collect();
    let probe = client_stacks[0]
        .dgram_with(DgramProfile::compact())
        .map_err(|e| format!("probe socket: {e:?}"))?;

    let rss_baseline = procfs_rss_bytes();
    if rss_baseline.is_none() {
        println!("ramp: procfs RSS unavailable — recording honest skip (rss_bytes = null)");
    }

    let t_start = Instant::now();
    let mut legs: Vec<RampLeg> = Vec::with_capacity(*levels.last().unwrap_or(&0));
    let mut checkpoints = Vec::with_capacity(levels.len());
    for (li, &level) in levels.iter().enumerate() {
        let mut setup = Summary::new();
        while legs.len() < level {
            let seq = legs.len();
            let s = seq % RAMP_STACKS;
            let (leg, rt) = ramp_establish(&client_stacks[s], mains[s], seq)?;
            setup.push(rt.as_secs_f64() * 1e6);
            legs.push(leg);
        }
        // All `level` calls held established: sample latency on the live
        // system, then read every memory axis at peak concurrency.
        let probes = ramp_probe(&probe, &mains, li)?;
        let server_tracked = server_reg.total_current();
        let client_tracked = client_reg.total_current();
        let rss = procfs_rss_bytes();
        let rss_delta = match (rss, rss_baseline) {
            (Some(now), Some(base)) => Some(now.saturating_sub(base)),
            _ => None,
        };
        let snap = fab.telemetry().snapshot();
        let cp = RampCheckpoint {
            calls: level,
            server_tracked_bytes: server_tracked,
            client_tracked_bytes: client_tracked,
            per_call_bytes: server_tracked as f64 / level.max(1) as f64,
            rss_bytes: rss,
            rss_delta_bytes: rss_delta,
            tracked_fraction_of_rss_delta: rss_delta
                .filter(|&d| d > 0)
                .map(|d| (server_tracked + client_tracked) as f64 / d as f64),
            pool_retained_bytes: snap.get("pool.retained_bytes").unwrap_or(0),
            pool_in_flight_bytes: snap.get("pool.in_flight_bytes").unwrap_or(0),
            slab_live: snap.get("mem.slab.live").unwrap_or(0),
            slab_slots: snap.get("mem.slab.slots").unwrap_or(0),
            setup_p50_us: setup.median(),
            setup_p99_us: setup.percentile(99.0),
            probe_p50_us: probes.median(),
            probe_p99_us: probes.percentile(99.0),
            elapsed_s: t_start.elapsed().as_secs_f64(),
        };
        println!(
            "ramp {:>7} calls: {:>7.0} B/call, slab {}/{} live/slots, \
             setup p50 {:.0} us, probe p50/p99 {:.0}/{:.0} us, rss {}",
            cp.calls,
            cp.per_call_bytes,
            cp.slab_live,
            cp.slab_slots,
            cp.setup_p50_us,
            cp.probe_p50_us,
            cp.probe_p99_us,
            cp.rss_bytes
                .map_or("n/a".into(), |b| format!("{} MiB", b >> 20)),
        );
        checkpoints.push(cp);
    }

    let completed = legs.len();
    let answered: u64 = servers.iter().map(|s| s.stats().invites.load(std::sync::atomic::Ordering::Relaxed)).sum();
    if answered != completed as u64 {
        return Err(format!(
            "ramp bookkeeping: {answered} INVITEs answered vs {completed} legs"
        ));
    }
    // Teardown: drop the held legs wholesale (the ramp measures the
    // established plateau; BYE storms are the closed-loop runs' job).
    drop(legs);
    drop(probe);
    for server in servers {
        server.stop().map_err(|e| format!("ramp server stop: {e:?}"))?;
    }
    Ok(RampOutput {
        checkpoints,
        completed_calls: completed,
    })
}

/// The PR 4 reference throughput: event-2shard msgs/s at 1024 calls out
/// of `BENCH_PR4.json` (each run is one line in that file). `None` when
/// the file is missing or the run isn't recorded — the comparison is
/// then skipped, not faked.
fn pr4_event_1k_msgs_per_sec() -> Option<f64> {
    let s = fs::read_to_string("BENCH_PR4.json").ok()?;
    for line in s.lines() {
        if line.contains("\"mode\": \"event-2shard\"") && line.contains("\"calls\": 1024") {
            let tail = &line[line.find("\"msgs_per_sec\": ")? + 16..];
            return tail[..tail.find(',')?].trim().parse().ok();
        }
    }
    None
}

fn json_checkpoints(cps: &[RampCheckpoint]) -> String {
    let mut s = String::new();
    let opt = |v: Option<u64>| v.map_or("null".into(), |b| b.to_string());
    for (i, c) in cps.iter().enumerate() {
        let sep = if i + 1 == cps.len() { "" } else { "," };
        let _ = write!(
            s,
            "\n  {{\"calls\": {}, \"server_tracked_bytes\": {}, \"client_tracked_bytes\": {}, \
             \"per_call_bytes\": {:.1}, \"rss_bytes\": {}, \"rss_delta_bytes\": {}, \
             \"tracked_fraction_of_rss_delta\": {}, \"pool_retained_bytes\": {}, \
             \"pool_in_flight_bytes\": {}, \"slab_live\": {}, \"slab_slots\": {}, \
             \"setup_p50_us\": {:.1}, \"setup_p99_us\": {:.1}, \"probe_p50_us\": {:.1}, \
             \"probe_p99_us\": {:.1}, \"elapsed_s\": {:.2}}}{}",
            c.calls,
            c.server_tracked_bytes,
            c.client_tracked_bytes,
            c.per_call_bytes,
            opt(c.rss_bytes),
            opt(c.rss_delta_bytes),
            c.tracked_fraction_of_rss_delta
                .map_or("null".into(), |f| format!("{f:.3}")),
            c.pool_retained_bytes,
            c.pool_in_flight_bytes,
            c.slab_live,
            c.slab_slots,
            c.setup_p50_us,
            c.setup_p99_us,
            c.probe_p50_us,
            c.probe_p99_us,
            c.elapsed_s,
            sep
        );
    }
    s
}

/// Per-call tracked bytes the smoke/ramp gates enforce (the ISSUE's
/// ≤ 6 KB budget; the 18 KB pre-compaction baseline is the fail side).
const PER_CALL_BUDGET_BYTES: f64 = 6144.0;

fn ramp_main(levels: &[usize], out: &str) -> ExitCode {
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let ramp = match run_ramp(levels) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ramp failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Throughput spot-check: the compaction must not cost the event
    // datapath its PR 4 closed-loop msgs/s at 1k calls. Best-of-3 — the
    // single-number comparison against a recorded baseline should not
    // hinge on one scheduler hiccup.
    let mut closed: Option<RunResult> = None;
    for _ in 0..3 {
        match run_one(
            Mode::Event { shards: 2 },
            1024,
            Duration::from_millis(250),
            false,
        ) {
            Ok(r) => {
                if closed.as_ref().is_none_or(|b| r.msgs_per_sec > b.msgs_per_sec) {
                    closed = Some(r);
                }
            }
            Err(e) => {
                eprintln!("ramp closed-loop spot-check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let closed = closed.expect("three runs attempted");
    let pr4 = pr4_event_1k_msgs_per_sec();
    let (tp_ratio, tp_status) = match pr4 {
        Some(base) if base > 0.0 => {
            let ratio = closed.msgs_per_sec / base;
            (ratio, if ratio >= 0.9 { "pass" } else { "fail" })
        }
        _ => (0.0, "skipped"),
    };

    let gate_cp = ramp.checkpoints.iter().find(|c| c.calls >= 10_000);
    let (per_call_at_gate, mem_status) = match gate_cp {
        Some(c) => (
            c.per_call_bytes,
            if c.per_call_bytes <= PER_CALL_BUDGET_BYTES {
                "pass"
            } else {
                "fail"
            },
        ),
        // Smoke-scale ramps gate on their largest level instead.
        None => match ramp.checkpoints.last() {
            Some(c) => (
                c.per_call_bytes,
                if c.per_call_bytes <= PER_CALL_BUDGET_BYTES {
                    "pass"
                } else {
                    "fail"
                },
            ),
            None => (0.0, "fail"),
        },
    };

    let json = format!(
        "{{\n \"pr\": 10,\n \"title\": \"Slab/arena state compaction: memory-per-call at \
         100k concurrent calls\",\n \"harness\": \"scale --ramp\",\n \"host_cpus\": {},\n \
         \"ramp_stacks\": {},\n \"ring_slots\": {},\n \"checkpoints\": [{}\n ],\n \
         \"closed_loop_1k\": {{\"mode\": \"{}\", \"msgs_per_sec\": {:.1}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"per_call_bytes\": {:.1}}},\n \"acceptance\": {{\n  \
         \"per_call_budget_bytes\": {},\n  \"per_call_bytes_at_gate\": {:.1},\n  \
         \"per_call_gate\": \"{}\",\n  \"completed_ramp_calls\": {},\n  \
         \"event_msgs_per_sec_1k\": {:.1},\n  \"pr4_event_msgs_per_sec_1k\": {},\n  \
         \"throughput_ratio_vs_pr4\": {:.2},\n  \"throughput_gate\": \"{}\"\n }},\n \
         \"notes\": \"Open-loop ramp: SipStone dialogs are established and *held* across {} \
         server/client stack pairs (round-robin, {} link-ring slots, compact per-call receive \
         profiles), with every memory axis read at each plateau: instrumented tracked bytes \
         (per-category memacct), procfs RSS (null = honest skip where procfs is unavailable), \
         pool retained vs in-flight bytes, and slab live/slots occupancy. Latency at each \
         plateau is sampled with {} OPTIONS probes against the main sockets while all calls \
         stay live. The closed-loop 1k run reuses the PR 4 harness to show the compaction \
         kept its throughput.\"\n}}\n",
        host_cpus,
        RAMP_STACKS,
        RAMP_RING_SLOTS,
        json_checkpoints(&ramp.checkpoints),
        closed.mode,
        closed.msgs_per_sec,
        closed.p50_us,
        closed.p99_us,
        closed.per_call_bytes,
        PER_CALL_BUDGET_BYTES as u64,
        per_call_at_gate,
        mem_status,
        ramp.completed_calls,
        closed.msgs_per_sec,
        pr4.map_or("null".into(), |v| format!("{v:.1}")),
        tp_ratio,
        tp_status,
        RAMP_STACKS,
        RAMP_RING_SLOTS,
        RAMP_PROBES,
    );
    if let Err(e) = fs::write(out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "\nramp: {} calls completed; per-call {per_call_at_gate:.0} B (budget {} B) -> {}; \
         closed-loop 1k event {:.0} msgs/s vs PR4 {} -> {}",
        ramp.completed_calls,
        PER_CALL_BUDGET_BYTES as u64,
        mem_status.to_uppercase(),
        closed.msgs_per_sec,
        pr4.map_or("n/a".into(), |v| format!("{v:.0}")),
        tp_status.to_uppercase(),
    );
    println!("wrote {out}");
    if mem_status == "fail" || tp_status == "fail" {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|_| format!("bad list item {p:?}")))
        .collect()
}

struct Args {
    calls: Vec<usize>,
    shards: Vec<usize>,
    idle_ms: u64,
    out: String,
    out_set: bool,
    smoke: bool,
    pin: bool,
    ramp: bool,
    ramp_calls: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        calls: vec![64, 256, 1024],
        shards: vec![1, 2, 4],
        idle_ms: 1000,
        out: "BENCH_PR4.json".into(),
        out_set: false,
        smoke: false,
        pin: false,
        ramp: false,
        ramp_calls: vec![10_000, 50_000, 100_000],
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let grab = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--calls" => {
                args.calls = parse_list(&grab(&argv, i, "--calls")?)?;
                i += 1;
            }
            "--shards" => {
                args.shards = parse_list(&grab(&argv, i, "--shards")?)?;
                i += 1;
            }
            "--idle-ms" => {
                args.idle_ms = grab(&argv, i, "--idle-ms")?
                    .parse()
                    .map_err(|_| "bad --idle-ms".to_string())?;
                i += 1;
            }
            "--out" => {
                args.out = grab(&argv, i, "--out")?;
                args.out_set = true;
                i += 1;
            }
            "--smoke" => {
                // CI-bounded: event-mode runs at 256 and 1024 calls over
                // 2 shards, short idle window. The 1024-call run carries
                // the PR 10 per-call-bytes gate.
                args.smoke = true;
                args.calls = vec![256, 1024];
                args.shards = vec![2];
                args.idle_ms = 250;
            }
            "--full" => args.calls = vec![64, 256, 1024, 4096],
            "--pin" => args.pin = true,
            "--ramp" => args.ramp = true,
            "--ramp-calls" => {
                args.ramp_calls = parse_list(&grab(&argv, i, "--ramp-calls")?)?;
                i += 1;
            }
            "--burst-path" => {
                let spec = grab(&argv, i, "--burst-path")?;
                let path = iwarp_common::burstpath::BurstPath::parse(&spec)
                    .ok_or(format!("--burst-path takes 'per-packet' or 'burst', got {spec:?}"))?;
                iwarp_common::burstpath::set_default(path);
                i += 1;
            }
            other => {
                return Err(format!(
                    "unknown arg {other:?}\nusage: scale [--calls LIST] [--shards LIST] \
                     [--idle-ms N] [--out PATH] [--smoke] [--full] [--pin] \
                     [--ramp] [--ramp-calls LIST] [--burst-path {{per-packet,burst}}]"
                ))
            }
        }
        i += 1;
    }
    Ok(args)
}

fn json_runs(results: &[RunResult]) -> String {
    let mut s = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = write!(
            s,
            "\n  {{\"mode\": \"{}\", \"calls\": {}, \"shards\": {}, \"notify\": \"{}\", \
             \"pinned\": {}, \"cores_used\": {}, \"established\": {}, \
             \"msgs_per_sec\": {:.1}, \"msgs_per_sec_per_core\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"server_mem_bytes\": {}, \"per_call_bytes\": {:.1}, \
             \"idle_cpu_ticks\": {}, \"idle_window_ms\": {}, \"elapsed_s\": {:.2}}}{}",
            r.mode,
            r.calls,
            r.shards,
            r.notify,
            r.pinned,
            r.cores_used,
            r.established,
            r.msgs_per_sec,
            r.msgs_per_sec_per_core,
            r.p50_us,
            r.p99_us,
            r.server_mem_bytes,
            r.per_call_bytes,
            r.idle_cpu_ticks,
            r.idle_window_ms,
            r.elapsed_s,
            sep
        );
    }
    s
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.ramp {
        let out = if args.out_set {
            args.out.clone()
        } else {
            "BENCH_PR10.json".into()
        };
        return ramp_main(&args.ramp_calls, &out);
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let idle_window = Duration::from_millis(args.idle_ms);

    let mut results: Vec<RunResult> = Vec::new();
    println!(
        "{:<16} {:>6} {:>12} {:>9} {:>9} {:>11} {:>10}",
        "mode", "calls", "msgs/s", "p50 us", "p99 us", "mem/call B", "idle ticks"
    );
    for &calls in &args.calls {
        let mut modes: Vec<Mode> = vec![Mode::Legacy];
        if !args.smoke {
            modes.push(Mode::Poll { shards: 2 });
        }
        modes.extend(args.shards.iter().map(|&s| Mode::Event { shards: s.max(1) }));
        for mode in modes {
            match run_one(mode, calls, idle_window, args.pin) {
                Ok(r) => {
                    println!(
                        "{:<16} {:>6} {:>12.0} {:>9.1} {:>9.1} {:>11.0} {:>10}",
                        r.mode, r.calls, r.msgs_per_sec, r.p50_us, r.p99_us,
                        r.per_call_bytes, r.idle_cpu_ticks
                    );
                    results.push(r);
                }
                Err(e) => {
                    eprintln!("FAIL {} @{calls}: {e}", mode.label());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // PR 7 multi-core gate: on a host that can actually express
    // multi-core shard scaling, 4 pinned event shards must beat 1 pinned
    // shard by >= 1.5x msgs/s. On a single-CPU host the shards serialize
    // onto one core, so the gate records an honest skip (with host_cpus)
    // instead of asserting a ratio the hardware cannot produce.
    let mut gate_status = "not_enforced";
    let mut gate_ratio = 0.0f64;
    if args.smoke {
        if host_cpus >= 2 {
            let gate_calls = 256;
            let one = run_one(Mode::Event { shards: 1 }, gate_calls, idle_window, true);
            let four = run_one(Mode::Event { shards: 4 }, gate_calls, idle_window, true);
            match (one, four) {
                (Ok(a), Ok(b)) if a.msgs_per_sec > 0.0 => {
                    gate_ratio = b.msgs_per_sec / a.msgs_per_sec;
                    gate_status = if gate_ratio >= 1.5 { "pass" } else { "fail" };
                    println!(
                        "multi-core gate: 1->4 shard (pinned) msgs/s ratio {gate_ratio:.2} \
                         at {gate_calls} calls (host_cpus={host_cpus}) -> {}",
                        gate_status.to_uppercase()
                    );
                    results.push(a);
                    results.push(b);
                }
                (a, b) => {
                    gate_status = "fail";
                    for r in [a, b].into_iter().flatten() {
                        results.push(r);
                    }
                    eprintln!("multi-core gate: run failed");
                }
            }
        } else {
            gate_status = "skipped";
            println!(
                "multi-core gate: SKIPPED — host_cpus={host_cpus} < 2; a single core \
                 cannot express multi-core shard scaling (recorded in acceptance JSON)"
            );
        }
    }

    // Acceptance summary at the largest call count measured.
    let top = *args.calls.iter().max().unwrap_or(&0);
    let at = |m: &str| {
        results
            .iter()
            .find(|r| r.calls == top && r.mode == m)
    };
    let shard_ratio = match (at("event-1shard"), at("event-4shard")) {
        (Some(a), Some(b)) if a.msgs_per_sec > 0.0 => b.msgs_per_sec / a.msgs_per_sec,
        _ => 0.0,
    };
    let poll_idle = results
        .iter()
        .filter(|r| r.notify == "poll")
        .map(|r| r.idle_cpu_ticks)
        .max()
        .unwrap_or(0);
    let event_idle = results
        .iter()
        .filter(|r| r.notify == "event")
        .map(|r| r.idle_cpu_ticks)
        .max()
        .unwrap_or(0);
    let idle_ratio = poll_idle as f64 / (event_idle.max(1)) as f64;

    let json = format!(
        "{{\n \"pr\": 4,\n \"title\": \"Many-QP scale-out: sharded datapath and event-driven \
         completions\",\n \"harness\": \"scale{}\",\n \"host_cpus\": {},\n \"runs\": [{}\n ],\n \
         \"acceptance\": {{\n  \"shard_msgs_per_sec_ratio_1_to_4_at_{}_calls\": {:.2},\n  \
         \"idle_cpu_ticks_poll_max\": {},\n  \"idle_cpu_ticks_event_max\": {},\n  \
         \"idle_cpu_poll_over_event\": {:.1},\n  \
         \"multicore_gate\": {{\"status\": \"{}\", \"ratio\": {:.2}, \"host_cpus\": {}}}\n }},\n \
         \"notes\": \"Closed-loop SipStone \
         transactions (5 messages/call) over the shared socket shim; one server socket per \
         call. Idle CPU = process utime+stime ticks while all calls are held established and \
         the wire is quiet. Shard throughput scaling requires shard workers on separate \
         cores: on a host with host_cpus=1 every shard serializes onto the same core, so \
         msgs/s stays flat with shard count there and the architectural win shows up in the \
         idle-CPU column (parked wait_any vs scan loop) and on multi-core hosts.\"\n}}\n",
        if args.smoke { " --smoke" } else { "" },
        host_cpus,
        json_runs(&results),
        top,
        shard_ratio,
        poll_idle,
        event_idle,
        idle_ratio,
        gate_status,
        gate_ratio,
        host_cpus,
    );
    if let Err(e) = fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "\nidle CPU: poll={poll_idle} ticks, event={event_idle} ticks ({idle_ratio:.1}x); \
         1->4 shard msgs/s ratio @{top} calls: {shard_ratio:.2} (host_cpus={host_cpus})"
    );
    println!("wrote {}", args.out);

    // Smoke gate for CI: every call established, and the event-mode server
    // must be (near-)silent while idle.
    if args.smoke {
        let ok = results.iter().all(|r| r.established == r.calls);
        if !ok {
            eprintln!("smoke: not every call established");
            return ExitCode::FAILURE;
        }
        if gate_status == "fail" {
            eprintln!("smoke: multi-core gate failed (ratio {gate_ratio:.2} < 1.5)");
            return ExitCode::FAILURE;
        }
        // PR 10 memory gate: tracked per-call bytes at 1024 concurrent
        // event-mode calls must stay within the compaction budget. This
        // reads the instrumented memacct registry (always available);
        // procfs RSS reconciliation is the ramp's job.
        match results
            .iter()
            .find(|r| r.calls == 1024 && r.notify == "event")
        {
            Some(r) if r.per_call_bytes <= PER_CALL_BUDGET_BYTES => {
                println!(
                    "smoke: per-call gate PASS ({:.0} B <= {} B at {} calls)",
                    r.per_call_bytes, PER_CALL_BUDGET_BYTES as u64, r.calls
                );
            }
            Some(r) => {
                eprintln!(
                    "smoke: per-call gate FAIL ({:.0} B > {} B at {} calls)",
                    r.per_call_bytes, PER_CALL_BUDGET_BYTES as u64, r.calls
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("smoke: per-call gate missing its 1024-call event run");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
