//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the proptest API its tests use: the `proptest!`,
//! `prop_compose!`, `prop_oneof!` and `prop_assert*!` macros, `Strategy`
//! with integer-range / `any` / tuple / `Just` / vec / char-class-regex
//! strategies, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate for an offline test shim:
//! - **No shrinking.** A failing case reports its inputs' seed, not a
//!   minimized counterexample.
//! - **Deterministic by construction.** Each test's RNG is seeded from the
//!   test's module path and name, so failures reproduce without a
//!   persistence file (`*.proptest-regressions` files are ignored).
//! - The `&str` strategy implements only the `[class]{m,n}` regex subset
//!   the workspace actually uses, not full regex syntax.

pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-lower, exclusive-upper bound on generated collection
    /// sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a size drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs each `fn` body repeatedly with generated inputs.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(...)]` header and `name(pat in strategy, ...)`
/// argument lists. Bodies may use `?` and the `prop_assert*!` macros; a
/// trailing `Ok(())` is appended automatically.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Builds a named strategy function from component strategies, mirroring
/// upstream `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()($($p:pat in $s:expr),+ $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| -> $out {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), rng);)+
                    $body
                },
            )
        }
    };
}

/// Picks uniformly among the given strategies (all with the same `Value`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {left:?} == {right:?}"),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {left:?} == {right:?}: {}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current test case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {left:?} != {right:?}"),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {left:?} != {right:?}: {}", format!($($fmt)+)),
            ));
        }
    }};
}
