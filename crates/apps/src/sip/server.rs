//! SIP UAS: the server side of the SipStone scenario.
//!
//! Handles the INVITE → 200 OK → ACK → … → BYE → 200 OK transaction flow
//! over either transport:
//!
//! * **UD**: a main datagram socket receives INVITEs; per the paper's
//!   setup ("one socket per client"), each call gets a dedicated datagram
//!   socket and the 200 OK is sent from it, so in-dialog requests arrive
//!   there (the SIP-over-UDP analog of a media-port allocation).
//! * **RC**: a stream listener accepts one connection per client; SIP
//!   messages are framed out of the byte stream by Content-Length.
//!
//! Every call tracks `call_state_bytes` of application bookkeeping in the
//! `sip_call` memory category — the "additional book keeping to keep track
//! of the states of the calls" the paper identifies as the gap between its
//! theoretical 28.1 % and measured 24.1 % memory savings.
//!
//! The server is a single-threaded event loop, so thousands of concurrent
//! calls cost memory (the thing Fig. 11 measures), not threads. On UD it
//! has two drive modes, following the stack's
//! [`NotifyPath`](iwarp_common::notifypath::NotifyPath):
//!
//! * **Poll** — the original loop: short-timeout receive on the main
//!   socket, periodic O(active calls) scan of every call socket.
//! * **Event** — the scale-out loop: all sockets subscribe to the stack's
//!   completion channel and the server parks in
//!   [`SocketStack::wait_ready`], touching only sockets with work. Idle
//!   cost drops from a continuous scan to zero, and per-message cost from
//!   O(calls) to O(ready).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use iwarp::IwarpResult;
use iwarp_common::memacct::MemScope;
use iwarp_common::slab::{Handle, Slab, SlabStats};
use iwarp_socket::{DgramProfile, DgramSocket, SocketStack, StreamSocket};
use simnet::Addr;

use super::codec::{SipMessage, SipMethod, SipScratch, SipView};

/// Which transport the server speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SipTransport {
    /// Datagram-iWARP (UD QPs) — connectionless.
    Ud,
    /// Connected iWARP (RC QPs over the TCP-like stream).
    Rc,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct SipServerConfig {
    /// Transport to serve.
    pub transport: SipTransport,
    /// Port of the main socket / listener.
    pub port: u16,
    /// Application bookkeeping bytes per active call (tracked in the
    /// `sip_call` category; identical for both transports).
    pub call_state_bytes: u64,
}

impl Default for SipServerConfig {
    fn default() -> Self {
        Self {
            transport: SipTransport::Ud,
            port: 5060,
            call_state_bytes: 1024,
        }
    }
}

/// Live counters shared with the controlling thread.
#[derive(Debug, Default)]
pub struct SipServerStats {
    /// Currently established (or establishing) calls.
    pub active_calls: AtomicU64,
    /// INVITEs answered.
    pub invites: AtomicU64,
    /// ACKs seen (dialogs confirmed).
    pub acks: AtomicU64,
    /// BYEs answered.
    pub byes: AtomicU64,
    /// Messages that failed to parse.
    pub parse_errors: AtomicU64,
}

struct Shared {
    stats: SipServerStats,
    shutdown: AtomicBool,
}

/// Handle to a running SIP server; dropping it stops the event loop.
pub struct SipServer {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<IwarpResult<()>>>,
}

impl SipServer {
    /// Spawns the server event loop on `stack`.
    pub fn spawn(stack: SocketStack, cfg: SipServerConfig) -> IwarpResult<Self> {
        let shared = Arc::new(Shared {
            stats: SipServerStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        // Bind inside the caller's context so failures surface here.
        let thread = match cfg.transport {
            SipTransport::Ud => {
                let main = stack.dgram_bound(cfg.port)?;
                let evented = stack.config().notify
                    == iwarp_common::notifypath::NotifyPath::Event
                    && !stack.config().qp.poll_mode;
                std::thread::Builder::new()
                    .name("sip-uas-ud".into())
                    .spawn(move || {
                        if evented {
                            ud_event_loop_evented(&stack, &main, &cfg, &shared2)
                        } else {
                            ud_event_loop(&stack, main, &cfg, &shared2)
                        }
                    })
                    .expect("spawn SIP server")
            }
            SipTransport::Rc => {
                let listener = stack.listen(cfg.port)?;
                std::thread::Builder::new()
                    .name("sip-uas-rc".into())
                    .spawn(move || rc_event_loop(&stack, &listener, &cfg, &shared2))
                    .expect("spawn SIP server")
            }
        };
        Ok(Self {
            shared,
            thread: Some(thread),
        })
    }

    /// Live counters.
    #[must_use]
    pub fn stats(&self) -> &SipServerStats {
        &self.shared.stats
    }

    /// Stops the event loop and returns its final result.
    pub fn stop(mut self) -> IwarpResult<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match self.thread.take() {
            Some(t) => t.join().expect("SIP server thread"),
            None => Ok(()),
        }
    }
}

impl Drop for SipServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Main-socket drain batch for the evented loop (`recv_many` vector size).
const MAIN_BATCH: usize = 32;

/// One UD call record — a compact slab entry: its dedicated socket, the
/// dialog's Call-ID (owned once at INVITE time, never re-cloned on the
/// in-dialog path), and tracked application state.
struct UdCall {
    call_id: String,
    sock: DgramSocket,
    _state: Option<MemScope>,
}

/// The server's call table: slab-backed records (backing bytes reported
/// under `sip_call_table`, activity under `mem.slab.*`) plus a
/// Call-ID → handle index used only on the main-socket path (INVITE
/// dedup). In-dialog traffic routes by fd → handle and never touches the
/// string index.
struct UdCalls {
    slab: Slab<UdCall>,
    index: HashMap<String, Handle>,
}

impl UdCalls {
    fn new(stack: &SocketStack) -> Self {
        let mut slab = Slab::new();
        if let Some(reg) = stack.device().mem() {
            slab = slab.with_mem(reg.track("sip_call_table", 0));
        }
        let stats = SlabStats::new();
        stack.device().telemetry().attach_slab(stats.clone());
        Self {
            slab: slab.with_stats(stats),
            index: HashMap::new(),
        }
    }

    fn insert(&mut self, call: UdCall) -> Handle {
        let id = call.call_id.clone();
        let h = self.slab.insert(call);
        self.index.insert(id, h);
        h
    }

    fn remove(&mut self, h: Handle) {
        if let Some(call) = self.slab.remove(h) {
            self.index.remove(&call.call_id);
        }
    }
}

fn ud_event_loop(
    stack: &SocketStack,
    main: DgramSocket,
    cfg: &SipServerConfig,
    shared: &Shared,
) -> IwarpResult<()> {
    let mut calls = UdCalls::new(stack);
    let mut scratch = new_scratch(stack);
    let mut buf = vec![0u8; 8 * 1024];
    let mut finished: Vec<Handle> = Vec::new();
    let mut passes_since_scan = 0u32;
    while !shared.shutdown.load(Ordering::Relaxed) {
        // New transactions arrive on the main socket.
        let mut main_idle = false;
        match main.recv_from(&mut buf, Duration::from_millis(1)) {
            Ok((n, src)) => {
                if let Ok(msg) = SipView::parse(&buf[..n]) {
                    handle_ud_message(stack, cfg, shared, &mut calls, &main, &msg, src, &mut scratch)?;
                } else {
                    shared.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(iwarp::IwarpError::PollTimeout) => main_idle = true,
            Err(e) => return Err(e),
        }
        // In-dialog requests arrive on per-call sockets. Scanning all of
        // them is O(active calls); do it when the main socket goes idle
        // (in-dialog traffic is then the likely pending work) or
        // periodically during setup storms, so call establishment stays
        // O(n) overall rather than O(n²).
        passes_since_scan += 1;
        if !main_idle && passes_since_scan < 64 {
            continue;
        }
        passes_since_scan = 0;
        finished.clear();
        for (h, call) in calls.slab.iter_mut() {
            if drain_call_socket(call, shared, &mut scratch)? {
                finished.push(h);
            }
        }
        for h in finished.drain(..) {
            calls.remove(h);
            shared.stats.active_calls.fetch_sub(1, Ordering::Relaxed);
        }
    }
    Ok(())
}

/// The evented UD loop: parks in [`SocketStack::wait_ready`] and serves
/// exactly the sockets whose receive CQs signalled (main and per-call
/// sockets all subscribe to the stack channel with their fd as token).
/// Per the channel's edge-triggered contract, each ready socket is drained
/// completely before the next wait.
fn ud_event_loop_evented(
    stack: &SocketStack,
    main: &DgramSocket,
    cfg: &SipServerConfig,
    shared: &Shared,
) -> IwarpResult<()> {
    let mut calls = UdCalls::new(stack);
    let mut fd_to_call: HashMap<u32, Handle> = HashMap::new();
    let main_fd = main.fd();
    let mut scratch = new_scratch(stack);
    let mut batch = Vec::with_capacity(MAIN_BATCH);
    while !shared.shutdown.load(Ordering::Relaxed) {
        // Bounded wait so shutdown is noticed even on a dead-quiet fabric.
        for fd in stack.wait_ready(Duration::from_millis(20)) {
            if fd == main_fd {
                // Setup storms land many INVITEs per readiness edge:
                // drain the main socket in `recvmmsg`-style batches
                // instead of one try_recv_from round-trip per message.
                loop {
                    batch.clear();
                    match main.recv_many(&mut batch, MAIN_BATCH, Duration::ZERO) {
                        Ok(_) => {}
                        Err(iwarp::IwarpError::PollTimeout) => break,
                        Err(e) => return Err(e),
                    }
                    for (data, src) in &batch {
                        if let Ok(msg) = SipView::parse(data) {
                            if let Some((h, call_fd)) = handle_ud_message(
                                stack, cfg, shared, &mut calls, main, &msg, *src,
                                &mut scratch,
                            )? {
                                fd_to_call.insert(call_fd, h);
                            }
                        } else {
                            shared.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            } else if let Some(&h) = fd_to_call.get(&fd) {
                // Generation-checked lookup: a stale fd token that raced
                // a teardown (and possibly an fd reuse) simply misses.
                let Some(call) = calls.slab.get_mut(h) else {
                    fd_to_call.remove(&fd);
                    continue;
                };
                if drain_call_socket(call, shared, &mut scratch)? {
                    calls.remove(h);
                    fd_to_call.remove(&fd);
                    shared.stats.active_calls.fetch_sub(1, Ordering::Relaxed);
                }
            }
            // Unknown fd: completion raced a call teardown; ignore.
        }
    }
    Ok(())
}

/// A response scratch whose retained capacity is memacct-visible when the
/// stack's device carries a registry.
fn new_scratch(stack: &SocketStack) -> SipScratch {
    stack
        .device()
        .mem()
        .map_or_else(SipScratch::new, SipScratch::with_mem)
}

/// Serves everything pending on one call socket. Returns `true` when the
/// dialog ended (BYE answered) and the call should be dropped.
///
/// This is the steady-state hot path: zero-copy receive ([`Bytes`] out of
/// the socket's ready queue), borrowed parse ([`SipView`]), response
/// encoded into the warm scratch — no per-message heap traffic in the
/// SIP layer.
fn drain_call_socket(
    call: &mut UdCall,
    shared: &Shared,
    scratch: &mut SipScratch,
) -> IwarpResult<bool> {
    let mut done = false;
    while let Some((src, data)) = call.sock.try_recv_bytes()? {
        let Ok(msg) = SipView::parse(&data) else {
            shared.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        match msg.method() {
            Some(SipMethod::Ack) => {
                shared.stats.acks.fetch_add(1, Ordering::Relaxed);
            }
            Some(SipMethod::Bye) => {
                let wire = scratch.response_to(&msg, 200, "OK", &[]);
                call.sock.send_to(wire, src)?;
                shared.stats.byes.fetch_add(1, Ordering::Relaxed);
                done = true;
            }
            _ => {}
        }
    }
    Ok(done)
}

/// Handles one message on the main socket. Returns the `(handle, fd)` of
/// a newly established call so the evented loop can index it.
#[allow(clippy::too_many_arguments)]
fn handle_ud_message(
    stack: &SocketStack,
    cfg: &SipServerConfig,
    shared: &Shared,
    calls: &mut UdCalls,
    main: &DgramSocket,
    msg: &SipView<'_>,
    src: Addr,
    scratch: &mut SipScratch,
) -> IwarpResult<Option<(Handle, u32)>> {
    match msg.method() {
        Some(SipMethod::Invite) => {
            let Some(call_id) = msg.call_id() else {
                shared.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            };
            if calls.index.contains_key(call_id) {
                return Ok(None); // retransmitted INVITE; 200 OK was sent
            }
            // Paper setup: one server socket per client/call. The 200 OK
            // is sent *from* the call socket so in-dialog requests land
            // there. (In Event mode the new socket subscribes itself to
            // the stack channel at open.) Per-call sockets only ever see
            // small in-dialog requests, so they take the compact receive
            // profile — the dominant term of Fig. 11's per-call bytes.
            let call_sock = stack.dgram_with(DgramProfile::compact())?;
            let fd = call_sock.fd();
            let contact = format!("<sip:{}>", call_sock.local_addr());
            let wire = scratch.response_to(msg, 200, "OK", &[("Contact", &contact)]);
            call_sock.send_to(wire, src)?;
            let state = stack
                .device()
                .mem()
                .map(|r| r.track("sip_call", cfg.call_state_bytes));
            let h = calls.insert(UdCall {
                call_id: call_id.to_owned(),
                sock: call_sock,
                _state: state,
            });
            shared.stats.invites.fetch_add(1, Ordering::Relaxed);
            shared.stats.active_calls.fetch_add(1, Ordering::Relaxed);
            return Ok(Some((h, fd)));
        }
        Some(SipMethod::Options) => {
            let wire = scratch.response_to(msg, 200, "OK", &[]);
            main.send_to(wire, src)?;
        }
        _ => {}
    }
    Ok(None)
}

/// One RC call: the accepted connection, a reassembly buffer for the byte
/// stream, and tracked application state.
struct RcCall {
    sock: StreamSocket,
    rxbuf: Vec<u8>,
    done: bool,
    _state: Option<MemScope>,
}

fn rc_event_loop(
    stack: &SocketStack,
    listener: &iwarp_socket::StreamListener,
    cfg: &SipServerConfig,
    shared: &Shared,
) -> IwarpResult<()> {
    let mut calls: Vec<RcCall> = Vec::new();
    let mut scratch = new_scratch(stack);
    let mut buf = vec![0u8; 8 * 1024];
    while !shared.shutdown.load(Ordering::Relaxed) {
        // Accept new connections (short timeout keeps the loop live).
        if let Ok(sock) = listener.accept(Duration::from_millis(1)) {
            let state = stack
                .device()
                .mem()
                .map(|r| r.track("sip_call", cfg.call_state_bytes));
            calls.push(RcCall {
                sock,
                rxbuf: Vec::new(),
                done: false,
                _state: state,
            });
            shared.stats.active_calls.fetch_add(1, Ordering::Relaxed);
        }
        // Serve established connections.
        for call in &mut calls {
            if call.done {
                continue;
            }
            loop {
                match call.sock.try_recv(&mut buf) {
                    Ok(Some(n)) => call.rxbuf.extend_from_slice(&buf[..n]),
                    Ok(None) => break,
                    Err(_) => {
                        call.done = true; // peer went away
                        break;
                    }
                }
            }
            // Frame and handle complete messages — borrowed parse over
            // the reassembly buffer, responses out of the warm scratch.
            loop {
                let used = match SipView::parse_prefix(&call.rxbuf) {
                    Ok((msg, used)) => {
                        match msg.method() {
                            Some(SipMethod::Invite) => {
                                let wire = scratch.response_to(&msg, 200, "OK", &[]);
                                let _ = call.sock.send(wire);
                                shared.stats.invites.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(SipMethod::Ack) => {
                                shared.stats.acks.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(SipMethod::Bye) => {
                                let wire = scratch.response_to(&msg, 200, "OK", &[]);
                                let _ = call.sock.send(wire);
                                shared.stats.byes.fetch_add(1, Ordering::Relaxed);
                                call.done = true;
                            }
                            _ => {}
                        }
                        used
                    }
                    Err(e) if SipMessage::is_incomplete(&e) => break,
                    Err(_) => {
                        shared.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                        call.rxbuf.clear();
                        break;
                    }
                };
                call.rxbuf.drain(..used);
            }
        }
        let before = calls.len();
        calls.retain(|c| !c.done);
        let removed = before - calls.len();
        if removed > 0 {
            shared
                .stats
                .active_calls
                .fetch_sub(removed as u64, Ordering::Relaxed);
        }
    }
    Ok(())
}
