//! The socket stack: the shim's per-process state.
//!
//! "It tracks the socket to QP matching so that each socket is only
//! associated with a single QP ... only the QP to file descriptor mapping
//! and whether the file descriptor has been previously initialized as an
//! iWARP socket [is stored in the interface]" (paper §V.A.1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simnet::{Addr, Fabric, NodeId};

use iwarp::{CompletionChannel, Device, DeviceConfig, IwarpResult, QpConfig};
use iwarp_common::notifypath::{self, NotifyPath};

use crate::dgram::{DgramMode, DgramSocket};
use crate::stream::{StreamListener, StreamSocket};

/// Socket-shim configuration.
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Datagram data path: two-sided send/recv or one-sided Write-Record.
    pub mode: DgramMode,
    /// Pre-posted receive slots per socket.
    pub recv_slots: usize,
    /// Bytes per receive slot — also the largest datagram the socket can
    /// deliver (larger sends complete at the source but are dropped at the
    /// receiver with a `RecvTooSmall` diagnostic, UDP-style).
    pub slot_size: usize,
    /// Deliver the valid prefix of partially placed Write-Record messages
    /// instead of dropping them (for loss-tolerant media applications).
    pub deliver_partial: bool,
    /// How long a Write-Record sender waits for a ring advertisement
    /// before falling back to send/recv.
    pub adv_timeout: Duration,
    /// Completion-notification path: `Event` subscribes every datagram
    /// socket's receive CQ to the stack's [`CompletionChannel`] (token =
    /// fd) so one thread can park on [`SocketStack::wait_ready`] for all
    /// of them; `Poll` keeps the spin/scan baseline for A/B comparison.
    /// Ignored (no subscription) when `qp.poll_mode` is set — poll-mode
    /// QPs only progress when the caller drives them, so parking on a
    /// channel would deadlock.
    pub notify: NotifyPath,
    /// Underlying queue-pair configuration.
    pub qp: QpConfig,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            mode: DgramMode::SendRecv,
            recv_slots: 16,
            slot_size: 8 * 1024,
            deliver_partial: false,
            adv_timeout: Duration::from_secs(1),
            notify: notifypath::default_path(),
            qp: QpConfig::default(),
        }
    }
}

/// What an fd refers to (diagnostic view of the shim's table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdKind {
    /// Datagram socket (UD QP).
    Dgram,
    /// Stream socket (RC QP).
    Stream,
    /// Listening stream socket.
    Listener,
}

pub(crate) struct StackInner {
    pub device: Device,
    pub cfg: SocketConfig,
    /// Stack-wide completion channel datagram sockets subscribe to in
    /// `NotifyPath::Event` (token = fd).
    pub chan: CompletionChannel,
    next_fd: AtomicU32,
    fds: Mutex<HashMap<u32, FdKind>>,
}

impl StackInner {
    pub fn alloc_fd(&self, kind: FdKind) -> u32 {
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds.lock().insert(fd, kind);
        fd
    }

    pub fn release_fd(&self, fd: u32) {
        self.fds.lock().remove(&fd);
    }
}

/// The iWARP socket interface: creates datagram and stream sockets whose
/// data operations run over iWARP verbs.
#[derive(Clone)]
pub struct SocketStack {
    pub(crate) inner: Arc<StackInner>,
}

impl SocketStack {
    /// Creates a stack on `node` with default configuration.
    #[must_use]
    pub fn new(fabric: &Fabric, node: NodeId) -> Self {
        Self::with_config(fabric, node, DeviceConfig::default(), SocketConfig::default())
    }

    /// Creates a stack with explicit device and socket configuration.
    #[must_use]
    pub fn with_config(
        fabric: &Fabric,
        node: NodeId,
        device_cfg: DeviceConfig,
        cfg: SocketConfig,
    ) -> Self {
        let chan = CompletionChannel::new();
        chan.attach_telemetry(fabric.telemetry());
        Self {
            inner: Arc::new(StackInner {
                device: Device::with_config(fabric, node, device_cfg),
                cfg,
                chan,
                next_fd: AtomicU32::new(3),
                fds: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The underlying device (for direct verbs access alongside sockets).
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The stack's socket configuration.
    #[must_use]
    pub fn config(&self) -> &SocketConfig {
        &self.inner.cfg
    }

    /// Opens a datagram socket at an ephemeral port.
    pub fn dgram(&self) -> IwarpResult<DgramSocket> {
        DgramSocket::open(Arc::clone(&self.inner), None)
    }

    /// Opens a datagram socket bound at `port`.
    pub fn dgram_bound(&self, port: u16) -> IwarpResult<DgramSocket> {
        DgramSocket::open(Arc::clone(&self.inner), Some(port))
    }

    /// Connects a stream socket to a remote listener.
    pub fn connect(&self, remote: Addr) -> IwarpResult<StreamSocket> {
        StreamSocket::connect(Arc::clone(&self.inner), remote)
    }

    /// Opens a listening stream socket at `port`.
    pub fn listen(&self, port: u16) -> IwarpResult<StreamListener> {
        StreamListener::bind(Arc::clone(&self.inner), port)
    }

    /// Number of open iWARP sockets in the shim's fd table.
    #[must_use]
    pub fn open_sockets(&self) -> usize {
        self.inner.fds.lock().len()
    }

    /// The stack's completion channel — datagram sockets' receive CQs are
    /// subscribed here (token = fd) under [`NotifyPath::Event`].
    #[must_use]
    pub fn completion_channel(&self) -> &CompletionChannel {
        &self.inner.chan
    }

    /// Parks until at least one subscribed socket has receive-side work,
    /// returning the ready fds (empty on timeout) — the `epoll_wait` of
    /// the shim. Callers must then fully drain each ready socket (e.g.
    /// loop [`crate::DgramSocket::try_recv_from`] until `None`):
    /// readiness is edge-style and coalesced.
    #[must_use]
    pub fn wait_ready(&self, timeout: Duration) -> Vec<u32> {
        self.inner
            .chan
            .wait_any(timeout)
            .into_iter()
            .map(|t| t as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_table_tracks_sockets() {
        let fab = Fabric::loopback();
        let stack = SocketStack::new(&fab, NodeId(0));
        assert_eq!(stack.open_sockets(), 0);
        let s1 = stack.dgram().unwrap();
        let s2 = stack.dgram().unwrap();
        assert_eq!(stack.open_sockets(), 2);
        assert_ne!(s1.fd(), s2.fd());
        drop(s1);
        assert_eq!(stack.open_sockets(), 1);
        drop(s2);
        assert_eq!(stack.open_sockets(), 0);
    }

    #[test]
    fn bound_port_is_respected() {
        let fab = Fabric::loopback();
        let stack = SocketStack::new(&fab, NodeId(0));
        let s = stack.dgram_bound(5555).unwrap();
        assert_eq!(s.local_addr().port, 5555);
    }
}
