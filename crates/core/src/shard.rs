//! Sharded receive engines: the many-QP scale-out datapath.
//!
//! The per-QP RX thread of the baseline stack ([`QpConfig::poll_mode`]
//! false) is faithful to a 2-node microbenchmark and fatal at the
//! ROADMAP's "millions of users" scale: a thousand concurrent calls
//! would mean a thousand threads, each waking on a 5 ms tick to poll an
//! almost-always-empty queue. A [`ShardMap`] replaces them with a fixed
//! pool of engines: QPs are assigned to shards by hashing their QP
//! number, each shard runs one worker that parks on an inbox condvar,
//! and the fabric's delivery path marks a QP's conduit *ready* in its
//! shard's inbox (via [`simnet::RxNotify`]) instead of waking a
//! dedicated thread. Ready QPs are then drained in batches —
//! [`crate::qp::dgram::rx_drain`] — which is where delivery batching
//! happens: one wakeup serves every packet that queued since the last.
//!
//! Determinism: sharding never reorders *within* a QP (the conduit queue
//! is FIFO and exactly one shard drains it), but interleaves processing
//! *across* QPs nondeterministically. The chaos replay harness therefore
//! keeps its QPs in caller-driven poll mode — equivalent to a single
//! shard serviced in program order — and its byte-identical traces are
//! unaffected by this module (guarded by `tests/chaos.rs`).
//!
//! Lock order (must hold pairwise, never reversed):
//! fabric control → shard inbox → conduit reassembly → RX-core maps
//! → CQ queue → completion channel. The fabric invokes arrival
//! notifiers outside every fabric lock (see DESIGN.md §9), so the first
//! edge never actually nests; it is listed for the audit trail.
//!
//! [`QpConfig::poll_mode`]: crate::qp::QpConfig::poll_mode

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use iwarp_telemetry::{Counter, Telemetry};
use parking_lot::{Condvar, Mutex};

use crate::qp::dgram::{expire_tick, rx_drain, DgInner};

/// Shard-pool configuration (part of
/// [`DeviceConfig`](crate::device::DeviceConfig)).
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of shard RX engines. `0` disables sharding entirely — QPs
    /// keep their per-QP engine thread (or stay caller-driven in poll
    /// mode), byte-for-byte the pre-scale-out behaviour.
    pub shards: usize,
    /// Datagrams drained per QP per wakeup before the QP is re-queued
    /// behind its shard siblings (fairness bound).
    pub batch: usize,
    /// Housekeeping tick: how long an idle shard worker sleeps between
    /// wake-ups when no QP is ready.
    pub idle_tick: Duration,
    /// Minimum interval between TTL expiry sweeps over the shard's QPs.
    /// Sweeping touches every assigned engine (a Weak upgrade plus a
    /// throttle-lock probe each), so on an idle shard with thousands of
    /// QPs the sweep — not the parked wait — is the CPU floor; it is
    /// therefore rate-limited independently of `idle_tick`. Worst-case
    /// expiry latency grows by this amount on top of the QP TTLs
    /// (default 500 ms), which keeps it well inside the same order.
    pub sweep_every: Duration,
    /// Pin shard worker `i` to CPU core `i % host_cpus` via
    /// [`iwarp_common::affinity::pin_to_core`]. Advisory: on platforms
    /// without `sched_setaffinity` workers run unpinned and the
    /// `core.shard.pinned` counter stays below `shards`. Default off —
    /// pinning helps steady-state scaling benchmarks and hurts
    /// oversubscribed hosts.
    pub pin_cores: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            batch: 64,
            idle_tick: Duration::from_millis(20),
            sweep_every: Duration::from_millis(100),
            pin_cores: false,
        }
    }
}

impl ShardConfig {
    /// A pool of `n` shards with default batching.
    #[must_use]
    pub fn with_shards(n: usize) -> Self {
        Self {
            shards: n,
            ..Self::default()
        }
    }
}

/// Telemetry handles shared by every shard of a map (`core.shard.*`).
struct ShardTel {
    wakeups: Counter,
    batches: Counter,
    requeues: Counter,
    expiry_sweeps: Counter,
    registered: Counter,
    /// Workers whose `sched_setaffinity` pin actually took effect.
    pinned: Counter,
}

struct ShardState {
    /// Ready QPs in notification order; coalesced via `queued`.
    ready: VecDeque<u32>,
    queued: HashSet<u32>,
    /// Engines assigned to this shard. Weak: the QP owns its engine; a
    /// dead entry is reaped on next touch.
    engines: HashMap<u32, Weak<DgInner>>,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl Shard {
    fn mark_ready(&self, qpn: u32) {
        let mut st = self.state.lock();
        if st.queued.insert(qpn) {
            st.ready.push_back(qpn);
            drop(st);
            self.cv.notify_one();
        }
    }
}

/// A pool of shard RX engines plus the QP→shard assignment.
///
/// Created by [`Device::with_config`](crate::device::Device::with_config)
/// when [`ShardConfig::shards`] is non-zero; threaded-mode UD QPs built
/// on that device are then engine-less and drained by their shard.
pub struct ShardMap {
    shards: Vec<Arc<Shard>>,
    cfg: ShardConfig,
    tel: Arc<ShardTel>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ShardMap {
    /// Spawns `cfg.shards` worker threads (`iwarp-shard-<i>`).
    #[must_use]
    pub fn new(cfg: ShardConfig, tel: &Telemetry) -> Arc<Self> {
        let tel = Arc::new(ShardTel {
            wakeups: tel.counter("core.shard.wakeups"),
            batches: tel.counter("core.shard.batches"),
            requeues: tel.counter("core.shard.requeues"),
            expiry_sweeps: tel.counter("core.shard.expiry_sweeps"),
            registered: tel.counter("core.shard.registered"),
            pinned: tel.counter("core.shard.pinned"),
        });
        let shards: Vec<Arc<Shard>> = (0..cfg.shards.max(1))
            .map(|_| {
                Arc::new(Shard {
                    state: Mutex::new(ShardState {
                        ready: VecDeque::new(),
                        queued: HashSet::new(),
                        engines: HashMap::new(),
                    }),
                    cv: Condvar::new(),
                    shutdown: AtomicBool::new(false),
                })
            })
            .collect();
        let workers = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard = Arc::clone(shard);
                let tel = Arc::clone(&tel);
                let batch = cfg.batch.max(1);
                let tick = cfg.idle_tick;
                let sweep_every = cfg.sweep_every;
                let pin = cfg.pin_cores;
                std::thread::Builder::new()
                    .name(format!("iwarp-shard-{i}"))
                    .spawn(move || {
                        if pin && iwarp_common::affinity::pin_to_core(i) {
                            tel.pinned.inc();
                        }
                        worker(&shard, batch, tick, sweep_every, &tel);
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Arc::new(Self {
            shards,
            cfg,
            tel,
            workers: Mutex::new(workers),
        })
    }

    /// Number of shards in the pool.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a QP number maps to (stable hash, so tests can place
    /// QPs deliberately).
    #[must_use]
    pub fn shard_of(&self, qpn: u32) -> usize {
        (iwarp_common::rng::mix64(u64::from(qpn)) % self.shards.len() as u64) as usize
    }

    /// Assigns `engine` to its shard and installs the conduit's arrival
    /// notifier. Returns `false` (no assignment) when the LLP has no
    /// notify hook — RD QPs keep their own engine thread.
    pub(crate) fn register(self: &Arc<Self>, engine: &Arc<DgInner>) -> bool {
        let qpn = engine.qpn();
        let shard = Arc::clone(&self.shards[self.shard_of(qpn)]);
        let notify_shard = Arc::clone(&shard);
        let hooked = engine.set_notify(Some(Arc::new(move |_addr| {
            notify_shard.mark_ready(qpn);
        })));
        if !hooked {
            return false;
        }
        shard
            .state
            .lock()
            .engines
            .insert(qpn, Arc::downgrade(engine));
        self.tel.registered.inc();
        // Catch anything delivered before the notifier was installed.
        shard.mark_ready(qpn);
        true
    }

    /// Removes a QP from its shard (called on QP drop; the notifier dies
    /// with the conduit's endpoint).
    pub(crate) fn unregister(&self, qpn: u32) {
        let shard = &self.shards[self.shard_of(qpn)];
        let mut st = shard.state.lock();
        st.engines.remove(&qpn);
        st.queued.remove(&qpn);
        st.ready.retain(|q| *q != qpn);
    }

    /// QPs currently assigned across all shards (diagnostic).
    #[must_use]
    pub fn registered(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().engines.len()).sum()
    }

    /// The batch bound workers drain per QP per wakeup.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.cfg.batch.max(1)
    }
}

impl Drop for ShardMap {
    fn drop(&mut self) {
        for s in &self.shards {
            s.shutdown.store(true, Ordering::SeqCst);
            s.cv.notify_one();
        }
        for w in self.workers.lock().drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ShardMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMap")
            .field("shards", &self.shards())
            .field("registered", &self.registered())
            .finish()
    }
}

/// Shard worker body: park on the inbox, drain ready QPs in batches,
/// sweep for expirations when idle (rate-limited to `sweep_every`).
fn worker(shard: &Shard, batch: usize, tick: Duration, sweep_every: Duration, tel: &ShardTel) {
    let mut last_sweep = std::time::Instant::now();
    loop {
        // Claim the next ready QP (or sleep until one appears).
        let claimed = {
            let mut st = shard.state.lock();
            loop {
                if shard.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(qpn) = st.ready.pop_front() {
                    st.queued.remove(&qpn);
                    let eng = st.engines.get(&qpn).and_then(Weak::upgrade);
                    if eng.is_none() {
                        st.engines.remove(&qpn);
                        continue;
                    }
                    break Some((qpn, eng.expect("checked")));
                }
                let timed_out = shard.cv.wait_for(&mut st, tick).timed_out();
                if timed_out && st.ready.is_empty() {
                    break None; // idle tick: housekeeping below
                }
            }
        };
        match claimed {
            Some((qpn, engine)) => {
                tel.wakeups.inc();
                tel.batches.inc();
                if rx_drain(&engine, batch) {
                    // Budget exhausted with more pending: requeue behind
                    // the QP's shard siblings.
                    tel.requeues.inc();
                    shard.mark_ready(qpn);
                }
            }
            None => {
                // Idle: sweep every assigned QP so recv/record/read TTLs
                // fire without traffic. Collect strong refs first — the
                // sweep must run outside the inbox lock.
                if last_sweep.elapsed() < sweep_every {
                    continue;
                }
                last_sweep = std::time::Instant::now();
                tel.expiry_sweeps.inc();
                let engines: Vec<Arc<DgInner>> = {
                    let mut st = shard.state.lock();
                    st.engines.retain(|_, w| w.strong_count() > 0);
                    st.engines.values().filter_map(Weak::upgrade).collect()
                };
                for e in engines {
                    expire_tick(&e);
                }
            }
        }
    }
}
