//! Point-in-time export of every metric in a telemetry domain.

use std::fmt;

/// A sorted name→value capture of counters, histogram aggregates, and
/// attached memory scopes. Produced by `Telemetry::snapshot`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<(String, u64)>,
}

impl Snapshot {
    pub(crate) fn from_entries(entries: Vec<(String, u64)>) -> Self {
        Self { entries }
    }

    /// Looks up one metric by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// All `(name, value)` pairs, sorted by name.
    #[must_use]
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Sum of every metric whose name starts with `prefix` (for rollups
    /// like "all drops under `simnet.fabric.`").
    #[must_use]
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The change since `earlier`: entries whose value differs, as
    /// `now - then` (saturating; counters are monotonic so a negative
    /// delta indicates a restarted domain and clamps to 0). Metrics new
    /// in `self` appear with their full value.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        let entries = self
            .entries
            .iter()
            .filter_map(|(k, v)| {
                let then = earlier.get(k).unwrap_or(0);
                let d = v.saturating_sub(then);
                (d != 0).then(|| (k.clone(), d))
            })
            .collect();
        Self { entries }
    }

    /// Renders `name,value` CSV with a header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push(',');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders an aligned human-readable table (also the `Display` form).
    #[must_use]
    pub fn to_text(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }

    /// Number of exported metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges `other` into `self`, summing metrics present in both (for
    /// aggregating across the many short-lived fabrics a figure sweep
    /// creates).
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in &other.entries {
            match self.entries.binary_search_by(|(e, _)| e.as_str().cmp(k)) {
                Ok(i) => self.entries[i].1 += v,
                Err(i) => self.entries.insert(i, (k.clone(), *v)),
            }
        }
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> Snapshot {
        let mut entries: Vec<(String, u64)> =
            pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
        entries.sort();
        Snapshot::from_entries(entries)
    }

    #[test]
    fn csv_and_text_forms() {
        let s = snap(&[("a.b", 1), ("a.c", 2)]);
        assert_eq!(s.to_csv(), "counter,value\na.b,1\na.c,2\n");
        assert!(s.to_text().contains("a.b"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn prefix_rollup() {
        let s = snap(&[("x.a", 1), ("x.b", 2), ("y.a", 10)]);
        assert_eq!(s.sum_prefix("x."), 3);
        assert_eq!(s.sum_prefix("y."), 10);
        assert_eq!(s.sum_prefix("z."), 0);
    }

    #[test]
    fn merge_sums_common_keys() {
        let mut a = snap(&[("k", 1), ("only_a", 5)]);
        let b = snap(&[("k", 2), ("only_b", 7)]);
        a.merge(&b);
        assert_eq!(a.get("k"), Some(3));
        assert_eq!(a.get("only_a"), Some(5));
        assert_eq!(a.get("only_b"), Some(7));
    }
}
