//! Regenerates every figure of the paper's evaluation (Section VI).
//!
//! ```text
//! cargo run --release -p iwarp-bench --bin figures -- --all
//! cargo run --release -p iwarp-bench --bin figures -- --fig6 --fig8 --quick
//! ```
//!
//! Each figure prints a paper-style table (same series, same axes) and
//! writes a CSV under `results/`. Absolute numbers depend on the host —
//! the *shape* (who wins, by what factor, where crossovers fall) is what
//! reproduces the paper; EXPERIMENTS.md records both.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use iwarp_bench::verbs::{absorb_snapshot, bandwidth_with_config, default_burst, drain_snapshot};
use iwarp_bench::{bandwidth, latency, FabricKind, Method};
use iwarp_common::memacct::MemRegistry;
use iwarp_common::stats::{pct_improvement_higher, pct_improvement_lower};

use iwarp_apps::media::{run_http_session, run_native_udp_session, run_udp_session, MediaConfig};
use iwarp_apps::sip::load::run_sip_load_with_peak_sample;
use iwarp_apps::sip::{run_sip_load, SipLoadConfig, SipServer, SipServerConfig, SipTransport};
use iwarp_socket::{DgramMode, SocketConfig, SocketStack};
use simnet::{Addr, Fabric, LossModel, NodeId, WireConfig};

#[derive(Clone)]
struct Args {
    figs: Vec<String>,
    quick: bool,
    out: PathBuf,
    fabric: FabricKind,
    calls: Vec<usize>,
    telemetry: bool,
}

/// Applies `--copy-path {legacy,sg}`: every QP/conduit built afterwards
/// picks the path up from the process-wide default, so one flag A/Bs the
/// whole stack (Fig. 5/6 under both datapaths feed `BENCH_PR2.json`).
fn set_copy_path(spec: &str) {
    let Some(path) = iwarp_common::copypath::CopyPath::parse(spec) else {
        eprintln!("--copy-path takes 'legacy' or 'sg', got {spec:?}");
        std::process::exit(2);
    };
    iwarp_common::copypath::set_default(path);
}

/// Applies `--burst-path {per-packet,burst}` the same way: one flag A/Bs
/// the batching discipline across every QP/fabric built afterwards.
fn set_burst_path(spec: &str) {
    let Some(path) = iwarp_common::burstpath::BurstPath::parse(spec) else {
        eprintln!("--burst-path takes 'per-packet' or 'burst', got {spec:?}");
        std::process::exit(2);
    };
    iwarp_common::burstpath::set_default(path);
}

fn parse_args() -> Args {
    let mut figs = Vec::new();
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut fabric = FabricKind::TenGbe;
    let mut calls = vec![100, 1000, 10_000];
    let mut telemetry = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--all" => figs.extend(
                ["fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "overhead", "ext"]
                    .map(String::from),
            ),
            "--quick" => quick = true,
            "--fast-fabric" => fabric = FabricKind::Fast,
            "--telemetry" => telemetry = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(&argv[i]);
            }
            "--calls" => {
                i += 1;
                calls = argv[i]
                    .split(',')
                    .map(|s| s.parse().expect("--calls takes e.g. 100,1000"))
                    .collect();
            }
            "--copy-path" => {
                i += 1;
                set_copy_path(&argv[i]);
            }
            p if p.starts_with("--copy-path=") => {
                set_copy_path(p.trim_start_matches("--copy-path="));
            }
            "--burst-path" => {
                i += 1;
                set_burst_path(&argv[i]);
            }
            p if p.starts_with("--burst-path=") => {
                set_burst_path(p.trim_start_matches("--burst-path="));
            }
            f if f.starts_with("--fig") || f == "--overhead" || f == "--ext" => {
                figs.push(f.trim_start_matches("--").to_owned());
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: figures [--all] [--fig5..--fig11] [--overhead] [--ext] [--quick] [--fast-fabric] [--telemetry] [--copy-path {{legacy,sg}}] [--burst-path {{per-packet,burst}}] [--calls a,b,c] [--out DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figs.is_empty() {
        figs.extend(
            ["fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "overhead", "ext"]
                .map(String::from),
        );
    }
    Args {
        figs,
        quick,
        out,
        fabric,
        calls,
        telemetry,
    }
}

/// Writes the telemetry accumulated while producing one figure as a
/// `<fig>_telemetry.csv` next to the figure's CSV. Drains the accumulator
/// either way so figures never inherit each other's counters.
fn save_telemetry(args: &Args, fig: &str) {
    let Some(snap) = drain_snapshot() else { return };
    if !args.telemetry {
        return;
    }
    let _ = fs::create_dir_all(&args.out);
    let path = args.out.join(format!("{fig}_telemetry.csv"));
    fs::write(&path, snap.to_csv()).expect("write telemetry csv");
    println!("  [csv] {}", path.display());
}

fn save_csv(args: &Args, name: &str, header: &str, rows: &[String]) {
    let _ = fs::create_dir_all(&args.out);
    let path = args.out.join(name);
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("write csv");
    println!("  [csv] {}", path.display());
}

fn fmt_size(s: usize) -> String {
    if s >= 1024 * 1024 {
        format!("{}M", s / (1024 * 1024))
    } else if s >= 1024 {
        if s.is_multiple_of(1024) {
            format!("{}K", s / 1024)
        } else {
            format!("{:.1}K", s as f64 / 1024.0)
        }
    } else {
        format!("{s}")
    }
}

// ---------------------------------------------------------------- Fig. 5

fn fig5(args: &Args) {
    println!("\n=== Figure 5: verbs ping-pong latency (one-way, µs) ===");
    let small: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let medium: &[usize] = &[2048, 4096, 8192, 16 * 1024, 32 * 1024, 64 * 1024];
    let large: &[usize] = &[128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024];
    let sizes: Vec<usize> = if args.quick {
        vec![4, 64, 1024, 16 * 1024, 256 * 1024]
    } else {
        [small, medium, large].concat()
    };
    let iters = |size: usize| -> usize {
        let base = if size <= 4096 {
            100
        } else if size <= 64 * 1024 {
            40
        } else {
            15
        };
        if args.quick {
            (base / 4).max(5)
        } else {
            base
        }
    };

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "size", "UD S/R", "UD WR-Rec", "RC S/R", "RC Write"
    );
    let mut rows = Vec::new();
    let mut small_band: Vec<[f64; 4]> = Vec::new();
    for &size in &sizes {
        let n = iters(size);
        let mut cols = Vec::new();
        for m in Method::FIG56 {
            let s = latency(args.fabric, m, size, (n / 5).max(2), n);
            cols.push(s.median());
        }
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            fmt_size(size),
            cols[0],
            cols[1],
            cols[2],
            cols[3]
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3},{:.3}",
            size, cols[0], cols[1], cols[2], cols[3]
        ));
        if size <= 2048 {
            small_band.push([cols[0], cols[1], cols[2], cols[3]]);
        }
    }
    save_csv(
        args,
        "fig5_latency.csv",
        "size_bytes,ud_sendrecv_us,ud_write_record_us,rc_sendrecv_us,rc_rdma_write_us",
        &rows,
    );
    if !small_band.is_empty() {
        let avg = |idx: usize| -> f64 {
            small_band.iter().map(|c| c[idx]).sum::<f64>() / small_band.len() as f64
        };
        println!(
            "  ≤2KiB: UD WR-Rec vs RC Write {:+.1}% (paper: +24.4%); UD S/R vs RC S/R {:+.1}% (paper: +18.1%)",
            pct_improvement_lower(avg(1), avg(3)),
            pct_improvement_lower(avg(0), avg(2))
        );
    }
}

// ---------------------------------------------------------------- Fig. 6

fn bw_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024]
    } else {
        vec![
            1,
            4,
            16,
            64,
            256,
            1024,
            1500,
            4096,
            16 * 1024,
            64 * 1024,
            256 * 1024,
            512 * 1024,
            1024 * 1024,
        ]
    }
}

fn fig6(args: &Args) {
    println!("\n=== Figure 6: unidirectional bandwidth (MB/s) ===");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "size", "UD S/R", "UD WR-Rec", "RC S/R", "RC Write"
    );
    let mut rows = Vec::new();
    let mut key_points = std::collections::HashMap::new();
    for size in bw_sizes(args.quick) {
        let n = if args.quick {
            default_burst(size).min(128)
        } else {
            default_burst(size)
        };
        let cols: Vec<f64> = Method::FIG56
            .iter()
            .map(|&m| bandwidth(args.fabric, m, size, n).mbps)
            .collect();
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            fmt_size(size),
            cols[0],
            cols[1],
            cols[2],
            cols[3]
        );
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.2}",
            size, cols[0], cols[1], cols[2], cols[3]
        ));
        key_points.insert(size, cols);
    }
    save_csv(
        args,
        "fig6_bandwidth.csv",
        "size_bytes,ud_sendrecv_mbps,ud_write_record_mbps,rc_sendrecv_mbps,rc_rdma_write_mbps",
        &rows,
    );
    if let Some(c) = key_points.get(&1024) {
        println!(
            "  @1KiB: UD WR-Rec vs RC Write {:+.0}% (paper: +188.8%); UD S/R vs RC S/R {:+.0}% (paper: +193%)",
            pct_improvement_higher(c[1], c[3]),
            pct_improvement_higher(c[0], c[2])
        );
    }
    if let Some(c) = key_points.get(&(512 * 1024)) {
        println!(
            "  @512KiB: UD WR-Rec vs RC Write {:+.0}% (paper: +256%)",
            pct_improvement_higher(c[1], c[3])
        );
    }
    if let Some(c) = key_points.get(&(256 * 1024)) {
        println!(
            "  @256KiB: UD S/R vs RC S/R {:+.0}% (paper: +33.4%)",
            pct_improvement_higher(c[0], c[2])
        );
    }
}

// ------------------------------------------------------------- Figs. 7/8

const LOSS_RATES: [f64; 4] = [0.001, 0.005, 0.01, 0.05];

fn loss_fig(args: &Args, method: Method, name: &str, csv: &str, paper_note: &str) {
    println!("\n=== {name} ===");
    let sizes = bw_sizes(args.quick);
    print!("{:>8}", "size");
    for r in LOSS_RATES {
        print!(" {:>12}", format!("{}% loss", r * 100.0));
    }
    println!();
    let mut rows = Vec::new();
    for &size in &sizes {
        let n = default_burst(size).min(if args.quick { 64 } else { 256 });
        let mut cols = Vec::new();
        print!("{:>8}", fmt_size(size));
        for rate in LOSS_RATES {
            let kind = match args.fabric {
                FabricKind::Fast | FabricKind::FastLoss(_) => FabricKind::FastLoss(rate),
                _ => FabricKind::TenGbeLoss(rate),
            };
            let r = bandwidth(kind, method, size, n);
            print!(" {:>12.1}", r.mbps);
            cols.push(r.mbps);
        }
        println!();
        rows.push(format!(
            "{},{}",
            size,
            cols.iter()
                .map(|c| format!("{c:.2}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    save_csv(
        args,
        csv,
        "size_bytes,mbps_0.1pct,mbps_0.5pct,mbps_1pct,mbps_5pct",
        &rows,
    );
    println!("  {paper_note}");
}

fn fig7(args: &Args) {
    loss_fig(
        args,
        Method::UdSendRecv,
        "Figure 7: UD send/recv bandwidth under packet loss (MB/s)",
        "fig7_loss_sendrecv.csv",
        "paper shape: multi-datagram messages collapse under loss (all-or-nothing reassembly); cliff at the 64 KiB datagram limit",
    );
}

fn fig8(args: &Args) {
    loss_fig(
        args,
        Method::UdWriteRecord,
        "Figure 8: UD RDMA Write-Record bandwidth under packet loss (MB/s)",
        "fig8_loss_write_record.csv",
        "paper shape: partial placement sustains goodput past 64 KiB at low loss; high loss still kills whole messages via the final packet",
    );
}

// ---------------------------------------------------------------- Fig. 9

fn media_sock_cfg(mode: DgramMode) -> SocketConfig {
    SocketConfig {
        mode,
        recv_slots: 256,
        slot_size: 2048,
        ..SocketConfig::default()
    }
}

fn fig9(args: &Args) {
    println!("\n=== Figure 9: VLC-style streaming initial buffering time (ms) ===");
    let cfg = MediaConfig {
        chunk_size: 1316,
        total_bytes: if args.quick { 4 << 20 } else { 8 << 20 },
        bitrate_bps: 0, // unpaced: buffering time reflects transport goodput
        prebuffer_bytes: if args.quick { 512 * 1024 } else { 1 << 20 },
        idle_timeout: Duration::from_millis(500),
    };
    let wire = args.fabric.config();

    // Single-core scheduling adds run-to-run variance: report the median
    // of several sessions per transport.
    let reps = if args.quick { 3 } else { 5 };
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let udp_mode = |mode: DgramMode| -> f64 {
        median(
            (0..reps)
                .map(|_| {
                    let fab = Fabric::new(wire.clone());
                    let sa = SocketStack::with_config(
                        &fab,
                        NodeId(0),
                        Default::default(),
                        media_sock_cfg(mode),
                    );
                    let sb = SocketStack::with_config(
                        &fab,
                        NodeId(1),
                        Default::default(),
                        media_sock_cfg(mode),
                    );
                    let m = run_udp_session(&sa, &sb, &cfg).expect("udp session");
                    absorb_snapshot(fab.telemetry().snapshot());
                    m.prebuffer_time.as_secs_f64() * 1e3
                })
                .collect(),
        )
    };
    let ud_sr = udp_mode(DgramMode::SendRecv);
    let ud_wr = udp_mode(DgramMode::WriteRecord);
    let rc_http = median(
        (0..reps)
            .map(|_| {
                let fab = Fabric::new(wire.clone());
                let sa = SocketStack::with_config(
                    &fab,
                    NodeId(0),
                    Default::default(),
                    media_sock_cfg(DgramMode::SendRecv),
                );
                let sb = SocketStack::with_config(
                    &fab,
                    NodeId(1),
                    Default::default(),
                    media_sock_cfg(DgramMode::SendRecv),
                );
                let m = run_http_session(&sa, &sb, 8080, &cfg).expect("http session");
                absorb_snapshot(fab.telemetry().snapshot());
                m.prebuffer_time.as_secs_f64() * 1e3
            })
            .collect(),
    );
    println!("{:>24} {:>12}", "transport", "buffering ms");
    println!("{:>24} {:>12.1}", "UD send/recv", ud_sr);
    println!("{:>24} {:>12.1}", "UD RDMA Write-Record", ud_wr);
    println!("{:>24} {:>12.1}", "RC (HTTP)", rc_http);
    let best_ud = ud_sr.min(ud_wr);
    println!(
        "  UD vs RC/HTTP buffering: {:+.1}% (paper: +74.1%); UD WR-Rec vs UD S/R through the shim: {:+.1}% (paper: \"minimal\")",
        pct_improvement_lower(best_ud, rc_http),
        pct_improvement_lower(ud_wr, ud_sr)
    );
    save_csv(
        args,
        "fig9_media_buffering.csv",
        "transport,buffering_ms",
        &[
            format!("ud_sendrecv,{ud_sr:.2}"),
            format!("ud_write_record,{ud_wr:.2}"),
            format!("rc_http,{rc_http:.2}"),
        ],
    );
}

// --------------------------------------------------------------- Fig. 10

fn sip_stacks(fab: &Fabric, reg: Option<MemRegistry>) -> (SocketStack, SocketStack) {
    let sock = SocketConfig {
        recv_slots: 8,
        slot_size: 2048,
        qp: iwarp::QpConfig {
            poll_mode: true,
            ..iwarp::QpConfig::default()
        },
        ..SocketConfig::default()
    };
    let stream = simnet::stream::StreamConfig {
        snd_buf: 3072,
        rcv_buf: 3072,
        poll_mode: true,
        ..simnet::stream::StreamConfig::default()
    };
    let server = SocketStack::with_config(
        fab,
        NodeId(1),
        iwarp::DeviceConfig {
            mem: reg,
            stream: stream.clone(),
            ..iwarp::DeviceConfig::default()
        },
        sock.clone(),
    );
    let client = SocketStack::with_config(
        fab,
        NodeId(0),
        iwarp::DeviceConfig {
            stream,
            ..iwarp::DeviceConfig::default()
        },
        sock,
    );
    (server, client)
}

fn fig10(args: &Args) {
    println!("\n=== Figure 10: SIP request/response time (ms) ===");
    let calls = if args.quick { 50 } else { 200 };
    let mut results = Vec::new();
    for (transport, port) in [(SipTransport::Ud, 5060u16), (SipTransport::Rc, 5061)] {
        let fab = Fabric::new(args.fabric.config());
        let (server_stack, client_stack) = sip_stacks(&fab, None);
        let server = SipServer::spawn(
            server_stack,
            SipServerConfig {
                transport,
                port,
                call_state_bytes: 1024,
            },
        )
        .expect("server");
        let report = run_sip_load(
            &client_stack,
            &SipLoadConfig {
                calls,
                transport,
                server_addr: Addr::new(1, port),
                timeout: Duration::from_secs(10),
                call_state_bytes: 1024,
            },
        )
        .expect("load");
        server.stop().expect("server stop");
        absorb_snapshot(fab.telemetry().snapshot());
        results.push((transport, report.response_us.median() / 1e3, report));
    }
    println!("{:>12} {:>16}", "transport", "response ms");
    for (t, ms, _) in &results {
        println!("{:>12} {:>16.3}", format!("{t:?}"), ms);
    }
    let ud = results[0].1;
    let rc = results[1].1;
    println!(
        "  UD vs RC response time: {:+.1}% (paper: +43.1%)",
        pct_improvement_lower(ud, rc)
    );
    save_csv(
        args,
        "fig10_sip_response.csv",
        "transport,response_ms_median,response_ms_mean",
        &[
            format!(
                "ud,{:.4},{:.4}",
                results[0].1,
                results[0].2.response_us.mean() / 1e3
            ),
            format!(
                "rc,{:.4},{:.4}",
                results[1].1,
                results[1].2.response_us.mean() / 1e3
            ),
        ],
    );
}

// --------------------------------------------------------------- Fig. 11

fn fig11(args: &Args) {
    println!("\n=== Figure 11: SIP server memory, UD vs RC (% improvement) ===");
    let calls_axis: Vec<usize> = if args.quick {
        vec![50, 200]
    } else {
        args.calls.clone()
    };
    let mut rows = Vec::new();
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "calls", "UD bytes", "RC bytes", "improvement"
    );
    for &calls in &calls_axis {
        let measure = |transport: SipTransport, port: u16| -> u64 {
            let fab = Fabric::loopback();
            let reg = MemRegistry::new();
            let (server_stack, client_stack) = sip_stacks(&fab, Some(reg.clone()));
            let server = SipServer::spawn(
                server_stack,
                SipServerConfig {
                    transport,
                    port,
                    call_state_bytes: 1024,
                },
            )
            .expect("server");
            let reg2 = reg.clone();
            let report = run_sip_load_with_peak_sample(
                &client_stack,
                &SipLoadConfig {
                    calls,
                    transport,
                    server_addr: Addr::new(1, port),
                    timeout: Duration::from_secs(60),
                    call_state_bytes: 1024,
                },
                || {
                    (
                        reg2.total_current(),
                        reg2.snapshot()
                            .into_iter()
                            .map(|(c, cur, _)| (c, cur))
                            .collect(),
                    )
                },
            )
            .expect("load");
            server.stop().expect("stop");
            absorb_snapshot(fab.telemetry().snapshot());
            assert_eq!(report.calls_established, calls);
            report.server_mem_bytes
        };
        let ud = measure(SipTransport::Ud, 5062);
        let rc = measure(SipTransport::Rc, 5063);
        let imp = pct_improvement_lower(ud as f64, rc as f64);
        println!("{calls:>10} {ud:>14} {rc:>14} {imp:>13.1}%");
        rows.push(format!("{calls},{ud},{rc},{imp:.2}"));
    }
    println!("  paper: ~24.1% at 10000 calls (theory from socket sizes alone: 28.1%)");
    save_csv(
        args,
        "fig11_sip_memory.csv",
        "concurrent_calls,ud_server_bytes,rc_server_bytes,improvement_pct",
        &rows,
    );
}

// -------------------------------------------------------------- Overhead

fn overhead(args: &Args) {
    println!("\n=== §VI.B.2: socket-shim overhead vs native UDP (prebuffering) ===");
    let cfg = MediaConfig {
        chunk_size: 1316,
        total_bytes: if args.quick { 2 << 20 } else { 8 << 20 },
        bitrate_bps: 100_000_000, // paced: isolates per-message overhead
        prebuffer_bytes: 512 * 1024,
        idle_timeout: Duration::from_millis(500),
    };
    let reps = if args.quick { 2 } else { 5 };
    let mut shim = Vec::new();
    let mut native = Vec::new();
    for _ in 0..reps {
        let fab = Fabric::new(args.fabric.config());
        let sa = SocketStack::with_config(
            &fab,
            NodeId(0),
            Default::default(),
            media_sock_cfg(DgramMode::SendRecv),
        );
        let sb = SocketStack::with_config(
            &fab,
            NodeId(1),
            Default::default(),
            media_sock_cfg(DgramMode::SendRecv),
        );
        shim.push(
            run_udp_session(&sa, &sb, &cfg)
                .expect("shim")
                .prebuffer_time
                .as_secs_f64(),
        );
        absorb_snapshot(fab.telemetry().snapshot());
        let fab2 = Fabric::new(args.fabric.config());
        native.push(
            run_native_udp_session(&fab2, &cfg)
                .expect("native")
                .prebuffer_time
                .as_secs_f64(),
        );
        absorb_snapshot(fab2.telemetry().snapshot());
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let shim_ms = avg(&shim) * 1e3;
    let native_ms = avg(&native) * 1e3;
    let pct = (shim_ms - native_ms) / native_ms * 100.0;
    println!(
        "  shim: {shim_ms:.1} ms, native UDP: {native_ms:.1} ms → overhead {pct:+.1}% (paper: ≈ +2%)"
    );
    save_csv(
        args,
        "overhead_shim.csv",
        "path,prebuffer_ms",
        &[
            format!("iwarp_shim,{shim_ms:.3}"),
            format!("native_udp,{native_ms:.3}"),
        ],
    );
}

// ------------------------------------------------------------ Extensions

fn ext(args: &Args) {
    println!("\n=== Extensions (paper future work, implemented) ===");

    // RD mode: reliable datagrams vs UD and RC.
    let size = 64 * 1024;
    let n = if args.quick { 32 } else { 128 };
    let rd = bandwidth(args.fabric, Method::RdSendRecv, size, n);
    let ud = bandwidth(args.fabric, Method::UdSendRecv, size, n);
    let rc = bandwidth(args.fabric, Method::RcSendRecv, size, n);
    println!(
        "  RD send/recv bandwidth @64KiB: {:.1} MB/s (UD {:.1}, RC {:.1})",
        rd.mbps, ud.mbps, rc.mbps
    );

    // UD RDMA Read.
    let rl = latency(
        args.fabric,
        Method::UdRead,
        4096,
        3,
        if args.quick { 10 } else { 40 },
    );
    let rb = bandwidth(
        args.fabric,
        Method::UdRead,
        256 * 1024,
        if args.quick { 16 } else { 64 },
    );
    println!(
        "  UD RDMA Read: round-trip {:.2} µs @4KiB, bandwidth {:.1} MB/s @256KiB",
        rl.median(),
        rb.mbps
    );

    // Bursty (Gilbert–Elliott) vs Bernoulli loss at the same average rate.
    let rate = 0.01;
    let wr_n = if args.quick { 24 } else { 48 };
    let bern = bandwidth(FabricKind::FastLoss(rate), Method::UdWriteRecord, 512 * 1024, wr_n);
    let burst = bandwidth_with_config(
        WireConfig {
            loss: LossModel::bursty(rate, 8.0),
            seed: 0xB00B5,
            ..WireConfig::default()
        },
        Method::UdWriteRecord,
        512 * 1024,
        wr_n,
    );
    println!(
        "  Write-Record @512KiB, 1% avg loss: Bernoulli {:.1} MB/s vs bursty(GE, mean burst 8) {:.1} MB/s",
        bern.mbps, burst.mbps
    );
    println!("  (bursty loss concentrates drops: fewer messages hit, more bytes salvaged per hit)");

    save_csv(
        args,
        "extensions.csv",
        "metric,value",
        &[
            format!("rd_sendrecv_mbps_64k,{:.2}", rd.mbps),
            format!("ud_read_rt_us_4k,{:.2}", rl.median()),
            format!("ud_read_mbps_256k,{:.2}", rb.mbps),
            format!("wr_bernoulli_1pct_mbps_512k,{:.2}", bern.mbps),
            format!("wr_bursty_1pct_mbps_512k,{:.2}", burst.mbps),
        ],
    );
}

fn main() {
    let args = parse_args();
    println!(
        "datagram-iWARP figure harness — fabric: {:?}, copy path: {}{}",
        args.fabric,
        iwarp_common::copypath::default_path(),
        if args.quick { " (quick)" } else { "" }
    );
    let t0 = std::time::Instant::now();
    for fig in args.figs.clone() {
        match fig.as_str() {
            "fig5" => fig5(&args),
            "fig6" => fig6(&args),
            "fig7" => fig7(&args),
            "fig8" => fig8(&args),
            "fig9" => fig9(&args),
            "fig10" => fig10(&args),
            "fig11" => fig11(&args),
            "overhead" => overhead(&args),
            "ext" => ext(&args),
            other => eprintln!("unknown figure {other}"),
        }
        save_telemetry(&args, &fig);
    }
    println!("\nall figures done in {:.1}s", t0.elapsed().as_secs_f64());
}
