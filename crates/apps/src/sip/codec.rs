//! SIP message codec: the RFC 3261 text grammar subset that SIPp's
//! SipStone scenario exercises (INVITE / ACK / BYE transactions with the
//! core headers).
//!
//! Two tiers. [`SipMessage`] is the owned builder — convenient for
//! constructing requests, but parsing into it allocates a `String` pair
//! per header plus the body, which at SIP-server rates is heap churn on
//! every transaction. [`SipView`] is the hot-path tier: a borrowed,
//! fixed-footprint view over the received bytes (header slices inline in
//! an array, body a subslice), paired with [`encode_response_into`] which
//! serializes a response into a caller-owned scratch buffer. Parse +
//! respond over a warm [`SipScratch`] allocates nothing per transaction
//! — the property the per-call memory budget (and the zero-alloc codec
//! test) holds the server to.

use std::fmt;
use std::io::Write as _;

use iwarp_common::memacct::{MemRegistry, MemScope};

/// SIP request methods used by the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SipMethod {
    /// Session setup.
    Invite,
    /// Three-way-handshake completion for INVITE.
    Ack,
    /// Session teardown.
    Bye,
    /// Keepalive / capability query.
    Options,
    /// Registration.
    Register,
}

impl SipMethod {
    /// Canonical token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SipMethod::Invite => "INVITE",
            SipMethod::Ack => "ACK",
            SipMethod::Bye => "BYE",
            SipMethod::Options => "OPTIONS",
            SipMethod::Register => "REGISTER",
        }
    }

    /// Parses a method token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "INVITE" => SipMethod::Invite,
            "ACK" => SipMethod::Ack,
            "BYE" => SipMethod::Bye,
            "OPTIONS" => SipMethod::Options,
            "REGISTER" => SipMethod::Register,
            _ => return None,
        })
    }
}

/// First line of a SIP message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StartLine {
    /// `METHOD uri SIP/2.0`
    Request {
        /// Request method.
        method: SipMethod,
        /// Request URI.
        uri: String,
    },
    /// `SIP/2.0 code reason`
    Status {
        /// Response code (e.g. 200).
        code: u16,
        /// Reason phrase (e.g. "OK").
        reason: String,
    },
}

/// Codec errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SipParseError {
    /// Message is not valid UTF-8 / too short / missing CRLFCRLF.
    Malformed(&'static str),
}

impl fmt::Display for SipParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipParseError::Malformed(what) => write!(f, "malformed SIP message: {what}"),
        }
    }
}

impl std::error::Error for SipParseError {}

/// A SIP message: start line, ordered headers, optional body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SipMessage {
    /// Request or status line.
    pub start: StartLine,
    /// Header fields in order (names case-preserved; lookup is
    /// case-insensitive).
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl SipMessage {
    /// Creates a request with no headers.
    #[must_use]
    pub fn request(method: SipMethod, uri: &str) -> Self {
        Self {
            start: StartLine::Request {
                method,
                uri: uri.to_owned(),
            },
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Creates a response with no headers.
    #[must_use]
    pub fn response(code: u16, reason: &str) -> Self {
        Self {
            start: StartLine::Status {
                code,
                reason: reason.to_owned(),
            },
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Builds the standard response to `req`: status line plus the
    /// dialog-identifying headers (Via, From, To, Call-ID, CSeq) copied
    /// over, as RFC 3261 §8.2.6 requires.
    #[must_use]
    pub fn response_to(req: &SipMessage, code: u16, reason: &str) -> Self {
        let mut resp = Self::response(code, reason);
        for name in ["Via", "From", "To", "Call-ID", "CSeq"] {
            if let Some(v) = req.header(name) {
                resp.push_header(name, v);
            }
        }
        resp
    }

    /// Appends a header.
    pub fn push_header(&mut self, name: &str, value: &str) {
        self.headers.push((name.to_owned(), value.to_owned()));
    }

    /// Builder-style [`push_header`](Self::push_header).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.push_header(name, value);
        self
    }

    /// First value of `name` (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request method, if this is a request.
    #[must_use]
    pub fn method(&self) -> Option<SipMethod> {
        match &self.start {
            StartLine::Request { method, .. } => Some(*method),
            StartLine::Status { .. } => None,
        }
    }

    /// The status code, if this is a response.
    #[must_use]
    pub fn status(&self) -> Option<u16> {
        match &self.start {
            StartLine::Status { code, .. } => Some(*code),
            StartLine::Request { .. } => None,
        }
    }

    /// The Call-ID header.
    #[must_use]
    pub fn call_id(&self) -> Option<&str> {
        self.header("Call-ID")
    }

    /// Parses `CSeq: <seq> <METHOD>`.
    #[must_use]
    pub fn cseq(&self) -> Option<(u32, SipMethod)> {
        let v = self.header("CSeq")?;
        let mut parts = v.split_whitespace();
        let seq = parts.next()?.parse().ok()?;
        let method = SipMethod::parse(parts.next()?)?;
        Some((seq, method))
    }

    /// Serializes to wire bytes (Content-Length appended automatically).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        match &self.start {
            StartLine::Request { method, uri } => {
                out.extend_from_slice(method.as_str().as_bytes());
                out.push(b' ');
                out.extend_from_slice(uri.as_bytes());
                out.extend_from_slice(b" SIP/2.0\r\n");
            }
            StartLine::Status { code, reason } => {
                out.extend_from_slice(format!("SIP/2.0 {code} {reason}\r\n").as_bytes());
            }
        }
        for (n, v) in &self.headers {
            if n.eq_ignore_ascii_case("Content-Length") {
                continue; // always recomputed
            }
            out.extend_from_slice(n.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses one complete message from `raw`.
    pub fn parse(raw: &[u8]) -> Result<Self, SipParseError> {
        let (msg, used) = Self::parse_prefix(raw)?;
        if used != raw.len() {
            return Err(SipParseError::Malformed("trailing bytes"));
        }
        Ok(msg)
    }

    /// Parses one message from the front of `raw`, returning it and the
    /// bytes consumed — the stream-transport framing entry point.
    /// Returns `Malformed("incomplete")` when more bytes are needed.
    pub fn parse_prefix(raw: &[u8]) -> Result<(Self, usize), SipParseError> {
        let head_end = find_crlfcrlf(raw).ok_or(SipParseError::Malformed("incomplete"))?;
        let head = std::str::from_utf8(&raw[..head_end])
            .map_err(|_| SipParseError::Malformed("not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let start_line = lines.next().ok_or(SipParseError::Malformed("empty"))?;
        let start = parse_start_line(start_line)?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(SipParseError::Malformed("header without colon"))?;
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("Content-Length") {
                content_length = value
                    .parse()
                    .map_err(|_| SipParseError::Malformed("bad Content-Length"))?;
            }
            headers.push((name.to_owned(), value.to_owned()));
        }
        let body_start = head_end + 4;
        let total = body_start + content_length;
        if raw.len() < total {
            return Err(SipParseError::Malformed("incomplete"));
        }
        Ok((
            Self {
                start,
                headers,
                body: raw[body_start..total].to_vec(),
            },
            total,
        ))
    }

    /// True when `parse_prefix` failed only because more bytes are needed.
    #[must_use]
    pub fn is_incomplete(err: &SipParseError) -> bool {
        matches!(err, SipParseError::Malformed("incomplete"))
    }
}

fn find_crlfcrlf(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_start_line(line: &str) -> Result<StartLine, SipParseError> {
    if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
        let (code, reason) = rest
            .split_once(' ')
            .ok_or(SipParseError::Malformed("bad status line"))?;
        let code = code
            .parse()
            .map_err(|_| SipParseError::Malformed("bad status code"))?;
        return Ok(StartLine::Status {
            code,
            reason: reason.to_owned(),
        });
    }
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(SipMethod::parse)
        .ok_or(SipParseError::Malformed("bad method"))?;
    let uri = parts
        .next()
        .ok_or(SipParseError::Malformed("missing uri"))?;
    if parts.next() != Some("SIP/2.0") {
        return Err(SipParseError::Malformed("bad version"));
    }
    Ok(StartLine::Request {
        method,
        uri: uri.to_owned(),
    })
}

/// Maximum headers a [`SipView`] can hold inline. The SipStone workload
/// peaks at 9 (INVITE with SDP); real-world proxies commonly cap around
/// 32–64. Messages beyond the cap are rejected as malformed rather than
/// spilling to the heap — the view's footprint is the point.
pub const MAX_VIEW_HEADERS: usize = 24;

/// Start line of a [`SipView`] — like [`StartLine`] but borrowing from
/// the raw message instead of owning `String`s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewStart<'a> {
    /// `METHOD uri SIP/2.0`
    Request {
        /// Request method.
        method: SipMethod,
        /// Request URI.
        uri: &'a str,
    },
    /// `SIP/2.0 code reason`
    Status {
        /// Response code (e.g. 200).
        code: u16,
        /// Reason phrase (e.g. "OK").
        reason: &'a str,
    },
}

/// Borrowed, allocation-free view of a parsed SIP message.
///
/// Every field is a slice of the caller's buffer; headers live in a
/// fixed inline array. Parsing a datagram into a `SipView` touches the
/// heap zero times, which is what lets the server's steady-state
/// transaction loop (parse request → look up call → encode response into
/// a warm [`SipScratch`]) run without per-message churn.
#[derive(Clone, Copy, Debug)]
pub struct SipView<'a> {
    /// Request or status line.
    pub start: ViewStart<'a>,
    headers: [(&'a str, &'a str); MAX_VIEW_HEADERS],
    n_headers: usize,
    /// Message body (slice of the raw buffer).
    pub body: &'a [u8],
}

impl<'a> SipView<'a> {
    /// Parses one complete message from `raw` without allocating.
    pub fn parse(raw: &'a [u8]) -> Result<Self, SipParseError> {
        let (view, used) = Self::parse_prefix(raw)?;
        if used != raw.len() {
            return Err(SipParseError::Malformed("trailing bytes"));
        }
        Ok(view)
    }

    /// Parses one message from the front of `raw`, returning it and the
    /// bytes consumed. Returns `Malformed("incomplete")` when more bytes
    /// are needed — same framing contract as
    /// [`SipMessage::parse_prefix`], minus the heap.
    pub fn parse_prefix(raw: &'a [u8]) -> Result<(Self, usize), SipParseError> {
        let head_end = find_crlfcrlf(raw).ok_or(SipParseError::Malformed("incomplete"))?;
        let head = std::str::from_utf8(&raw[..head_end])
            .map_err(|_| SipParseError::Malformed("not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let start_line = lines.next().ok_or(SipParseError::Malformed("empty"))?;
        let start = parse_start_line_view(start_line)?;
        let mut headers = [("", ""); MAX_VIEW_HEADERS];
        let mut n_headers = 0usize;
        let mut content_length = 0usize;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(SipParseError::Malformed("header without colon"))?;
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("Content-Length") {
                content_length = value
                    .parse()
                    .map_err(|_| SipParseError::Malformed("bad Content-Length"))?;
            }
            if n_headers == MAX_VIEW_HEADERS {
                return Err(SipParseError::Malformed("too many headers"));
            }
            headers[n_headers] = (name, value);
            n_headers += 1;
        }
        let body_start = head_end + 4;
        let total = body_start + content_length;
        if raw.len() < total {
            return Err(SipParseError::Malformed("incomplete"));
        }
        Ok((
            Self {
                start,
                headers,
                n_headers,
                body: &raw[body_start..total],
            },
            total,
        ))
    }

    /// The parsed headers, in wire order.
    #[must_use]
    pub fn headers(&self) -> &[(&'a str, &'a str)] {
        &self.headers[..self.n_headers]
    }

    /// First value of `name` (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&'a str> {
        self.headers()
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|&(_, v)| v)
    }

    /// The request method, if this is a request.
    #[must_use]
    pub fn method(&self) -> Option<SipMethod> {
        match self.start {
            ViewStart::Request { method, .. } => Some(method),
            ViewStart::Status { .. } => None,
        }
    }

    /// The status code, if this is a response.
    #[must_use]
    pub fn status(&self) -> Option<u16> {
        match self.start {
            ViewStart::Status { code, .. } => Some(code),
            ViewStart::Request { .. } => None,
        }
    }

    /// The Call-ID header.
    #[must_use]
    pub fn call_id(&self) -> Option<&'a str> {
        self.header("Call-ID")
    }

    /// Parses `CSeq: <seq> <METHOD>`.
    #[must_use]
    pub fn cseq(&self) -> Option<(u32, SipMethod)> {
        let v = self.header("CSeq")?;
        let mut parts = v.split_whitespace();
        let seq = parts.next()?.parse().ok()?;
        let method = SipMethod::parse(parts.next()?)?;
        Some((seq, method))
    }
}

fn parse_start_line_view(line: &str) -> Result<ViewStart<'_>, SipParseError> {
    if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
        let (code, reason) = rest
            .split_once(' ')
            .ok_or(SipParseError::Malformed("bad status line"))?;
        let code = code
            .parse()
            .map_err(|_| SipParseError::Malformed("bad status code"))?;
        return Ok(ViewStart::Status { code, reason });
    }
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(SipMethod::parse)
        .ok_or(SipParseError::Malformed("bad method"))?;
    let uri = parts
        .next()
        .ok_or(SipParseError::Malformed("missing uri"))?;
    if parts.next() != Some("SIP/2.0") {
        return Err(SipParseError::Malformed("bad version"));
    }
    Ok(ViewStart::Request { method, uri })
}

/// Serializes the standard body-less response to `req` into `out`
/// (cleared first): status line, the dialog-identifying headers (Via,
/// From, To, Call-ID, CSeq) copied over per RFC 3261 §8.2.6, any `extra`
/// headers, and `Content-Length: 0`. Writing into an already-warm buffer
/// allocates nothing; wire bytes are identical to
/// `SipMessage::response_to(..).encode()` for the same inputs.
pub fn encode_response_into(
    req: &SipView<'_>,
    code: u16,
    reason: &str,
    extra: &[(&str, &str)],
    out: &mut Vec<u8>,
) {
    out.clear();
    // io::Write on Vec<u8> is infallible.
    let _ = write!(out, "SIP/2.0 {code} {reason}\r\n");
    for name in ["Via", "From", "To", "Call-ID", "CSeq"] {
        if let Some(v) = req.header(name) {
            let _ = write!(out, "{name}: {v}\r\n");
        }
    }
    for (n, v) in extra {
        let _ = write!(out, "{n}: {v}\r\n");
    }
    out.extend_from_slice(b"Content-Length: 0\r\n\r\n");
}

/// A reusable response-encoding buffer whose retained capacity is
/// visible to [memacct](iwarp_common::memacct) (category
/// `"sip_codec_scratch"`). After the first response warms it, further
/// transactions reuse the capacity — the accounting delta across a
/// steady-state window is zero, which the codec's memacct test asserts.
#[derive(Debug, Default)]
pub struct SipScratch {
    buf: Vec<u8>,
    mem: Option<MemScope>,
}

impl SipScratch {
    /// An untracked scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch buffer that reports its retained capacity to `reg`.
    #[must_use]
    pub fn with_mem(reg: &MemRegistry) -> Self {
        Self {
            buf: Vec::new(),
            mem: Some(reg.track("sip_codec_scratch", 0)),
        }
    }

    /// Encodes the standard response to `req` (see
    /// [`encode_response_into`]) and returns the wire bytes, valid until
    /// the next call.
    pub fn response_to(
        &mut self,
        req: &SipView<'_>,
        code: u16,
        reason: &str,
        extra: &[(&str, &str)],
    ) -> &[u8] {
        encode_response_into(req, code, reason, extra, &mut self.buf);
        if let Some(mem) = &mut self.mem {
            mem.set(self.buf.capacity() as u64);
        }
        &self.buf
    }
}

/// Builds a SipStone-style INVITE.
#[must_use]
pub fn make_invite(call_id: &str, from: &str, to: &str, cseq: u32) -> SipMessage {
    let mut m = SipMessage::request(SipMethod::Invite, &format!("sip:{to}"))
        .with_header("Via", "SIP/2.0/UDP client.invalid;branch=z9hG4bK776asdhds")
        .with_header("Max-Forwards", "70")
        .with_header("From", &format!("<sip:{from}>;tag=1928301774"))
        .with_header("To", &format!("<sip:{to}>"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", &format!("{cseq} INVITE"))
        .with_header("Contact", &format!("<sip:{from}>"))
        .with_header("Content-Type", "application/sdp");
    m.body = "v=0\r\no=- 0 0 IN IP4 0.0.0.0\r\ns=call\r\nc=IN IP4 0.0.0.0\r\nt=0 0\r\nm=audio 49170 RTP/AVP 0\r\n".to_string().into_bytes();
    m
}

/// Builds the ACK completing `call_id`'s INVITE transaction.
#[must_use]
pub fn make_ack(call_id: &str, from: &str, to: &str, cseq: u32) -> SipMessage {
    SipMessage::request(SipMethod::Ack, &format!("sip:{to}"))
        .with_header("Via", "SIP/2.0/UDP client.invalid;branch=z9hG4bK776asdhds")
        .with_header("From", &format!("<sip:{from}>;tag=1928301774"))
        .with_header("To", &format!("<sip:{to}>;tag=a6c85cf"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", &format!("{cseq} ACK"))
}

/// Builds the BYE tearing down `call_id`.
#[must_use]
pub fn make_bye(call_id: &str, from: &str, to: &str, cseq: u32) -> SipMessage {
    SipMessage::request(SipMethod::Bye, &format!("sip:{to}"))
        .with_header("Via", "SIP/2.0/UDP client.invalid;branch=z9hG4bK776asdhdt")
        .with_header("From", &format!("<sip:{from}>;tag=1928301774"))
        .with_header("To", &format!("<sip:{to}>;tag=a6c85cf"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", &format!("{cseq} BYE"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invite_roundtrip() {
        let m = make_invite("call-1@host", "alice@a.example", "bob@b.example", 1);
        let enc = m.encode();
        let parsed = SipMessage::parse(&enc).unwrap();
        assert_eq!(parsed.method(), Some(SipMethod::Invite));
        assert_eq!(parsed.call_id(), Some("call-1@host"));
        assert_eq!(parsed.cseq(), Some((1, SipMethod::Invite)));
        assert!(!parsed.body.is_empty());
    }

    #[test]
    fn response_roundtrip() {
        let req = make_invite("c2", "a", "b", 3);
        let resp = SipMessage::response_to(&req, 200, "OK");
        let parsed = SipMessage::parse(&resp.encode()).unwrap();
        assert_eq!(parsed.status(), Some(200));
        assert_eq!(parsed.call_id(), Some("c2"));
        assert_eq!(parsed.cseq(), Some((3, SipMethod::Invite)));
        assert!(parsed.header("Via").is_some());
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let m = SipMessage::request(SipMethod::Options, "sip:x").with_header("X-Test", "yes");
        assert_eq!(m.header("x-test"), Some("yes"));
        assert_eq!(m.header("X-TEST"), Some("yes"));
        assert_eq!(m.header("missing"), None);
    }

    #[test]
    fn content_length_recomputed() {
        let mut m = SipMessage::request(SipMethod::Invite, "sip:x");
        m.push_header("Content-Length", "999"); // lies
        m.body = b"12345".to_vec();
        let enc = String::from_utf8(m.encode()).unwrap();
        assert!(enc.contains("Content-Length: 5\r\n"));
        assert!(!enc.contains("999"));
    }

    #[test]
    fn parse_prefix_handles_pipelined_messages() {
        let a = make_ack("c1", "a", "b", 1).encode();
        let bye = make_bye("c1", "a", "b", 2).encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&bye);
        let (m1, used1) = SipMessage::parse_prefix(&stream).unwrap();
        assert_eq!(m1.method(), Some(SipMethod::Ack));
        assert_eq!(used1, a.len());
        let (m2, used2) = SipMessage::parse_prefix(&stream[used1..]).unwrap();
        assert_eq!(m2.method(), Some(SipMethod::Bye));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn incomplete_is_detected() {
        let enc = make_invite("c", "a", "b", 1).encode();
        for cut in [0, 10, enc.len() - 1] {
            let err = SipMessage::parse_prefix(&enc[..cut]).unwrap_err();
            assert!(SipMessage::is_incomplete(&err), "cut={cut}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(SipMessage::parse(b"NOTSIP x y\r\n\r\n").is_err());
        assert!(SipMessage::parse(b"INVITE sip:x HTTP/1.1\r\n\r\n").is_err());
        assert!(SipMessage::parse(b"SIP/2.0 abc OK\r\n\r\n").is_err());
        // Valid but with trailing junk.
        let mut enc = make_ack("c", "a", "b", 1).encode();
        enc.push(b'!');
        assert!(SipMessage::parse(&enc).is_err());
    }

    #[test]
    fn view_parses_like_owned() {
        let enc = make_invite("call-9@host", "alice@a", "bob@b", 7).encode();
        let owned = SipMessage::parse(&enc).unwrap();
        let view = SipView::parse(&enc).unwrap();
        assert_eq!(view.method(), Some(SipMethod::Invite));
        assert_eq!(view.call_id(), Some("call-9@host"));
        assert_eq!(view.cseq(), Some((7, SipMethod::Invite)));
        assert_eq!(view.body, owned.body.as_slice());
        assert_eq!(view.headers().len(), owned.headers.len());
        for ((vn, vv), (on, ov)) in view.headers().iter().zip(owned.headers.iter()) {
            assert_eq!((*vn, *vv), (on.as_str(), ov.as_str()));
        }
    }

    #[test]
    fn view_response_matches_owned_encoding() {
        let enc = make_invite("c3", "a", "b", 2).encode();
        let req_owned = SipMessage::parse(&enc).unwrap();
        let req_view = SipView::parse(&enc).unwrap();
        let owned_wire = SipMessage::response_to(&req_owned, 200, "OK")
            .with_header("Contact", "<sip:server>")
            .encode();
        let mut scratch = SipScratch::new();
        let view_wire = scratch.response_to(&req_view, 200, "OK", &[("Contact", "<sip:server>")]);
        assert_eq!(view_wire, owned_wire.as_slice());
    }

    #[test]
    fn view_rejects_header_overflow() {
        let mut m = SipMessage::request(SipMethod::Options, "sip:x");
        for i in 0..=MAX_VIEW_HEADERS {
            m.push_header("X-Pad", &format!("{i}"));
        }
        let enc = m.encode();
        // Owned parser is unbounded; the fixed-footprint view refuses.
        assert!(SipMessage::parse(&enc).is_ok());
        assert!(matches!(
            SipView::parse(&enc),
            Err(SipParseError::Malformed("too many headers"))
        ));
    }

    #[test]
    fn view_prefix_framing_matches() {
        let a = make_ack("c1", "a", "b", 1).encode();
        let bye = make_bye("c1", "a", "b", 2).encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&bye);
        let (v1, used1) = SipView::parse_prefix(&stream).unwrap();
        assert_eq!(v1.method(), Some(SipMethod::Ack));
        assert_eq!(used1, a.len());
        let (v2, used2) = SipView::parse_prefix(&stream[used1..]).unwrap();
        assert_eq!(v2.method(), Some(SipMethod::Bye));
        assert_eq!(used1 + used2, stream.len());
        let err = SipView::parse_prefix(&a[..a.len() - 1]).unwrap_err();
        assert!(SipMessage::is_incomplete(&err));
    }

    #[test]
    fn scratch_memacct_settles_after_warmup() {
        use iwarp_common::memacct::MemRegistry;
        let reg = MemRegistry::new();
        let mut scratch = SipScratch::with_mem(&reg);
        let enc = make_invite("warm", "a", "b", 1).encode();
        let req = SipView::parse(&enc).unwrap();
        let _ = scratch.response_to(&req, 200, "OK", &[]);
        let warm = reg.current("sip_codec_scratch");
        assert!(warm > 0);
        // Steady state: a thousand further transactions leave the
        // retained footprint exactly where warmup put it.
        for _ in 0..1000 {
            let _ = scratch.response_to(&req, 200, "OK", &[]);
        }
        assert_eq!(reg.current("sip_codec_scratch"), warm);
    }

    #[test]
    fn methods_roundtrip() {
        for m in [
            SipMethod::Invite,
            SipMethod::Ack,
            SipMethod::Bye,
            SipMethod::Options,
            SipMethod::Register,
        ] {
            assert_eq!(SipMethod::parse(m.as_str()), Some(m));
        }
        assert_eq!(SipMethod::parse("SUBSCRIBE"), None);
    }
}
