//! SIP message codec: the RFC 3261 text grammar subset that SIPp's
//! SipStone scenario exercises (INVITE / ACK / BYE transactions with the
//! core headers).

use std::fmt;

/// SIP request methods used by the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SipMethod {
    /// Session setup.
    Invite,
    /// Three-way-handshake completion for INVITE.
    Ack,
    /// Session teardown.
    Bye,
    /// Keepalive / capability query.
    Options,
    /// Registration.
    Register,
}

impl SipMethod {
    /// Canonical token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SipMethod::Invite => "INVITE",
            SipMethod::Ack => "ACK",
            SipMethod::Bye => "BYE",
            SipMethod::Options => "OPTIONS",
            SipMethod::Register => "REGISTER",
        }
    }

    /// Parses a method token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "INVITE" => SipMethod::Invite,
            "ACK" => SipMethod::Ack,
            "BYE" => SipMethod::Bye,
            "OPTIONS" => SipMethod::Options,
            "REGISTER" => SipMethod::Register,
            _ => return None,
        })
    }
}

/// First line of a SIP message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StartLine {
    /// `METHOD uri SIP/2.0`
    Request {
        /// Request method.
        method: SipMethod,
        /// Request URI.
        uri: String,
    },
    /// `SIP/2.0 code reason`
    Status {
        /// Response code (e.g. 200).
        code: u16,
        /// Reason phrase (e.g. "OK").
        reason: String,
    },
}

/// Codec errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SipParseError {
    /// Message is not valid UTF-8 / too short / missing CRLFCRLF.
    Malformed(&'static str),
}

impl fmt::Display for SipParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipParseError::Malformed(what) => write!(f, "malformed SIP message: {what}"),
        }
    }
}

impl std::error::Error for SipParseError {}

/// A SIP message: start line, ordered headers, optional body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SipMessage {
    /// Request or status line.
    pub start: StartLine,
    /// Header fields in order (names case-preserved; lookup is
    /// case-insensitive).
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl SipMessage {
    /// Creates a request with no headers.
    #[must_use]
    pub fn request(method: SipMethod, uri: &str) -> Self {
        Self {
            start: StartLine::Request {
                method,
                uri: uri.to_owned(),
            },
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Creates a response with no headers.
    #[must_use]
    pub fn response(code: u16, reason: &str) -> Self {
        Self {
            start: StartLine::Status {
                code,
                reason: reason.to_owned(),
            },
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Builds the standard response to `req`: status line plus the
    /// dialog-identifying headers (Via, From, To, Call-ID, CSeq) copied
    /// over, as RFC 3261 §8.2.6 requires.
    #[must_use]
    pub fn response_to(req: &SipMessage, code: u16, reason: &str) -> Self {
        let mut resp = Self::response(code, reason);
        for name in ["Via", "From", "To", "Call-ID", "CSeq"] {
            if let Some(v) = req.header(name) {
                resp.push_header(name, v);
            }
        }
        resp
    }

    /// Appends a header.
    pub fn push_header(&mut self, name: &str, value: &str) {
        self.headers.push((name.to_owned(), value.to_owned()));
    }

    /// Builder-style [`push_header`](Self::push_header).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.push_header(name, value);
        self
    }

    /// First value of `name` (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request method, if this is a request.
    #[must_use]
    pub fn method(&self) -> Option<SipMethod> {
        match &self.start {
            StartLine::Request { method, .. } => Some(*method),
            StartLine::Status { .. } => None,
        }
    }

    /// The status code, if this is a response.
    #[must_use]
    pub fn status(&self) -> Option<u16> {
        match &self.start {
            StartLine::Status { code, .. } => Some(*code),
            StartLine::Request { .. } => None,
        }
    }

    /// The Call-ID header.
    #[must_use]
    pub fn call_id(&self) -> Option<&str> {
        self.header("Call-ID")
    }

    /// Parses `CSeq: <seq> <METHOD>`.
    #[must_use]
    pub fn cseq(&self) -> Option<(u32, SipMethod)> {
        let v = self.header("CSeq")?;
        let mut parts = v.split_whitespace();
        let seq = parts.next()?.parse().ok()?;
        let method = SipMethod::parse(parts.next()?)?;
        Some((seq, method))
    }

    /// Serializes to wire bytes (Content-Length appended automatically).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        match &self.start {
            StartLine::Request { method, uri } => {
                out.extend_from_slice(method.as_str().as_bytes());
                out.push(b' ');
                out.extend_from_slice(uri.as_bytes());
                out.extend_from_slice(b" SIP/2.0\r\n");
            }
            StartLine::Status { code, reason } => {
                out.extend_from_slice(format!("SIP/2.0 {code} {reason}\r\n").as_bytes());
            }
        }
        for (n, v) in &self.headers {
            if n.eq_ignore_ascii_case("Content-Length") {
                continue; // always recomputed
            }
            out.extend_from_slice(n.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses one complete message from `raw`.
    pub fn parse(raw: &[u8]) -> Result<Self, SipParseError> {
        let (msg, used) = Self::parse_prefix(raw)?;
        if used != raw.len() {
            return Err(SipParseError::Malformed("trailing bytes"));
        }
        Ok(msg)
    }

    /// Parses one message from the front of `raw`, returning it and the
    /// bytes consumed — the stream-transport framing entry point.
    /// Returns `Malformed("incomplete")` when more bytes are needed.
    pub fn parse_prefix(raw: &[u8]) -> Result<(Self, usize), SipParseError> {
        let head_end = find_crlfcrlf(raw).ok_or(SipParseError::Malformed("incomplete"))?;
        let head = std::str::from_utf8(&raw[..head_end])
            .map_err(|_| SipParseError::Malformed("not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let start_line = lines.next().ok_or(SipParseError::Malformed("empty"))?;
        let start = parse_start_line(start_line)?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(SipParseError::Malformed("header without colon"))?;
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("Content-Length") {
                content_length = value
                    .parse()
                    .map_err(|_| SipParseError::Malformed("bad Content-Length"))?;
            }
            headers.push((name.to_owned(), value.to_owned()));
        }
        let body_start = head_end + 4;
        let total = body_start + content_length;
        if raw.len() < total {
            return Err(SipParseError::Malformed("incomplete"));
        }
        Ok((
            Self {
                start,
                headers,
                body: raw[body_start..total].to_vec(),
            },
            total,
        ))
    }

    /// True when `parse_prefix` failed only because more bytes are needed.
    #[must_use]
    pub fn is_incomplete(err: &SipParseError) -> bool {
        matches!(err, SipParseError::Malformed("incomplete"))
    }
}

fn find_crlfcrlf(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_start_line(line: &str) -> Result<StartLine, SipParseError> {
    if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
        let (code, reason) = rest
            .split_once(' ')
            .ok_or(SipParseError::Malformed("bad status line"))?;
        let code = code
            .parse()
            .map_err(|_| SipParseError::Malformed("bad status code"))?;
        return Ok(StartLine::Status {
            code,
            reason: reason.to_owned(),
        });
    }
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(SipMethod::parse)
        .ok_or(SipParseError::Malformed("bad method"))?;
    let uri = parts
        .next()
        .ok_or(SipParseError::Malformed("missing uri"))?;
    if parts.next() != Some("SIP/2.0") {
        return Err(SipParseError::Malformed("bad version"));
    }
    Ok(StartLine::Request {
        method,
        uri: uri.to_owned(),
    })
}

/// Builds a SipStone-style INVITE.
#[must_use]
pub fn make_invite(call_id: &str, from: &str, to: &str, cseq: u32) -> SipMessage {
    let mut m = SipMessage::request(SipMethod::Invite, &format!("sip:{to}"))
        .with_header("Via", "SIP/2.0/UDP client.invalid;branch=z9hG4bK776asdhds")
        .with_header("Max-Forwards", "70")
        .with_header("From", &format!("<sip:{from}>;tag=1928301774"))
        .with_header("To", &format!("<sip:{to}>"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", &format!("{cseq} INVITE"))
        .with_header("Contact", &format!("<sip:{from}>"))
        .with_header("Content-Type", "application/sdp");
    m.body = "v=0\r\no=- 0 0 IN IP4 0.0.0.0\r\ns=call\r\nc=IN IP4 0.0.0.0\r\nt=0 0\r\nm=audio 49170 RTP/AVP 0\r\n".to_string().into_bytes();
    m
}

/// Builds the ACK completing `call_id`'s INVITE transaction.
#[must_use]
pub fn make_ack(call_id: &str, from: &str, to: &str, cseq: u32) -> SipMessage {
    SipMessage::request(SipMethod::Ack, &format!("sip:{to}"))
        .with_header("Via", "SIP/2.0/UDP client.invalid;branch=z9hG4bK776asdhds")
        .with_header("From", &format!("<sip:{from}>;tag=1928301774"))
        .with_header("To", &format!("<sip:{to}>;tag=a6c85cf"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", &format!("{cseq} ACK"))
}

/// Builds the BYE tearing down `call_id`.
#[must_use]
pub fn make_bye(call_id: &str, from: &str, to: &str, cseq: u32) -> SipMessage {
    SipMessage::request(SipMethod::Bye, &format!("sip:{to}"))
        .with_header("Via", "SIP/2.0/UDP client.invalid;branch=z9hG4bK776asdhdt")
        .with_header("From", &format!("<sip:{from}>;tag=1928301774"))
        .with_header("To", &format!("<sip:{to}>;tag=a6c85cf"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", &format!("{cseq} BYE"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invite_roundtrip() {
        let m = make_invite("call-1@host", "alice@a.example", "bob@b.example", 1);
        let enc = m.encode();
        let parsed = SipMessage::parse(&enc).unwrap();
        assert_eq!(parsed.method(), Some(SipMethod::Invite));
        assert_eq!(parsed.call_id(), Some("call-1@host"));
        assert_eq!(parsed.cseq(), Some((1, SipMethod::Invite)));
        assert!(!parsed.body.is_empty());
    }

    #[test]
    fn response_roundtrip() {
        let req = make_invite("c2", "a", "b", 3);
        let resp = SipMessage::response_to(&req, 200, "OK");
        let parsed = SipMessage::parse(&resp.encode()).unwrap();
        assert_eq!(parsed.status(), Some(200));
        assert_eq!(parsed.call_id(), Some("c2"));
        assert_eq!(parsed.cseq(), Some((3, SipMethod::Invite)));
        assert!(parsed.header("Via").is_some());
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let m = SipMessage::request(SipMethod::Options, "sip:x").with_header("X-Test", "yes");
        assert_eq!(m.header("x-test"), Some("yes"));
        assert_eq!(m.header("X-TEST"), Some("yes"));
        assert_eq!(m.header("missing"), None);
    }

    #[test]
    fn content_length_recomputed() {
        let mut m = SipMessage::request(SipMethod::Invite, "sip:x");
        m.push_header("Content-Length", "999"); // lies
        m.body = b"12345".to_vec();
        let enc = String::from_utf8(m.encode()).unwrap();
        assert!(enc.contains("Content-Length: 5\r\n"));
        assert!(!enc.contains("999"));
    }

    #[test]
    fn parse_prefix_handles_pipelined_messages() {
        let a = make_ack("c1", "a", "b", 1).encode();
        let bye = make_bye("c1", "a", "b", 2).encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&bye);
        let (m1, used1) = SipMessage::parse_prefix(&stream).unwrap();
        assert_eq!(m1.method(), Some(SipMethod::Ack));
        assert_eq!(used1, a.len());
        let (m2, used2) = SipMessage::parse_prefix(&stream[used1..]).unwrap();
        assert_eq!(m2.method(), Some(SipMethod::Bye));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn incomplete_is_detected() {
        let enc = make_invite("c", "a", "b", 1).encode();
        for cut in [0, 10, enc.len() - 1] {
            let err = SipMessage::parse_prefix(&enc[..cut]).unwrap_err();
            assert!(SipMessage::is_incomplete(&err), "cut={cut}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(SipMessage::parse(b"NOTSIP x y\r\n\r\n").is_err());
        assert!(SipMessage::parse(b"INVITE sip:x HTTP/1.1\r\n\r\n").is_err());
        assert!(SipMessage::parse(b"SIP/2.0 abc OK\r\n\r\n").is_err());
        // Valid but with trailing junk.
        let mut enc = make_ack("c", "a", "b", 1).encode();
        enc.push(b'!');
        assert!(SipMessage::parse(&enc).is_err());
    }

    #[test]
    fn methods_roundtrip() {
        for m in [
            SipMethod::Invite,
            SipMethod::Ack,
            SipMethod::Bye,
            SipMethod::Options,
            SipMethod::Register,
        ] {
            assert_eq!(SipMethod::parse(m.as_str()), Some(m));
        }
        assert_eq!(SipMethod::parse("SUBSCRIBE"), None);
    }
}
