//! Lock-free bounded rings for the per-link fabric datapath.
//!
//! The vendored shims provide no ring primitive — the crossbeam shim's
//! channel is a `Mutex<VecDeque>` — so the per-link fabric builds its own:
//!
//! * [`spsc`] — a Lamport single-producer/single-consumer ring with a
//!   batched producer side ([`SpscProducer::push_batch`] publishes a whole
//!   batch with one release store). The right shape for strictly paired
//!   stages; misuse is prevented by construction (the producer and
//!   consumer are separate, non-clonable handles).
//! * [`Mpsc`] — a Vyukov-style bounded queue with a per-slot sequence
//!   word. This is the fan-in variant the fabric's delivery rings use: a
//!   bound link can legally be sent to by *any* number of concurrent
//!   endpoints, so the general case is multi-producer. (The algorithm is
//!   in fact MPMC-safe on both sides, which keeps any future misuse a
//!   performance bug rather than undefined behaviour.)
//! * [`RingChannel`] — the delivery channel built on [`Mpsc`]: a bounded
//!   lock-free fast path plus an ordered overflow spill (so the channel
//!   as a whole keeps the unbounded UDP-queue semantics the stack's
//!   conduits rely on) and a condvar waiter for blocking consumers.
//!   Producers never block; a full ring diverts to the spill queue and is
//!   counted (`fabric.ring_full_retries`).
//!
//! Ordering contract: FIFO per producer everywhere. [`RingChannel`]
//! additionally preserves the order of any two pushes that are themselves
//! ordered by a happens-before edge (the spill flag is flipped under the
//! overflow mutex and re-checked there, so a push that *completed* before
//! another began is never overtaken); only genuinely concurrent pushes —
//! which have no order to preserve — may land in either order.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Pads a hot atomic to its own cache line so producer and consumer
/// cursors don't false-share.
#[repr(align(64))]
struct Pad<T>(T);

fn cap_pow2(capacity: usize) -> usize {
    capacity.max(2).next_power_of_two()
}

// ---------------------------------------------------------------------------
// SPSC: Lamport ring, split handles, batched producer.
// ---------------------------------------------------------------------------

struct SpscShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next index the consumer will pop (written by the consumer only).
    head: Pad<AtomicUsize>,
    /// Next index the producer will fill (written by the producer only).
    tail: Pad<AtomicUsize>,
}

// The ring is shared by exactly one producer and one consumer handle;
// slot access is serialized by the head/tail protocol.
unsafe impl<T: Send> Sync for SpscShared<T> {}
unsafe impl<T: Send> Send for SpscShared<T> {}

impl<T> Drop for SpscShared<T> {
    fn drop(&mut self) {
        // Exclusive access here: drop everything still queued.
        let mut head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        while head != tail {
            unsafe {
                (*self.buf[head & self.mask].get()).assume_init_drop();
            }
            head = head.wrapping_add(1);
        }
    }
}

/// Creates a bounded SPSC ring of at least `capacity` slots (rounded up
/// to a power of two, minimum 2) and returns its two endpoint handles.
#[must_use]
pub fn spsc<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = cap_pow2(capacity);
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(SpscShared {
        buf,
        mask: cap - 1,
        head: Pad(AtomicUsize::new(0)),
        tail: Pad(AtomicUsize::new(0)),
    });
    (
        SpscProducer {
            shared: Arc::clone(&shared),
            cached_head: 0,
        },
        SpscConsumer {
            shared,
            cached_tail: 0,
        },
    )
}

/// The producing end of an [`spsc`] ring. Not clonable: exactly one
/// producer exists, which is what makes the wait-free stores sound.
pub struct SpscProducer<T> {
    shared: Arc<SpscShared<T>>,
    /// Consumer position as last observed — refreshed only when the ring
    /// looks full, so the common push touches one shared atomic.
    cached_head: usize,
}

impl<T> SpscProducer<T> {
    /// Number of slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Pushes one value; returns it back if the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) > self.shared.mask {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) > self.shared.mask {
                return Err(v);
            }
        }
        unsafe {
            (*self.shared.buf[tail & self.shared.mask].get()).write(v);
        }
        self.shared
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Batched producer side: drains values from `batch` into the ring
    /// until it is full, publishing them all with a *single* release
    /// store. Returns how many were pushed; the unpushed tail stays in
    /// `batch` (front-aligned) for the caller to retry or spill.
    pub fn push_batch(&mut self, batch: &mut VecDeque<T>) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        self.cached_head = self.shared.head.0.load(Ordering::Acquire);
        let free = (self.shared.mask + 1) - tail.wrapping_sub(self.cached_head);
        let n = free.min(batch.len());
        for i in 0..n {
            let v = batch.pop_front().expect("len checked");
            unsafe {
                (*self.shared.buf[tail.wrapping_add(i) & self.shared.mask].get()).write(v);
            }
        }
        if n > 0 {
            self.shared
                .tail
                .0
                .store(tail.wrapping_add(n), Ordering::Release);
        }
        n
    }

    /// Queued items (approximate from the producer side).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let head = self.shared.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The consuming end of an [`spsc`] ring.
pub struct SpscConsumer<T> {
    shared: Arc<SpscShared<T>>,
    /// Producer position as last observed — refreshed only when the ring
    /// looks empty.
    cached_tail: usize,
}

impl<T> SpscConsumer<T> {
    /// Pops the oldest value, if any.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        let v = unsafe { (*self.shared.buf[head & self.shared.mask].get()).assume_init_read() };
        self.shared
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Queued items (approximate from the consumer side).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        let head = self.shared.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// MPSC (Vyukov bounded queue): the fan-in delivery ring.
// ---------------------------------------------------------------------------

struct MpscSlot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded multi-producer queue with per-slot sequence words (Vyukov's
/// bounded MPMC algorithm). Used single-consumer by the fabric — each
/// bound link's delivery ring fans in from every transmitting endpoint —
/// but safe with concurrent consumers too.
pub struct Mpsc<T> {
    buf: Box<[MpscSlot<T>]>,
    mask: usize,
    enqueue_pos: Pad<AtomicUsize>,
    dequeue_pos: Pad<AtomicUsize>,
}

unsafe impl<T: Send> Sync for Mpsc<T> {}
unsafe impl<T: Send> Send for Mpsc<T> {}

impl<T> Mpsc<T> {
    /// Creates a queue of at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = cap_pow2(capacity);
        let buf: Box<[MpscSlot<T>]> = (0..cap)
            .map(|i| MpscSlot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            buf,
            mask: cap - 1,
            enqueue_pos: Pad(AtomicUsize::new(0)),
            dequeue_pos: Pad(AtomicUsize::new(0)),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Pushes one value; returns it back if the queue is full.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.val.get()).write(v) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return Err(v); // full: the slot is a full lap behind
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest value, if any.
    pub fn try_pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(v);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Queued items (racy estimate, exact when quiescent).
    #[must_use]
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.0.load(Ordering::Acquire);
        let deq = self.dequeue_pos.0.load(Ordering::Acquire);
        enq.wrapping_sub(deq).min(self.mask + 1)
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let deq = self.dequeue_pos.0.load(Ordering::Acquire);
        let enq = self.enqueue_pos.0.load(Ordering::Acquire);
        enq == deq
    }
}

impl<T> Drop for Mpsc<T> {
    fn drop(&mut self) {
        // Exclusive access at drop: release everything still queued.
        while self.try_pop().is_some() {}
    }
}

// ---------------------------------------------------------------------------
// RingChannel: delivery channel = MPSC ring + ordered spill + waiter.
// ---------------------------------------------------------------------------

/// Where a [`RingChannel::push`] landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Fast path: straight into the lock-free ring.
    Ring,
    /// The ring was full; the value took the ordered overflow spill.
    Spilled,
}

/// Error returned when pushing to a closed channel; carries the value
/// back so the caller can account for it.
#[derive(Debug)]
pub struct ChannelClosed<T>(pub T);

/// Why a blocking pop returned empty-handed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The channel is closed and drained.
    Closed,
}

/// The per-link delivery channel: a bounded lock-free [`Mpsc`] fast path
/// with an ordered overflow spill and a condvar waiter.
///
/// Producers never block: when the ring is full the value is appended to
/// a mutex-guarded spill queue and the channel enters *spill mode*. The
/// consumer drains ring-then-spill under that same mutex while the mode
/// is active (ring contents are always older than the spill, see below)
/// and drops back to the lock-free path once the spill is empty. The
/// spill flag is set and re-checked under the overflow mutex, so any two
/// pushes ordered by happens-before retain their order; the fast path is
/// only taken when the flag is observably clear.
pub struct RingChannel<T> {
    ring: Mpsc<T>,
    /// True while the overflow spill may be non-empty. Invariant: a
    /// non-empty spill implies the flag is set (both are updated under
    /// the overflow mutex).
    spill: AtomicBool,
    overflow: Mutex<VecDeque<T>>,
    ovf_len: AtomicUsize,
    closed: AtomicBool,
    /// Consumers currently parked (or about to park) on `cv`.
    sleepers: AtomicUsize,
    gate: Mutex<()>,
    cv: Condvar,
}

impl<T> RingChannel<T> {
    /// Creates a channel whose lock-free ring holds at least `capacity`
    /// values.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mpsc::new(capacity),
            spill: AtomicBool::new(false),
            overflow: Mutex::new(VecDeque::new()),
            ovf_len: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Ring (fast-path) capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Pushes a value, never blocking. Returns where it landed, or the
    /// value back if the channel is closed.
    pub fn push(&self, v: T) -> Result<PushOutcome, ChannelClosed<T>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ChannelClosed(v));
        }
        let mut v = v;
        let outcome = 'push: {
            if !self.spill.load(Ordering::Acquire) {
                match self.ring.try_push(v) {
                    Ok(()) => break 'push PushOutcome::Ring,
                    Err(back) => v = back,
                }
            }
            let mut ovf = self.overflow.lock();
            if !self.spill.load(Ordering::Relaxed) {
                // The consumer may have drained the ring since the failed
                // fast-path attempt (or cleared a stale flag): retry once
                // under the mutex before committing to spill mode.
                match self.ring.try_push(v) {
                    Ok(()) => break 'push PushOutcome::Ring,
                    Err(back) => {
                        v = back;
                        self.spill.store(true, Ordering::Release);
                    }
                }
            }
            ovf.push_back(v);
            self.ovf_len.store(ovf.len(), Ordering::Release);
            PushOutcome::Spilled
        };
        self.wake();
        Ok(outcome)
    }

    /// Pushes a whole batch with at most **one** overflow-lock round,
    /// preserving batch order. The burst datapath's amortization lever:
    /// under a sustained backlog (spill mode) [`push`](Self::push) pays
    /// the overflow mutex per value, this pays it per batch.
    ///
    /// Returns `(ring, spilled)` counts. When the channel is closed the
    /// batch is left untouched and `None` is returned so the caller can
    /// account for every value.
    pub fn push_batch(&self, batch: &mut VecDeque<T>) -> Option<(usize, usize)> {
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        let total = batch.len();
        if total == 0 {
            return Some((0, 0));
        }
        let mut ringed = 0usize;
        // Lock-free prefix: ring values while the spill flag stays clear.
        // The flag is re-read per value — once any value of this batch
        // (or a concurrent producer's) spills, the rest must follow it
        // into the overflow to keep ring contents older than the spill.
        while !self.spill.load(Ordering::Acquire) {
            let Some(v) = batch.pop_front() else { break };
            match self.ring.try_push(v) {
                Ok(()) => ringed += 1,
                Err(back) => {
                    batch.push_front(back);
                    break;
                }
            }
        }
        if !batch.is_empty() {
            let mut ovf = self.overflow.lock();
            if !self.spill.load(Ordering::Relaxed) {
                // The consumer may have drained the ring since the failed
                // fast-path attempt: retry under the mutex before
                // committing the remainder to spill mode.
                while let Some(v) = batch.pop_front() {
                    match self.ring.try_push(v) {
                        Ok(()) => ringed += 1,
                        Err(back) => {
                            batch.push_front(back);
                            self.spill.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
            }
            if !batch.is_empty() {
                ovf.extend(batch.drain(..));
                self.ovf_len.store(ovf.len(), Ordering::Release);
            }
        }
        self.wake();
        Some((ringed, total - ringed))
    }

    fn wake(&self) {
        // Dekker pairing with `pop_wait`: the value is published above,
        // the sleeper count was bumped (SeqCst RMW) before its final
        // emptiness re-check.
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.gate.lock();
            self.cv.notify_all();
        }
    }

    /// Pops the oldest value without blocking.
    pub fn try_pop(&self) -> Option<T> {
        if !self.spill.load(Ordering::Acquire) {
            return self.ring.try_pop();
        }
        // Spill mode: serialize with producers' spill appends. Ring
        // contents are older than every spilled value (pushes stop using
        // the ring the moment the flag is set), so drain ring first.
        let mut ovf = self.overflow.lock();
        if let Some(v) = self.ring.try_pop() {
            return Some(v);
        }
        match ovf.pop_front() {
            Some(v) => {
                self.ovf_len.store(ovf.len(), Ordering::Release);
                if ovf.is_empty() {
                    self.spill.store(false, Ordering::Release);
                }
                Some(v)
            }
            None => {
                // Stale flag (spill already drained): clear and retry the
                // ring once.
                self.spill.store(false, Ordering::Release);
                self.ring.try_pop()
            }
        }
    }

    /// Pops up to `max` values into `out` with at most **one**
    /// overflow-lock round, preserving FIFO order. The consumer-side twin
    /// of [`push_batch`](Self::push_batch): under a sustained backlog
    /// [`try_pop`](Self::try_pop) pays the overflow mutex per value, this
    /// pays it per batch. Returns how many values were appended.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max && !self.spill.load(Ordering::Acquire) {
            match self.ring.try_pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => return n,
            }
        }
        if n < max && self.spill.load(Ordering::Acquire) {
            let mut ovf = self.overflow.lock();
            // Ring first: its contents are older than every spilled value.
            while n < max {
                match self.ring.try_pop() {
                    Some(v) => {
                        out.push(v);
                        n += 1;
                    }
                    None => break,
                }
            }
            while n < max {
                match ovf.pop_front() {
                    Some(v) => {
                        out.push(v);
                        n += 1;
                    }
                    None => break,
                }
            }
            self.ovf_len.store(ovf.len(), Ordering::Release);
            if ovf.is_empty() {
                self.spill.store(false, Ordering::Release);
            }
        }
        n
    }

    /// Pops the oldest value, parking up to `timeout` (`None` = forever)
    /// when the channel is empty.
    pub fn pop_wait(&self, timeout: Option<Duration>) -> Result<T, PopError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(v) = self.try_pop() {
                return Ok(v);
            }
            if self.closed.load(Ordering::Acquire) {
                // Drain-after-close: one more look before reporting EOF.
                return self.try_pop().ok_or(PopError::Closed);
            }
            let mut g = self.gate.lock();
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            // Re-check after registering (Dekker pairing with `wake`).
            if !self.is_empty() || self.closed.load(Ordering::Acquire) {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                drop(g);
                continue;
            }
            let timed_out = match deadline {
                None => {
                    self.cv.wait(&mut g);
                    false
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.sleepers.fetch_sub(1, Ordering::SeqCst);
                        drop(g);
                        return Err(PopError::Timeout);
                    }
                    self.cv.wait_for(&mut g, d - now).timed_out()
                }
            };
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            drop(g);
            if timed_out && self.is_empty() {
                return Err(PopError::Timeout);
            }
        }
    }

    /// Parks until the channel is non-empty, closed, or `wait` elapses.
    /// Used by consumers that must *not* pop yet (the latency staging
    /// path peeks at due times before committing).
    pub fn wait_nonempty(&self, wait: Duration) {
        let deadline = Instant::now() + wait;
        loop {
            if !self.is_empty() || self.closed.load(Ordering::Acquire) {
                return;
            }
            let mut g = self.gate.lock();
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if !self.is_empty() || self.closed.load(Ordering::Acquire) {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            let timed_out = self.cv.wait_for(&mut g, deadline - now).timed_out();
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            drop(g);
            if timed_out {
                return;
            }
        }
    }

    /// Queued values across ring and spill (racy estimate, exact when
    /// quiescent).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len() + self.ovf_len.load(Ordering::Acquire)
    }

    /// True when both the ring and the spill are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty() && self.ovf_len.load(Ordering::Acquire) == 0
    }

    /// Marks the channel closed (new pushes fail; queued values remain
    /// poppable) and wakes every parked consumer.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _g = self.gate.lock();
        self.cv.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_fifo_and_full() {
        let (mut p, mut c) = spsc::<u32>(4);
        assert_eq!(p.capacity(), 4);
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert_eq!(p.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn spsc_push_batch_partial() {
        let (mut p, mut c) = spsc::<u32>(4);
        let mut batch: VecDeque<u32> = (0..6).collect();
        assert_eq!(p.push_batch(&mut batch), 4);
        assert_eq!(batch.len(), 2);
        assert_eq!(c.pop(), Some(0));
        assert_eq!(p.push_batch(&mut batch), 1);
        let got: Vec<u32> = std::iter::from_fn(|| c.pop()).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn mpsc_fifo_and_full() {
        let q = Mpsc::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(9), Err(9));
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn ring_channel_spills_and_preserves_order() {
        let ch = RingChannel::new(4);
        let mut spilled = 0;
        for i in 0..20u32 {
            if ch.push(i).unwrap() == PushOutcome::Spilled {
                spilled += 1;
            }
        }
        assert!(spilled > 0, "4-slot ring must spill under 20 pushes");
        assert_eq!(ch.len(), 20);
        for i in 0..20u32 {
            assert_eq!(ch.try_pop(), Some(i), "spill broke FIFO");
        }
        assert!(ch.is_empty());
        // Spill mode must have cleared: the next push takes the ring.
        assert_eq!(ch.push(1).unwrap(), PushOutcome::Ring);
    }

    #[test]
    fn ring_channel_close_semantics() {
        let ch = RingChannel::new(4);
        ch.push(7u32).unwrap();
        ch.close();
        assert!(matches!(ch.push(8), Err(ChannelClosed(8))));
        assert_eq!(ch.pop_wait(None), Ok(7));
        assert_eq!(ch.pop_wait(None), Err(PopError::Closed));
    }

    #[test]
    fn pop_wait_times_out_then_wakes() {
        let ch = Arc::new(RingChannel::new(4));
        assert_eq!(
            ch.pop_wait(Some(Duration::from_millis(5))),
            Err(PopError::Timeout)
        );
        let ch2 = Arc::clone(&ch);
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                ch2.push(42u32).unwrap();
            });
            assert_eq!(ch.pop_wait(Some(Duration::from_secs(5))), Ok(42));
        });
    }
}
