//! Verbs-level micro-benchmarks: latency and bandwidth for the four
//! methods of the paper's Figs. 5–8, plus RD mode and the UD RDMA Read
//! extension.
//!
//! Latency is half the ping-pong round-trip (the paper's convention);
//! bandwidth is unidirectional with back-to-back messages ("one side is
//! sending back-to-back messages of the same size to the other side",
//! §VI.A.1), measured at the receiver so that loss sweeps report delivered
//! goodput.

use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use simnet::{Fabric, LossModel, NodeId, WireConfig};

use iwarp::wr::RecvWr;
use iwarp::{Access, Cq, CqeOpcode, CqeStatus, Device, QpConfig};
use iwarp_common::stats::Summary;
use iwarp_telemetry::Snapshot;

// Each measurement builds (and drops) its own fabric, so the per-fabric
// telemetry would vanish with it. The accumulator keeps a running merge
// that `figures --telemetry` drains after each figure.
static TEL_ACC: Mutex<Option<Snapshot>> = Mutex::new(None);

/// Folds `snap` into the process-wide telemetry accumulator (summing
/// counters shared across fabrics).
pub fn absorb_snapshot(snap: Snapshot) {
    let mut acc = TEL_ACC.lock().unwrap();
    match acc.as_mut() {
        Some(existing) => existing.merge(&snap),
        None => *acc = Some(snap),
    }
}

/// Takes the accumulated telemetry, leaving the accumulator empty.
pub fn drain_snapshot() -> Option<Snapshot> {
    TEL_ACC.lock().unwrap().take()
}

/// Which verbs data path to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Two-sided send/recv over unreliable datagrams.
    UdSendRecv,
    /// One-sided RDMA Write-Record over unreliable datagrams.
    UdWriteRecord,
    /// Two-sided send/recv over the reliable connection (baseline).
    RcSendRecv,
    /// One-sided RDMA Write over the reliable connection, with the
    /// send/recv notification the standard requires (paper Fig. 3 top).
    RcRdmaWrite,
    /// Two-sided send/recv over reliable datagrams (RD mode).
    RdSendRecv,
    /// RDMA Read over unreliable datagrams (paper future-work extension).
    UdRead,
}

impl Method {
    /// All methods in the paper's Fig. 5/6 order.
    pub const FIG56: [Method; 4] = [
        Method::UdSendRecv,
        Method::UdWriteRecord,
        Method::RcSendRecv,
        Method::RcRdmaWrite,
    ];

    /// Display label matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Method::UdSendRecv => "UD Send/Recv",
            Method::UdWriteRecord => "UD RDMA Write-Record",
            Method::RcSendRecv => "RC Send/Recv",
            Method::RcRdmaWrite => "RC RDMA Write",
            Method::RdSendRecv => "RD Send/Recv",
            Method::UdRead => "UD RDMA Read",
        }
    }
}

/// Which wire model to run over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FabricKind {
    /// Unpaced, zero-latency wire: isolates stack processing costs.
    Fast,
    /// The paper's testbed model: 10 Gbit/s, 1500 B MTU, 5 µs latency.
    TenGbe,
    /// 10GbE with Bernoulli packet loss at the given rate.
    TenGbeLoss(f64),
    /// Unpaced wire with Bernoulli loss (fast loss sweeps).
    FastLoss(f64),
}

impl FabricKind {
    /// Materializes the wire configuration (fixed seed per kind).
    #[must_use]
    pub fn config(self) -> WireConfig {
        match self {
            FabricKind::Fast => WireConfig::default(),
            FabricKind::TenGbe => WireConfig::ten_gbe(),
            FabricKind::TenGbeLoss(rate) => WireConfig {
                loss: LossModel::bernoulli(rate),
                seed: 0x5EED + (rate * 1e6) as u64,
                ..WireConfig::ten_gbe()
            },
            FabricKind::FastLoss(rate) => WireConfig {
                loss: LossModel::bernoulli(rate),
                seed: 0x5EED + (rate * 1e6) as u64,
                ..WireConfig::default()
            },
        }
    }
}

const POLL: Duration = Duration::from_secs(10);

fn qp_cfg() -> QpConfig {
    QpConfig {
        recv_ttl: Duration::from_millis(100),
        record_ttl: Duration::from_millis(100),
        read_ttl: Duration::from_millis(200),
        ..QpConfig::default()
    }
}

fn payload(size: usize) -> Bytes {
    Bytes::from((0..size).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

/// Measures one-way latency (µs) for `method` at `size` bytes:
/// `warmup` unmeasured rounds, then `iters` measured ping-pongs.
pub fn latency(kind: FabricKind, method: Method, size: usize, warmup: usize, iters: usize) -> Summary {
    let fabric = Fabric::new(kind.config());
    let dev_a = Device::new(&fabric, NodeId(0));
    let dev_b = Device::new(&fabric, NodeId(1));
    let total = warmup + iters;
    let summary = match method {
        Method::UdSendRecv => latency_dgram(&dev_a, &dev_b, size, warmup, iters, false, false),
        Method::RdSendRecv => latency_dgram(&dev_a, &dev_b, size, warmup, iters, false, true),
        Method::UdWriteRecord => latency_dgram(&dev_a, &dev_b, size, warmup, iters, true, false),
        Method::RcSendRecv => latency_rc_sendrecv(&dev_a, &dev_b, size, warmup, iters),
        Method::RcRdmaWrite => latency_rc_write(&dev_a, &dev_b, size, warmup, iters),
        Method::UdRead => latency_ud_read(&dev_a, &dev_b, size, warmup, iters, total),
    };
    absorb_snapshot(fabric.telemetry().snapshot());
    summary
}

fn latency_dgram(
    dev_a: &Device,
    dev_b: &Device,
    size: usize,
    warmup: usize,
    iters: usize,
    write_record: bool,
    rd: bool,
) -> Summary {
    let total = warmup + iters;
    let mk = |dev: &Device, scq: &Cq, rcq: &Cq| {
        if rd {
            dev.create_rd_qp(None, scq, rcq, qp_cfg()).expect("qp")
        } else {
            dev.create_ud_qp(None, scq, rcq, qp_cfg()).expect("qp")
        }
    };
    let (a_s, a_r) = (Cq::new(64), Cq::new(64));
    let (b_s, b_r) = (Cq::new(64), Cq::new(64));
    let qa = mk(dev_a, &a_s, &a_r);
    let qb = mk(dev_b, &b_s, &b_r);
    let a_dest = qa.dest();
    let b_dest = qb.dest();
    let a_sink = dev_a.register(size.max(1), Access::RemoteWrite);
    let b_sink = dev_b.register(size.max(1), Access::RemoteWrite);
    let data = payload(size);
    let (ready_tx, ready_rx) = mpsc::channel::<()>();

    std::thread::scope(|s| {
        // Echo server.
        let data_b = data.clone();
        let b_sink2 = b_sink.clone();
        s.spawn(move || {
            if !write_record {
                qb.post_recv(RecvWr::whole(0, &b_sink2)).expect("post");
                qb.post_recv(RecvWr::whole(1, &b_sink2)).expect("post");
            }
            ready_tx.send(()).expect("ready");
            for _ in 0..total {
                let cqe = qb.recv_cq().poll_timeout(POLL).expect("server poll");
                if write_record {
                    qb.post_write_record(0, data_b.clone(), a_dest, a_sink.stag(), 0)
                        .expect("echo");
                } else {
                    qb.post_recv(RecvWr::whole(cqe.wr_id, &b_sink2)).expect("repost");
                    qb.post_send(0, data_b.clone(), a_dest).expect("echo");
                }
                while qb.send_cq().poll().is_some() {}
            }
        });

        let client_sink = dev_a.register(size.max(1), Access::Local);
        if !write_record {
            qa.post_recv(RecvWr::whole(0, &client_sink)).expect("post");
            qa.post_recv(RecvWr::whole(1, &client_sink)).expect("post");
        }
        ready_rx.recv_timeout(POLL).expect("server ready");
        let mut out = Summary::new();
        for i in 0..total {
            let t0 = Instant::now();
            if write_record {
                qa.post_write_record(0, data.clone(), b_dest, b_sink.stag(), 0)
                    .expect("send");
            } else {
                qa.post_send(0, data.clone(), b_dest).expect("send");
            }
            let cqe = qa.recv_cq().poll_timeout(POLL).expect("client poll");
            let rtt = t0.elapsed();
            if !write_record {
                qa.post_recv(RecvWr::whole(cqe.wr_id, &client_sink)).expect("repost");
            }
            while qa.send_cq().poll().is_some() {}
            if i >= warmup {
                out.push(rtt.as_secs_f64() * 1e6 / 2.0);
            }
        }
        out
    })
}

fn latency_rc_sendrecv(
    dev_a: &Device,
    dev_b: &Device,
    size: usize,
    warmup: usize,
    iters: usize,
) -> Summary {
    let total = warmup + iters;
    let (a_s, a_r) = (Cq::new(64), Cq::new(64));
    let (b_s, b_r) = (Cq::new(64), Cq::new(64));
    let listener = dev_b.rc_listen(4900).expect("listen");
    std::thread::scope(|s| {
        let srv = s.spawn(move || {
            let qb = listener
                .accept(POLL, &b_s, &b_r, qp_cfg())
                .expect("accept");
            let sink = dev_b.register(size.max(1), Access::Local);
            let data = payload(size);
            qb.post_recv(RecvWr::whole(0, &sink)).expect("post");
            qb.post_recv(RecvWr::whole(1, &sink)).expect("post");
            for _ in 0..total {
                let cqe = qb.recv_cq().poll_timeout(POLL).expect("server poll");
                qb.post_recv(RecvWr::whole(cqe.wr_id, &sink)).expect("repost");
                qb.post_send(0, data.clone()).expect("echo");
                while qb.send_cq().poll().is_some() {}
            }
            qb
        });
        let qa = dev_a
            .rc_connect(simnet::Addr::new(1, 4900), &a_s, &a_r, qp_cfg())
            .expect("connect");
        let sink = dev_a.register(size.max(1), Access::Local);
        let data = payload(size);
        qa.post_recv(RecvWr::whole(0, &sink)).expect("post");
        qa.post_recv(RecvWr::whole(1, &sink)).expect("post");
        let mut out = Summary::new();
        for i in 0..total {
            let t0 = Instant::now();
            qa.post_send(0, data.clone()).expect("send");
            let cqe = qa.recv_cq().poll_timeout(POLL).expect("client poll");
            let rtt = t0.elapsed();
            qa.post_recv(RecvWr::whole(cqe.wr_id, &sink)).expect("repost");
            while qa.send_cq().poll().is_some() {}
            if i >= warmup {
                out.push(rtt.as_secs_f64() * 1e6 / 2.0);
            }
        }
        drop(srv.join().expect("server"));
        out
    })
}

fn latency_rc_write(
    dev_a: &Device,
    dev_b: &Device,
    size: usize,
    warmup: usize,
    iters: usize,
) -> Summary {
    let total = warmup + iters;
    let (a_s, a_r) = (Cq::new(64), Cq::new(64));
    let (b_s, b_r) = (Cq::new(64), Cq::new(64));
    let listener = dev_b.rc_listen(4901).expect("listen");
    // Both sides expose a remote-writable sink; STags travel via channel
    // (the application-level buffer advertisement).
    let (stag_tx, stag_rx) = mpsc::channel::<u32>();
    let a_sink = dev_a.register(size.max(1), Access::RemoteWrite);
    let a_stag = a_sink.stag();
    std::thread::scope(|s| {
        let srv = s.spawn(move || {
            let qb = listener
                .accept(POLL, &b_s, &b_r, qp_cfg())
                .expect("accept");
            let b_sink = dev_b.register(size.max(1), Access::RemoteWrite);
            stag_tx.send(b_sink.stag()).expect("stag");
            let notify_sink = dev_b.register(1, Access::Local);
            let data = payload(size);
            qb.post_recv(RecvWr::whole(0, &notify_sink)).expect("post");
            qb.post_recv(RecvWr::whole(1, &notify_sink)).expect("post");
            for _ in 0..total {
                // Wait for the notification that the write landed.
                let cqe = qb.recv_cq().poll_timeout(POLL).expect("server poll");
                qb.post_recv(RecvWr::whole(cqe.wr_id, &notify_sink)).expect("repost");
                // Echo: RDMA Write back + notify.
                qb.post_rdma_write(0, data.clone(), a_stag, 0).expect("write");
                qb.post_send(0, Bytes::from_static(b"!")).expect("notify");
                while qb.send_cq().poll().is_some() {}
            }
            qb
        });
        let qa = dev_a
            .rc_connect(simnet::Addr::new(1, 4901), &a_s, &a_r, qp_cfg())
            .expect("connect");
        let b_stag = stag_rx.recv_timeout(POLL).expect("stag");
        let notify_sink = dev_a.register(1, Access::Local);
        let data = payload(size);
        qa.post_recv(RecvWr::whole(0, &notify_sink)).expect("post");
        qa.post_recv(RecvWr::whole(1, &notify_sink)).expect("post");
        let mut out = Summary::new();
        for i in 0..total {
            let t0 = Instant::now();
            qa.post_rdma_write(0, data.clone(), b_stag, 0).expect("write");
            qa.post_send(0, Bytes::from_static(b"!")).expect("notify");
            let cqe = qa.recv_cq().poll_timeout(POLL).expect("client poll");
            let rtt = t0.elapsed();
            qa.post_recv(RecvWr::whole(cqe.wr_id, &notify_sink)).expect("repost");
            while qa.send_cq().poll().is_some() {}
            if i >= warmup {
                out.push(rtt.as_secs_f64() * 1e6 / 2.0);
            }
        }
        drop(srv.join().expect("server"));
        out
    })
}

fn latency_ud_read(
    dev_a: &Device,
    dev_b: &Device,
    size: usize,
    warmup: usize,
    iters: usize,
    _total: usize,
) -> Summary {
    let (a_s, a_r) = (Cq::new(64), Cq::new(64));
    let (b_s, b_r) = (Cq::new(64), Cq::new(64));
    let qa = dev_a.create_ud_qp(None, &a_s, &a_r, qp_cfg()).expect("qp");
    let qb = dev_b.create_ud_qp(None, &b_s, &b_r, qp_cfg()).expect("qp");
    let remote = dev_b.register_with(&payload(size.max(1)), Access::RemoteRead);
    let sink = dev_a.register(size.max(1), Access::Local);
    let mut out = Summary::new();
    for i in 0..warmup + iters {
        let t0 = Instant::now();
        qa.post_read(0, &sink, 0, size.max(1) as u32, qb.dest(), remote.stag(), 0)
            .expect("read");
        qa.recv_cq().poll_timeout(POLL).expect("read cqe");
        let rtt = t0.elapsed();
        if i >= warmup {
            // A read is inherently round-trip; report it whole.
            out.push(rtt.as_secs_f64() * 1e6);
        }
    }
    drop(qb);
    out
}

/// What a bandwidth run measured.
#[derive(Clone, Copy, Debug)]
pub struct BwResult {
    /// Delivered goodput in MB/s (10^6 bytes).
    pub mbps: f64,
    /// Messages sent.
    pub sent: usize,
    /// Messages delivered whole (or declared, for Write-Record).
    pub delivered: usize,
    /// Valid bytes delivered (counts partial placement for Write-Record).
    pub delivered_bytes: u64,
}

/// Picks the per-size message count: ≈32 MiB of traffic, clamped.
#[must_use]
pub fn default_burst(size: usize) -> usize {
    (32 * 1024 * 1024 / size.max(1)).clamp(16, 512)
}

/// Measures unidirectional bandwidth for `method` at `size` bytes with a
/// burst of `n` back-to-back messages.
pub fn bandwidth(kind: FabricKind, method: Method, size: usize, n: usize) -> BwResult {
    bandwidth_with_config(kind.config(), method, size, n)
}

/// [`bandwidth`] over an arbitrary wire configuration (custom loss
/// models, MTUs, seeds).
pub fn bandwidth_with_config(cfg: WireConfig, method: Method, size: usize, n: usize) -> BwResult {
    let fabric = Fabric::new(cfg);
    let dev_a = Device::new(&fabric, NodeId(0));
    let dev_b = Device::new(&fabric, NodeId(1));
    let result = match method {
        Method::UdSendRecv => bw_dgram(&dev_a, &dev_b, size, n, false, false),
        Method::RdSendRecv => bw_dgram(&dev_a, &dev_b, size, n, false, true),
        Method::UdWriteRecord => bw_dgram(&dev_a, &dev_b, size, n, true, false),
        Method::RcSendRecv => bw_rc_sendrecv(&dev_a, &dev_b, size, n),
        Method::RcRdmaWrite => bw_rc_write(&dev_a, &dev_b, size, n),
        Method::UdRead => bw_ud_read(&dev_a, &dev_b, size, n),
    };
    absorb_snapshot(fabric.telemetry().snapshot());
    result
}

/// Receiver-side tally: waits for up to `n` terminal completions, ending
/// after `quiet` without progress. The clock runs from `start` — captured
/// by the sender immediately before its first post — to the last
/// completion, so the measurement covers the full transfer pipeline.
/// Returns (delivered, bytes, elapsed).
fn drain_completions(
    cq: &Cq,
    n: usize,
    start_rx: &mpsc::Receiver<Instant>,
    quiet: Duration,
    write_record: bool,
) -> (usize, u64, Duration) {
    let mut delivered = 0usize;
    let mut bytes = 0u64;
    let mut last = None;
    let mut terminal = 0usize;
    while terminal < n {
        match cq.poll_timeout(quiet) {
            Ok(cqe) => {
                last = Some(Instant::now());
                terminal += 1;
                match cqe.status {
                    CqeStatus::Success => {
                        delivered += 1;
                        bytes += u64::from(cqe.byte_len);
                    }
                    CqeStatus::Partial if write_record => {
                        // Partial placement still delivers valid bytes —
                        // the Fig. 8 advantage.
                        delivered += 1;
                        bytes += u64::from(cqe.byte_len);
                    }
                    _ => {}
                }
            }
            Err(_) => break, // quiet period: missing messages never arrive
        }
    }
    let start = start_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("sender start timestamp");
    let elapsed = match last {
        Some(l) if l > start => l - start,
        _ => Duration::from_micros(1),
    };
    (delivered, bytes, elapsed)
}

fn mbps(bytes: u64, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    bytes as f64 / 1e6 / elapsed.as_secs_f64()
}

fn bw_dgram(
    dev_a: &Device,
    dev_b: &Device,
    size: usize,
    n: usize,
    write_record: bool,
    rd: bool,
) -> BwResult {
    let (a_s, a_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let (b_s, b_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let mk = |dev: &Device, scq: &Cq, rcq: &Cq| {
        if rd {
            dev.create_rd_qp(None, scq, rcq, qp_cfg()).expect("qp")
        } else {
            dev.create_ud_qp(None, scq, rcq, qp_cfg()).expect("qp")
        }
    };
    let qa = mk(dev_a, &a_s, &a_r);
    let qb = mk(dev_b, &b_s, &b_r);
    let b_dest = qb.dest();
    let sink = dev_b.register(size.max(1), Access::RemoteWrite);
    let data = payload(size);
    let (ready_tx, ready_rx) = mpsc::channel::<()>();
    let (start_tx, start_rx) = mpsc::channel::<Instant>();

    std::thread::scope(|s| {
        let qb_ref = &qb;
        let sink_ref = &sink;
        let counter = s.spawn(move || {
            if !write_record {
                for i in 0..n {
                    qb_ref
                        .post_recv(RecvWr::whole(i as u64, sink_ref))
                        .expect("prepost");
                }
            }
            ready_tx.send(()).expect("ready");
            drain_completions(
                qb_ref.recv_cq(),
                n,
                &start_rx,
                Duration::from_millis(400),
                write_record,
            )
        });
        ready_rx.recv_timeout(POLL).expect("server ready");
        start_tx.send(Instant::now()).expect("start");
        for _ in 0..n {
            if write_record {
                qa.post_write_record(0, data.clone(), b_dest, sink.stag(), 0)
                    .expect("post");
            } else {
                qa.post_send(0, data.clone(), b_dest).expect("post");
            }
            while qa.send_cq().poll().is_some() {}
        }
        let (delivered, bytes, elapsed) = counter.join().expect("counter");
        BwResult {
            mbps: mbps(bytes, elapsed),
            sent: n,
            delivered,
            delivered_bytes: bytes,
        }
    })
}

fn bw_rc_sendrecv(dev_a: &Device, dev_b: &Device, size: usize, n: usize) -> BwResult {
    let (a_s, a_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let (b_s, b_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let listener = dev_b.rc_listen(4902).expect("listen");
    let (ready_tx, ready_rx) = mpsc::channel::<()>();
    let (start_tx, start_rx) = mpsc::channel::<Instant>();
    std::thread::scope(|s| {
        let counter = s.spawn(move || {
            let qb = listener
                .accept(POLL, &b_s, &b_r, qp_cfg())
                .expect("accept");
            let sink = dev_b.register(size.max(1), Access::Local);
            for i in 0..n {
                qb.post_recv(RecvWr::whole(i as u64, &sink)).expect("prepost");
            }
            ready_tx.send(()).expect("ready");
            let out = drain_completions(qb.recv_cq(), n, &start_rx, Duration::from_secs(2), false);
            (out, qb)
        });
        let qa = dev_a
            .rc_connect(simnet::Addr::new(1, 4902), &a_s, &a_r, qp_cfg())
            .expect("connect");
        ready_rx.recv_timeout(POLL).expect("server ready");
        start_tx.send(Instant::now()).expect("start");
        let data = payload(size);
        for _ in 0..n {
            qa.post_send(0, data.clone()).expect("post");
            while qa.send_cq().poll().is_some() {}
        }
        let ((delivered, bytes, elapsed), qb) = counter.join().expect("counter");
        drop(qb);
        BwResult {
            mbps: mbps(bytes, elapsed),
            sent: n,
            delivered,
            delivered_bytes: bytes,
        }
    })
}

fn bw_rc_write(dev_a: &Device, dev_b: &Device, size: usize, n: usize) -> BwResult {
    let (a_s, a_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let (b_s, b_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let listener = dev_b.rc_listen(4903).expect("listen");
    let (stag_tx, stag_rx) = mpsc::channel::<u32>();
    std::thread::scope(|s| {
        let echo = s.spawn(move || {
            let qb = listener
                .accept(POLL, &b_s, &b_r, qp_cfg())
                .expect("accept");
            let sink = dev_b.register(size.max(1), Access::RemoteWrite);
            stag_tx.send(sink.stag()).expect("stag");
            let notify_sink = dev_b.register(1, Access::Local);
            qb.post_recv(RecvWr::whole(0, &notify_sink)).expect("post");
            // The final notify arrives strictly after every write placed
            // (stream ordering); reply so the sender can stop its clock.
            qb.recv_cq().poll_timeout(POLL).expect("notify");
            qb.post_send(0, Bytes::from_static(b"!")).expect("reply");
            while qb.send_cq().poll().is_some() {}
            qb
        });
        let qa = dev_a
            .rc_connect(simnet::Addr::new(1, 4903), &a_s, &a_r, qp_cfg())
            .expect("connect");
        let stag = stag_rx.recv_timeout(POLL).expect("stag");
        let reply_sink = dev_a.register(1, Access::Local);
        qa.post_recv(RecvWr::whole(0, &reply_sink)).expect("post");
        let data = payload(size);
        let t0 = Instant::now();
        for _ in 0..n {
            qa.post_rdma_write(0, data.clone(), stag, 0).expect("post");
            while qa.send_cq().poll().is_some() {}
        }
        qa.post_send(0, Bytes::from_static(b"!")).expect("notify");
        qa.recv_cq().poll_timeout(POLL).expect("reply");
        let elapsed = t0.elapsed();
        drop(echo.join().expect("echo"));
        let bytes = (n * size) as u64;
        BwResult {
            mbps: mbps(bytes, elapsed),
            sent: n,
            delivered: n,
            delivered_bytes: bytes,
        }
    })
}

fn bw_ud_read(dev_a: &Device, dev_b: &Device, size: usize, n: usize) -> BwResult {
    let (a_s, a_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let (b_s, b_r) = (Cq::new(n + 64), Cq::new(n + 64));
    let qa = dev_a.create_ud_qp(None, &a_s, &a_r, qp_cfg()).expect("qp");
    let qb = dev_b.create_ud_qp(None, &b_s, &b_r, qp_cfg()).expect("qp");
    let remote = dev_b.register_with(&payload(size.max(1)), Access::RemoteRead);
    let sink = dev_a.register(size.max(1), Access::Local);
    let t0 = Instant::now();
    // Pipeline reads with a modest window to bound reassembly state.
    let window = 8usize.min(n);
    let mut issued = 0usize;
    let mut done = 0usize;
    let mut delivered = 0usize;
    let mut bytes = 0u64;
    while done < n {
        while issued < n && issued - done < window {
            qa.post_read(
                issued as u64,
                &sink,
                0,
                size.max(1) as u32,
                qb.dest(),
                remote.stag(),
                0,
            )
            .expect("read");
            issued += 1;
        }
        match qa.recv_cq().poll_timeout(Duration::from_millis(500)) {
            Ok(cqe) => {
                done += 1;
                if cqe.opcode == CqeOpcode::RdmaRead && cqe.status == CqeStatus::Success {
                    delivered += 1;
                    bytes += u64::from(cqe.byte_len);
                }
            }
            Err(_) => break,
        }
    }
    let elapsed = t0.elapsed();
    drop(qb);
    BwResult {
        mbps: mbps(bytes, elapsed),
        sent: n,
        delivered,
        delivered_bytes: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_all_methods_smoke() {
        for method in [
            Method::UdSendRecv,
            Method::UdWriteRecord,
            Method::RcSendRecv,
            Method::RcRdmaWrite,
            Method::RdSendRecv,
            Method::UdRead,
        ] {
            let s = latency(FabricKind::Fast, method, 64, 2, 5);
            assert_eq!(s.len(), 5, "{method:?}");
            assert!(s.median() > 0.0, "{method:?}");
        }
    }

    #[test]
    fn bandwidth_all_methods_smoke() {
        for method in [
            Method::UdSendRecv,
            Method::UdWriteRecord,
            Method::RcSendRecv,
            Method::RcRdmaWrite,
            Method::RdSendRecv,
            Method::UdRead,
        ] {
            let r = bandwidth(FabricKind::Fast, method, 4096, 32);
            assert_eq!(r.sent, 32, "{method:?}");
            assert!(r.delivered > 0, "{method:?}");
            assert!(r.mbps > 0.0, "{method:?}");
        }
    }

    #[test]
    fn lossless_bandwidth_delivers_everything() {
        let r = bandwidth(FabricKind::Fast, Method::UdSendRecv, 16 * 1024, 32);
        assert_eq!(r.delivered, 32);
        assert_eq!(r.delivered_bytes, 32 * 16 * 1024);
    }

    #[test]
    fn loss_reduces_udp_goodput() {
        // 256 KiB messages at 2% wire loss: most messages lose a datagram.
        let clean = bandwidth(FabricKind::Fast, Method::UdSendRecv, 256 * 1024, 24);
        let lossy = bandwidth(FabricKind::FastLoss(0.02), Method::UdSendRecv, 256 * 1024, 24);
        assert!(lossy.delivered < clean.delivered);
    }

    #[test]
    fn write_record_partial_beats_sendrecv_under_loss_large_msgs() {
        // The Fig. 8 claim: for multi-datagram messages under loss,
        // Write-Record's partial placement salvages bytes that send/recv
        // must discard.
        let size = 512 * 1024;
        let sr = bandwidth(FabricKind::FastLoss(0.01), Method::UdSendRecv, size, 24);
        let wr = bandwidth(FabricKind::FastLoss(0.01), Method::UdWriteRecord, size, 24);
        assert!(
            wr.delivered_bytes > sr.delivered_bytes,
            "WR {} vs SR {}",
            wr.delivered_bytes,
            sr.delivered_bytes
        );
    }

    #[test]
    fn default_burst_clamps() {
        assert_eq!(default_burst(1), 512);
        assert_eq!(default_burst(1024 * 1024), 32);
        assert_eq!(default_burst(16 * 1024 * 1024), 16);
    }
}
