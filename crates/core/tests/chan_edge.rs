//! [`CompletionChannel`] edge cases: the races and lifetimes an
//! epoll-style wait object must survive — wake-vs-timeout, notification
//! before subscription, teardown under a parked waiter — plus a procfs
//! proof that `wait_any` parks rather than spins.

use std::time::{Duration, Instant};

use iwarp::cq::{Cqe, CqeOpcode, CqeStatus};
use iwarp::{CompletionChannel, Cq};

/// Minimal CQE for exercising the subscription plumbing.
fn test_cqe(wr_id: u64) -> Cqe {
    Cqe {
        wr_id,
        opcode: CqeOpcode::Recv,
        status: CqeStatus::Success,
        byte_len: 0,
        src: None,
        write_record: None,
        imm: None,
        solicited: false,
    }
}

/// CPU time consumed by the calling thread so far, per
/// `/proc/thread-self/stat` fields 14+15 (utime+stime, clock ticks).
#[cfg(target_os = "linux")]
fn thread_cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").expect("procfs thread stat");
    let rest = stat.rsplit(')').next().unwrap_or(&stat);
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().expect("utime");
    let stime: u64 = fields[12].parse().expect("stime");
    utime + stime
}

/// Wake-vs-timeout race: hammer short `wait_any` deadlines against a
/// notifier firing at unsynchronized moments. Whatever interleaving
/// occurs, each notified token must be retrievable exactly once — a
/// notify landing in the sliver between timeout expiry and waiter
/// wakeup must not be lost.
#[test]
fn notify_racing_timeout_never_loses_a_token() {
    let chan = CompletionChannel::new();
    const TOKENS: u64 = 400;

    let notifier = {
        let chan = chan.clone();
        std::thread::spawn(move || {
            for t in 0..TOKENS {
                chan.notify(t);
                if t % 7 == 0 {
                    std::thread::yield_now();
                } else if t % 13 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        })
    };

    let mut seen = vec![0u32; TOKENS as usize];
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = 0u64;
    while got < TOKENS {
        assert!(Instant::now() < deadline, "lost tokens: {got}/{TOKENS} after 10s");
        // Deliberately tiny timeout so expiry and notify collide often.
        for t in chan.wait_any(Duration::from_micros(500)) {
            seen[t as usize] += 1;
            got += 1;
        }
    }
    notifier.join().unwrap();
    for (t, n) in seen.iter().enumerate() {
        assert_eq!(*n, 1, "token {t} delivered {n} times");
    }
    assert!(chan.wait_any(Duration::from_millis(10)).is_empty());
}

/// Readiness is edge-style and coalesced: notifying the same token many
/// times before anyone waits yields it once, and it re-arms after
/// collection.
#[test]
fn repeat_notifies_coalesce_and_rearm() {
    let chan = CompletionChannel::new();
    for _ in 0..64 {
        chan.notify(9);
    }
    assert_eq!(chan.wait_any(Duration::from_millis(100)), vec![9]);
    assert!(chan.try_wait().is_empty(), "token not consumed");
    chan.notify(9);
    assert_eq!(chan.try_wait(), vec![9], "token did not re-arm");
}

/// Subscribe-after-completion: a CQ that already holds CQEs must notify
/// the channel at `attach_channel` time, not only on the next push —
/// otherwise a waiter parks forever on work that already exists.
#[test]
fn attaching_to_nonempty_cq_notifies_immediately() {
    let cq = Cq::new(8);
    cq.push(test_cqe(1));
    cq.push(test_cqe(2));
    let chan = CompletionChannel::new();
    cq.attach_channel(&chan, 77);
    assert_eq!(
        chan.wait_any(Duration::from_millis(100)),
        vec![77],
        "pre-existing completions were not surfaced on subscribe"
    );
}

/// An empty CQ at attach time must NOT produce a phantom wakeup.
#[test]
fn attaching_to_empty_cq_stays_quiet() {
    let cq = Cq::new(8);
    let chan = CompletionChannel::new();
    cq.attach_channel(&chan, 78);
    assert!(chan.try_wait().is_empty(), "phantom readiness on attach");
    cq.push(test_cqe(3));
    assert_eq!(chan.wait_any(Duration::from_millis(100)), vec![78]);
}

/// Drop-while-waiting: dropping the producer-side clone (and its CQ)
/// while another thread is parked must leave the waiter to time out
/// cleanly — no deadlock, no panic, no poisoned lock.
#[test]
fn dropping_producers_while_parked_times_out_cleanly() {
    let chan = CompletionChannel::new();
    let waiter = {
        let chan = chan.clone();
        std::thread::spawn(move || chan.wait_any(Duration::from_millis(300)))
    };
    std::thread::sleep(Duration::from_millis(50));
    {
        let cq = Cq::new(4);
        cq.attach_channel(&chan, 5);
        drop(cq); // producer gone while the waiter is parked
    }
    drop(chan);
    let got = waiter.join().expect("waiter panicked");
    assert!(got.is_empty(), "no token was ever published, got {got:?}");
}

/// A detached CQ must stop notifying its old channel.
#[test]
fn detach_stops_notifications() {
    let cq = Cq::new(8);
    let chan = CompletionChannel::new();
    cq.attach_channel(&chan, 11);
    cq.detach_channel();
    cq.push(test_cqe(4));
    assert!(
        chan.wait_any(Duration::from_millis(50)).is_empty(),
        "detached CQ still notifies"
    );
}

/// The event path's whole reason to exist: a parked `wait_any` must cost
/// (near-)zero CPU. A busy-poll over ~500 ms burns ~50 ticks at 100 Hz;
/// a condvar park registers 0. Allow 2 for scheduler noise.
#[cfg(target_os = "linux")]
#[test]
fn wait_any_parks_instead_of_spinning() {
    let chan = CompletionChannel::new();
    // Warm-up outside the measured window.
    assert!(chan.try_wait().is_empty());

    let before = thread_cpu_ticks();
    let start = Instant::now();
    let got = chan.wait_any(Duration::from_millis(500));
    let wall = start.elapsed();
    let burned = thread_cpu_ticks() - before;

    assert!(got.is_empty());
    assert!(wall >= Duration::from_millis(450), "returned early: {wall:?}");
    assert!(
        burned <= 2,
        "idle wait_any burned {burned} CPU ticks over {wall:?} — event path is busy-polling"
    );
}
