//! Decode-robustness fuzzing: arbitrary and truncated byte soup thrown at
//! every wire-format decoder. The decoders guard the trust boundary — a
//! sharded RX engine feeds them whatever the fabric delivers — so they
//! must classify garbage as an error, never panic, never over-read.

use bytes::Bytes;
use proptest::prelude::*;

use iwarp::hdr::{decode, decode_sg, encode_untagged, RdmapOpcode, ReadRequest, UntaggedHdr};
use iwarp_common::sg::SgBytes;

/// Splits `raw` into an SgBytes at the given fractional cut points so the
/// scatter-gather decoder sees headers straddling part boundaries.
fn split_sg(raw: &[u8], cuts: &[usize]) -> SgBytes {
    let mut sg = SgBytes::new();
    let mut prev = 0usize;
    let mut sorted: Vec<usize> = cuts.iter().map(|&c| c % (raw.len() + 1)).collect();
    sorted.sort_unstable();
    for cut in sorted {
        if cut > prev {
            sg.push(Bytes::copy_from_slice(&raw[prev..cut]));
            prev = cut;
        }
    }
    if prev < raw.len() {
        sg.push(Bytes::copy_from_slice(&raw[prev..]));
    }
    sg
}

fn sample_untagged(total_len: u32, mo: u32) -> UntaggedHdr {
    UntaggedHdr {
        opcode: RdmapOpcode::Send,
        last: true,
        qn: 0,
        msn: 7,
        mo,
        total_len,
        src_qpn: 42,
        msg_id: 0xDEAD_BEEF,
        solicited: false,
    }
}

proptest! {
    /// Raw garbage into the contiguous decoder: Ok or Err, never a panic.
    #[test]
    fn decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..512),
                           with_crc in any::<bool>()) {
        let _ = decode(&Bytes::from(raw), with_crc);
    }

    /// Same garbage through the scatter-gather decoder with arbitrary
    /// part splits, including parts that straddle the header.
    #[test]
    fn decode_sg_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..512),
                              cuts in proptest::collection::vec(any::<usize>(), 0..6),
                              with_crc in any::<bool>()) {
        let sg = split_sg(&raw, &cuts);
        let _ = decode_sg(&sg, with_crc);
    }

    /// Read-request control messages are a distinct format with its own
    /// decoder; garbage in must classify, not panic.
    #[test]
    fn read_request_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = ReadRequest::decode(&raw);
    }

    /// Every proper prefix of a valid CRC-protected segment must be
    /// caught: `decode` rejects it eagerly; `decode_sg` either rejects it
    /// or hands back a deferred CRC that fails verification. No prefix
    /// may panic or pass as intact.
    #[test]
    fn truncated_segment_with_crc_is_caught(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let hdr = sample_untagged(payload.len() as u32, 0);
        let wire = encode_untagged(&hdr, &payload, true);
        for cut in 0..wire.len() {
            let truncated = wire.slice(0..cut);
            prop_assert!(decode(&truncated, true).is_err(),
                         "prefix of {} bytes (cut at {cut}) decoded successfully", wire.len());
            match decode_sg(&split_sg(&truncated, &[cut / 2]), true) {
                Err(_) => {}
                Ok((seg, Some(pending))) => prop_assert!(!pending.verify(seg.payload()),
                    "sg prefix (cut at {cut}) passed its deferred CRC"),
                Ok((_, None)) => prop_assert!(false,
                    "sg prefix (cut at {cut}) accepted without any CRC check"),
            }
        }
    }

    /// Without a CRC, truncating the payload is wire-indistinguishable
    /// from a shorter datagram — but the decoders must still never panic,
    /// must reject header truncation, and must preserve `total_len` so
    /// reassembly can detect the shortfall.
    #[test]
    fn truncated_segment_without_crc_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let hdr = sample_untagged(payload.len() as u32, 0);
        let wire = encode_untagged(&hdr, &payload, false);
        for cut in 0..wire.len() {
            let truncated = wire.slice(0..cut);
            match decode(&truncated, false) {
                Err(_) => prop_assert!(cut < wire.len(), "full segment rejected"),
                Ok(seg) => {
                    prop_assert!(cut >= iwarp::hdr::UNTAGGED_HDR_LEN,
                                 "decoded from less than a header");
                    match &seg {
                        iwarp::hdr::DdpSegment::Untagged { hdr: h, payload: p } => {
                            prop_assert_eq!(h.total_len as usize, payload.len(),
                                            "total_len corrupted by truncation");
                            prop_assert!(p.len() < payload.len() || cut == wire.len(),
                                         "truncated decode returned full payload");
                        }
                        iwarp::hdr::DdpSegment::Tagged { .. } =>
                            prop_assert!(false, "untagged wire decoded as tagged"),
                    }
                }
            }
            let _ = decode_sg(&split_sg(&truncated, &[cut / 2]), false);
        }
    }

    /// A single flipped bit in a CRC-protected segment must surface as an
    /// error (almost always `CrcMismatch`), never as silent corruption of
    /// the decode path itself.
    #[test]
    fn bitflip_with_crc_never_panics(payload in proptest::collection::vec(any::<u8>(), 1..128),
                                     byte_idx in any::<usize>(), bit in 0u8..8) {
        let hdr = sample_untagged(payload.len() as u32, 0);
        let wire = encode_untagged(&hdr, &payload, true);
        let mut bytes = wire.to_vec();
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        // Flips in the length field can make the buffer "short"; flips in
        // payload/CRC must be caught by CRC. Either way: classified.
        let _ = decode(&Bytes::from(bytes.clone()), true);
        let _ = decode_sg(&SgBytes::from(Bytes::from(bytes)), true);
    }

    /// Contiguous and scatter-gather decoders must agree on every input:
    /// same success payload or both reject.
    #[test]
    fn decode_and_decode_sg_agree(raw in proptest::collection::vec(any::<u8>(), 0..512),
                                  cuts in proptest::collection::vec(any::<usize>(), 0..4),
                                  with_crc in any::<bool>()) {
        let flat = Bytes::from(raw.clone());
        let contiguous = decode(&flat, with_crc);
        let sg_res = decode_sg(&split_sg(&raw, &cuts), with_crc);
        match (contiguous, sg_res) {
            (Ok(a), Ok((b, pending))) => {
                // decode_sg defers payload CRC; verify it to match decode's
                // eager check before comparing.
                if let Some(p) = &pending {
                    prop_assert!(p.verify(b.payload()), "sg accepted a payload decode's CRC rejected");
                }
                prop_assert_eq!(a.payload(), b.payload());
            }
            (Err(_), Err(_)) => {}
            (Ok(a), Err(e)) => {
                prop_assert!(false, "decode ok ({} payload bytes) but decode_sg err: {e:?}",
                             a.payload().len());
            }
            (Err(e), Ok((seg, pending))) => {
                // The only sanctioned asymmetry: decode checks CRC eagerly,
                // decode_sg defers it. The deferred check must then fail.
                match pending {
                    Some(p) => prop_assert!(!p.verify(seg.payload()),
                        "decode err ({e:?}) but decode_sg fully accepted"),
                    None => prop_assert!(false, "decode err ({e:?}) but decode_sg ok with no pending CRC"),
                }
            }
        }
    }
}
