//! Criterion micro-benchmarks for Figs. 7/8: datagram goodput under loss.
//!
//! Compares send/recv against Write-Record at one lossy operating point;
//! the full rate × size sweeps live in the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwarp_bench::{bandwidth, FabricKind, Method};

fn bench_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig78_loss");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let size = 256 * 1024;
    for (label, method) in [
        ("fig7_ud_sendrecv", Method::UdSendRecv),
        ("fig8_ud_write_record", Method::UdWriteRecord),
    ] {
        g.bench_with_input(BenchmarkId::new(label, "1pct_loss"), &size, |b, &size| {
            b.iter(|| bandwidth(FabricKind::FastLoss(0.01), method, size, 16));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_loss);
criterion_main!(benches);
