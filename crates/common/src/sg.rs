//! Scatter-gather byte lists for the zero-copy datapath.
//!
//! A DDP segment on the wire is `[header][payload][crc]`, and a datagram
//! fragment is an arbitrary MTU-sized window of that. The legacy datapath
//! materialised every such thing as one contiguous buffer, paying a copy at
//! each layer. [`SgBytes`] instead describes the same logical byte string
//! as an ordered list of [`Bytes`] views, so layering is O(parts): the
//! header is a pooled buffer, the payload is the caller's own slice, and
//! fragmentation is [`SgBytes::slice`] — all without touching the payload.
//!
//! The logical byte string (what [`SgBytes::to_bytes`] /
//! [`SgBytes::copy_to_slice`] produce) is the wire format; the part
//! structure is transport-internal, the software analogue of a NIC's
//! gather list, and is never observable in the bytes themselves.

use bytes::Bytes;

/// An ordered list of [`Bytes`] views treated as one logical byte string.
///
/// Cloning is O(parts) `Arc` bumps. Empty parts are never stored, so a
/// part index always maps to at least one logical byte.
#[derive(Clone, Default)]
pub struct SgBytes {
    parts: Vec<Bytes>,
    len: usize,
}

impl SgBytes {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a list with capacity for `n` parts.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            parts: Vec::with_capacity(n),
            len: 0,
        }
    }

    /// Appends a part (zero-copy; empty parts are dropped).
    pub fn push(&mut self, part: Bytes) {
        if !part.is_empty() {
            self.len += part.len();
            self.parts.push(part);
        }
    }

    /// Total logical length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical byte string is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying parts, in order. No part is empty.
    #[must_use]
    pub fn parts(&self) -> &[Bytes] {
        &self.parts
    }

    /// Whether the logical bytes live in at most one contiguous buffer
    /// (i.e. [`SgBytes::to_bytes`] will not copy).
    #[must_use]
    pub fn is_contiguous(&self) -> bool {
        self.parts().len() <= 1
    }

    /// Zero-copy sub-window `start..end` of the logical byte string.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.len()`.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        let mut out = Self::with_capacity(self.parts().len());
        let mut pos = 0usize;
        for p in self.parts() {
            let p_end = pos + p.len();
            if p_end > start && pos < end {
                let from = start.saturating_sub(pos);
                let to = p.len().min(end - pos);
                out.push(p.slice(from..to));
            }
            pos = p_end;
            if pos >= end {
                break;
            }
        }
        debug_assert_eq!(out.len(), end - start);
        out
    }

    /// Flattens into a single contiguous [`Bytes`].
    ///
    /// Zero-copy when the list is empty or single-part; otherwise copies
    /// `self.len()` bytes (callers on the datapath count this against
    /// `pool.bytes_copied`).
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        match self.parts().len() {
            0 => Bytes::new(),
            1 => self.parts()[0].clone(),
            _ => {
                let mut v = Vec::with_capacity(self.len);
                for p in self.parts() {
                    v.extend_from_slice(p);
                }
                Bytes::from(v)
            }
        }
    }

    /// Copies the logical bytes into `dst`.
    ///
    /// # Panics
    /// Panics if `dst.len() != self.len()`.
    pub fn copy_to_slice(&self, dst: &mut [u8]) {
        assert_eq!(dst.len(), self.len, "destination length mismatch");
        let mut pos = 0usize;
        for p in self.parts() {
            dst[pos..pos + p.len()].copy_from_slice(p);
            pos += p.len();
        }
    }

    /// Copies a range of the logical bytes into a small stack/heap buffer.
    ///
    /// Intended for fixed-size protocol headers (tens of bytes) where a
    /// bounded copy is cheaper than restructuring; not for payloads.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn copy_range(&self, start: usize, end: usize) -> Vec<u8> {
        let mut v = vec![0u8; end - start];
        self.read_at(start, &mut v);
        v
    }

    /// Copies `dst.len()` logical bytes starting at `start` into `dst`
    /// without allocating — the header-peek primitive of the burst RX
    /// path (a stack buffer instead of `copy_range`'s `Vec`).
    ///
    /// # Panics
    /// Panics if `start + dst.len() > self.len()`.
    pub fn read_at(&self, start: usize, dst: &mut [u8]) {
        let end = start + dst.len();
        assert!(
            end <= self.len,
            "read_at {start}..{end} out of bounds of {}",
            self.len
        );
        let mut pos = 0usize;
        let mut written = 0usize;
        for p in self.parts() {
            let p_end = pos + p.len();
            if p_end > start && pos < end {
                let from = start.saturating_sub(pos);
                let to = p.len().min(end - pos);
                dst[written..written + (to - from)].copy_from_slice(&p[from..to]);
                written += to - from;
            }
            pos = p_end;
            if pos >= end {
                break;
            }
        }
    }

    /// `self.slice(start, end).to_bytes()` without the intermediate list:
    /// zero-copy when the window lies within one part, a single bounded
    /// copy otherwise.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.len()`.
    #[must_use]
    pub fn slice_to_bytes(&self, start: usize, end: usize) -> Bytes {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        if start == end {
            return Bytes::new();
        }
        let mut pos = 0usize;
        for p in self.parts() {
            let p_end = pos + p.len();
            if pos <= start && end <= p_end {
                return p.slice(start - pos..end - pos);
            }
            if p_end > start {
                break;
            }
            pos = p_end;
        }
        let mut v = vec![0u8; end - start];
        self.read_at(start, &mut v);
        Bytes::from(v)
    }
}

impl From<Bytes> for SgBytes {
    fn from(b: Bytes) -> Self {
        let mut sg = Self::with_capacity(1);
        sg.push(b);
        sg
    }
}

impl PartialEq for SgBytes {
    fn eq(&self, other: &Self) -> bool {
        // Logical-byte equality; part structure is transport-internal.
        if self.len != other.len {
            return false;
        }
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for SgBytes {}

impl std::fmt::Debug for SgBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SgBytes(len={}, parts={})", self.len, self.parts().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SgBytes {
        let mut sg = SgBytes::new();
        sg.push(Bytes::from(vec![0, 1, 2]));
        sg.push(Bytes::new()); // dropped
        sg.push(Bytes::from(vec![3, 4]));
        sg.push(Bytes::from(vec![5, 6, 7, 8]));
        sg
    }

    #[test]
    fn push_len_and_flatten() {
        let sg = sample();
        assert_eq!(sg.len(), 9);
        assert_eq!(sg.parts().len(), 3);
        assert_eq!(&sg.to_bytes()[..], &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(!sg.is_contiguous());
        let single = SgBytes::from(Bytes::from(vec![9, 9]));
        assert!(single.is_contiguous());
    }

    #[test]
    fn slice_windows_across_parts() {
        let sg = sample();
        for start in 0..=sg.len() {
            for end in start..=sg.len() {
                let w = sg.slice(start, end);
                assert_eq!(&w.to_bytes()[..], &sg.to_bytes()[start..end]);
            }
        }
        // A window inside one part stays single-part (zero-copy flatten).
        assert!(sg.slice(0, 2).is_contiguous());
        assert!(sg.slice(5, 9).is_contiguous());
    }

    #[test]
    fn copy_helpers_match_flatten() {
        let sg = sample();
        let mut dst = vec![0u8; sg.len()];
        sg.copy_to_slice(&mut dst);
        assert_eq!(dst, &sg.to_bytes()[..]);
        assert_eq!(sg.copy_range(2, 6), &sg.to_bytes()[2..6]);
    }

    #[test]
    fn read_at_matches_copy_range() {
        let sg = sample();
        let flat = sg.to_bytes();
        for start in 0..=sg.len() {
            for end in start..=sg.len() {
                let mut buf = vec![0u8; end - start];
                sg.read_at(start, &mut buf);
                assert_eq!(&buf[..], &flat[start..end], "window {start}..{end}");
            }
        }
    }

    #[test]
    fn slice_to_bytes_matches_slice_flatten() {
        let sg = sample();
        let flat = sg.to_bytes();
        for start in 0..=sg.len() {
            for end in start..=sg.len() {
                let b = sg.slice_to_bytes(start, end);
                assert_eq!(&b[..], &flat[start..end], "window {start}..{end}");
            }
        }
    }
}
