//! Proof of the codec's zero-alloc claim: a counting global allocator
//! wraps the system allocator, and the steady-state SIP transaction
//! (borrowed parse → response into a warm scratch) is asserted to perform
//! exactly zero heap allocations per message. Lives in its own test
//! binary because a `#[global_allocator]` is process-wide; the counter is
//! thread-local so the libtest harness threads can't pollute the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use iwarp_apps::sip::codec::{make_bye, make_invite, SipScratch, SipView};

thread_local! {
    static TL_ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: allocations during TLS teardown must not panic inside
    // the allocator; missing those is fine — the test thread is live.
    let _ = TL_ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
}

fn this_thread_allocs() -> u64 {
    TL_ALLOC_CALLS.with(Cell::get)
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_parse_and_respond_allocates_nothing() {
    // Wire bytes for the two steady-state request shapes the server sees
    // on the in-dialog path.
    let bye = make_bye("call-0@zero", "alice@a", "uas@b", 2).encode();
    let invite = make_invite("call-0@zero", "alice@a", "uas@b", 1).encode();

    let mut scratch = SipScratch::new();
    // Warm the scratch with the largest response it will produce.
    {
        let req = SipView::parse(&invite).unwrap();
        let _ = scratch.response_to(&req, 200, "OK", &[("Contact", "<sip:server>")]);
    }

    let before = this_thread_allocs();
    for _ in 0..1000 {
        let req = SipView::parse(&bye).unwrap();
        assert_eq!(req.cseq().map(|(n, _)| n), Some(2));
        let wire = scratch.response_to(&req, 200, "OK", &[]);
        assert!(wire.starts_with(b"SIP/2.0 200 OK\r\n"));
    }
    let after = this_thread_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state SIP transaction touched the heap"
    );
}
