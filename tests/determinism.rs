//! Differential determinism across RX drive modes.
//!
//! The same seeded lossy run — one sender thread, so every Bernoulli loss
//! decision is consumed in send order — must yield byte-identical per-QP
//! CQE payload sequences whether the receive side is caller-polled,
//! per-QP threaded, or sharded (1 or 4 shards). Anything less means the
//! drive mode leaks into protocol behaviour and chaos replay is a lie.

use std::time::{Duration, Instant};

use datagram_iwarp::chaos::{run_plan, ChaosOpts};
use datagram_iwarp::common::burstpath::BurstPath;
use datagram_iwarp::common::ccalgo::CcAlgo;
use datagram_iwarp::common::copypath::CopyPath;
use datagram_iwarp::common::rng::derive_seed;
use datagram_iwarp::verbs::read::{BulkRead, BulkReadConfig, RecoveryConfig, SignalInterval};
use datagram_iwarp::net::{Addr, Fabric, FaultEvent, FaultPlan, LossModel, NodeId, WireConfig};
use datagram_iwarp::telemetry::Snapshot;
use datagram_iwarp::verbs::wr::{RecvWr, SendWr};
use datagram_iwarp::verbs::{
    Access, Cq, CqeStatus, Device, DeviceConfig, QpConfig, ShardConfig,
};

const QPS: usize = 8;
const MSGS: u32 = 30;
const SLOT: usize = 128;
const SEED: u64 = 0xD1FF_5EED;

#[derive(Clone, Copy, Debug)]
enum RxMode {
    /// `QpConfig::poll_mode`: the test drives `progress()` itself.
    Poll,
    /// Dedicated per-QP engine threads (`shards == 0`).
    Threaded,
    /// Shared shard pool of the given size.
    Sharded(usize),
}

/// Runs the canonical lossy workload under one RX mode and returns, per
/// QP, the payloads in CQE order.
fn run(mode: RxMode) -> Vec<Vec<Vec<u8>>> {
    run_with(mode, BurstPath::PerPacket).0
}

/// [`run`] with the batching discipline as a knob, also returning the
/// final telemetry snapshot. Under [`BurstPath::Burst`] the client posts
/// each round as one `post_send_batch` doorbell and the receivers (poll
/// mode only) drive `progress_burst`; the wire traffic must nonetheless
/// be byte-identical to the per-packet run under the same seed.
fn run_with(mode: RxMode, burst: BurstPath) -> (Vec<Vec<Vec<u8>>>, Snapshot) {
    let fab = Fabric::new(WireConfig {
        loss: LossModel::bernoulli(0.10),
        seed: SEED,
        ..WireConfig::default()
    });
    let shards = match mode {
        RxMode::Sharded(n) => n,
        _ => 0,
    };
    let server = Device::with_config(
        &fab,
        NodeId(1),
        DeviceConfig {
            shard: ShardConfig::with_shards(shards),
            ..DeviceConfig::default()
        },
    );
    let qp_cfg = QpConfig {
        poll_mode: matches!(mode, RxMode::Poll),
        // Pin the copy path: the burst transmit gate requires SG, and the
        // A/B comparison must differ in the batching knob alone.
        copy_path: CopyPath::Sg,
        burst_path: burst,
        ..QpConfig::default()
    };

    let mut rx = Vec::new();
    for _ in 0..QPS {
        let send_cq = Cq::new(8);
        let recv_cq = Cq::new(MSGS as usize + 8);
        let qp = server
            .create_ud_qp(None, &send_cq, &recv_cq, qp_cfg.clone())
            .unwrap();
        match mode {
            RxMode::Poll | RxMode::Threaded => assert!(!qp.is_sharded()),
            RxMode::Sharded(_) => assert!(qp.is_sharded()),
        }
        let mr = server.register(MSGS as usize * SLOT, Access::Local);
        for i in 0..MSGS as usize {
            qp.post_recv(RecvWr {
                wr_id: i as u64,
                mr: mr.clone(),
                offset: (i * SLOT) as u64,
                len: SLOT as u32,
            })
            .unwrap();
        }
        rx.push((qp, recv_cq, mr));
    }
    let dests: Vec<_> = rx.iter().map(|(qp, _, _)| qp.dest()).collect();

    // Single sender thread: the wire's seeded RNG sees sends in exactly
    // this order in every mode, so the set of dropped datagrams is fixed.
    let client = Device::new(&fab, NodeId(0));
    let c_send = Cq::new(64);
    let c_recv = Cq::new(8);
    let cqp = client
        .create_ud_qp(
            None,
            &c_send,
            &c_recv,
            QpConfig {
                poll_mode: true,
                copy_path: CopyPath::Sg,
                burst_path: burst,
                ..QpConfig::default()
            },
        )
        .unwrap();
    for seq in 0..MSGS {
        let payloads: Vec<Vec<u8>> = dests
            .iter()
            .enumerate()
            .map(|(qi, _)| {
                let mut payload = vec![0u8; 96];
                payload[0] = qi as u8;
                payload[1..5].copy_from_slice(&seq.to_le_bytes());
                for (i, b) in payload.iter_mut().enumerate().skip(5) {
                    *b = (i as u8).wrapping_mul(seq as u8 | 1) ^ qi as u8;
                }
                payload
            })
            .collect();
        match burst {
            BurstPath::PerPacket => {
                for (payload, dest) in payloads.into_iter().zip(&dests) {
                    cqp.post_send(u64::from(seq), payload, *dest).unwrap();
                    while c_send.poll().is_some() {}
                }
            }
            BurstPath::Burst => {
                // One doorbell per round. Destinations are grouped in
                // first-seen order, which here is exactly the per-packet
                // posting order — same wire order, same RNG draws.
                let wrs: Vec<SendWr> = payloads
                    .into_iter()
                    .zip(&dests)
                    .map(|(payload, dest)| SendWr::new(u64::from(seq), payload, *dest))
                    .collect();
                cqp.post_send_batch(&wrs).unwrap();
                while c_send.poll().is_some() {}
            }
        }
    }

    // Drain until every QP has been quiet for a while. In poll mode the
    // drain loop itself is the RX engine.
    let mut out: Vec<Vec<Vec<u8>>> = vec![Vec::new(); QPS];
    let mut quiet_since = Instant::now();
    while quiet_since.elapsed() < Duration::from_millis(300) {
        let mut any = false;
        for (qi, (qp, recv_cq, mr)) in rx.iter().enumerate() {
            if matches!(mode, RxMode::Poll) {
                // Falls back to the single-step engine under PerPacket.
                qp.progress_burst(32, Duration::from_millis(1));
            }
            while let Some(cqe) = recv_cq.poll() {
                assert_eq!(cqe.status, CqeStatus::Success);
                let data = mr
                    .read_vec(cqe.wr_id * SLOT as u64, cqe.byte_len as usize)
                    .unwrap();
                out[qi].push(data);
                any = true;
            }
        }
        if any {
            quiet_since = Instant::now();
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    (out, fab.telemetry().snapshot())
}

#[test]
fn rx_mode_does_not_change_delivered_bytes() {
    let poll = run(RxMode::Poll);
    let threaded = run(RxMode::Threaded);
    let shard1 = run(RxMode::Sharded(1));
    let shard4 = run(RxMode::Sharded(4));

    let delivered: usize = poll.iter().map(Vec::len).sum();
    assert!(delivered > 0, "seeded 10 % loss run delivered nothing");
    assert!(
        delivered < QPS * MSGS as usize,
        "10 % loss model dropped nothing — seed no longer exercises loss"
    );

    for (qi, baseline) in poll.iter().enumerate() {
        assert_eq!(
            baseline, &threaded[qi],
            "qp #{qi}: threaded RX diverged from poll-mode"
        );
        assert_eq!(
            baseline, &shard1[qi],
            "qp #{qi}: 1-shard RX diverged from poll-mode"
        );
        assert_eq!(
            baseline, &shard4[qi],
            "qp #{qi}: 4-shard RX diverged from poll-mode"
        );
    }
}

/// Replaying the same mode twice must also be bit-stable (guards against
/// nondeterminism *within* a mode, not just across modes).
#[test]
fn sharded_rx_is_replay_stable() {
    let a = run(RxMode::Sharded(4));
    let b = run(RxMode::Sharded(4));
    assert_eq!(a, b, "same seed, same mode, different bytes");
}

/// Wire-level counters that must be identical across the batching knob:
/// the burst path may only amortize *how* packets move (lock rounds,
/// notifies, CQ pushes), never *what* moves or what the loss RNG sees.
/// `core.qp.tx_bursts` is the intentionally-different amortization
/// counter and is excluded.
const WIRE_COUNTERS: &[&str] = &[
    "simnet.fabric.tx_packets",
    "simnet.fabric.tx_bytes",
    "simnet.fabric.delivered",
    "simnet.fabric.dropped_loss",
    "simnet.fabric.pkts_dropped",
    "simnet.dgram.tx_datagrams",
    "simnet.dgram.tx_fragments",
    "simnet.dgram.rx_datagrams",
    "core.qp.tx_msgs",
    "core.qp.tx_segments",
    "core.rx.messages",
    "core.rx.segments",
    "core.rx.crc_errors",
    "core.rx.malformed",
];

/// The tentpole's A/B contract: under a fixed seed the burst datapath is
/// byte-identical on the wire to per-packet — same delivered payloads in
/// the same CQE order, same per-packet loss decisions, same wire-level
/// telemetry — differing only in the amortization counters.
#[test]
fn burst_path_is_wire_identical_to_per_packet() {
    let (pp_out, pp_tel) = run_with(RxMode::Poll, BurstPath::PerPacket);
    let (b_out, b_tel) = run_with(RxMode::Poll, BurstPath::Burst);

    let delivered: usize = pp_out.iter().map(Vec::len).sum();
    assert!(delivered > 0, "seeded 10 % loss run delivered nothing");
    for (qi, baseline) in pp_out.iter().enumerate() {
        assert_eq!(
            baseline, &b_out[qi],
            "qp #{qi}: burst path diverged from per-packet"
        );
    }

    for name in WIRE_COUNTERS {
        assert_eq!(
            pp_tel.get(name),
            b_tel.get(name),
            "wire-level counter {name} diverged across the batching knob"
        );
    }

    // Prove the knob actually engaged: the burst run flushed doorbells,
    // the per-packet run never did. (The lock-amortization claim lives
    // in the `burst` bench, which gates on the ring counters and on the
    // retired shared-lock counter staying absent.)
    assert_eq!(pp_tel.get("core.qp.tx_bursts"), Some(0));
    assert!(b_tel.get("core.qp.tx_bursts").unwrap_or(0) > 0);
}

/// The same contract under the full chaos adversary (drop, duplicate,
/// reorder, corrupt, truncate): a seeded `FaultPlan` must produce
/// byte-identical fault traces and identical verdicts whether the QPs
/// run per-packet or burst.
#[test]
fn burst_path_preserves_chaos_fault_traces() {
    let opts_pp = ChaosOpts {
        send_msgs: 4,
        write_msgs: 4,
        read_msgs: 2,
        dgrams: 16,
        burst_path: BurstPath::PerPacket,
        ..ChaosOpts::default()
    };
    let opts_b = ChaosOpts {
        burst_path: BurstPath::Burst,
        ..opts_pp.clone()
    };
    // Two plans from the tier-1 sweep's seed space: one even, one odd,
    // so both copy paths (the harness alternates them by seed parity)
    // are covered.
    for k in [2u64, 3u64] {
        let seed = derive_seed(0x7E57_C4A0, k);
        let a = run_plan(seed, &opts_pp);
        let b = run_plan(seed, &opts_b);
        assert_eq!(
            a.fault_trace, b.fault_trace,
            "seed {seed:#x}: verbs fault traces diverged across the batching knob"
        );
        assert_eq!(
            a.socket_fault_trace, b.socket_fault_trace,
            "seed {seed:#x}: socket fault traces diverged"
        );
        assert_eq!(a.ok(), b.ok(), "seed {seed:#x}: verdicts diverged");
        assert_eq!(a.verbs, b.verbs, "seed {seed:#x}: verbs summaries diverged");
        assert_eq!(a.socket, b.socket, "seed {seed:#x}: socket summaries diverged");
    }
}

/// Like [`run_with`], but with a full chaos adversary installed on the
/// fabric and the shard pool (optionally core-pinned) as the RX engine.
/// Returns per-QP delivered payloads plus the fabric's injected-fault
/// trace. Every fault decision happens at transmit time on the single
/// sender thread against link-owned RNG state, so both outputs must be
/// byte-stable across shard counts and pinning.
fn run_chaos_sharded(shards: usize, pin: bool) -> (Vec<Vec<Vec<u8>>>, Vec<FaultEvent>) {
    let fab = Fabric::new(WireConfig {
        loss: LossModel::bernoulli(0.05),
        seed: SEED,
        ..WireConfig::default()
    });
    fab.install_fault_plan(FaultPlan {
        drop: LossModel::bernoulli(0.05),
        duplicate: 0.05,
        reorder: 0.10,
        corrupt: 0.02,
        ..FaultPlan::quiet(derive_seed(SEED, 0xC4A0))
    });
    let server = Device::with_config(
        &fab,
        NodeId(1),
        DeviceConfig {
            shard: ShardConfig {
                pin_cores: pin,
                ..ShardConfig::with_shards(shards)
            },
            ..DeviceConfig::default()
        },
    );
    let qp_cfg = QpConfig {
        poll_mode: false,
        copy_path: CopyPath::Sg,
        ..QpConfig::default()
    };
    let mut rx = Vec::new();
    for _ in 0..QPS {
        let send_cq = Cq::new(8);
        let recv_cq = Cq::new(MSGS as usize * 2 + 8);
        let qp = server
            .create_ud_qp(None, &send_cq, &recv_cq, qp_cfg.clone())
            .unwrap();
        assert!(qp.is_sharded());
        let mr = server.register(2 * MSGS as usize * SLOT, Access::Local);
        for i in 0..2 * MSGS as usize {
            qp.post_recv(RecvWr {
                wr_id: i as u64,
                mr: mr.clone(),
                offset: (i * SLOT) as u64,
                len: SLOT as u32,
            })
            .unwrap();
        }
        rx.push((qp, recv_cq, mr));
    }
    let dests: Vec<_> = rx.iter().map(|(qp, _, _)| qp.dest()).collect();
    let client = Device::new(&fab, NodeId(0));
    let c_send = Cq::new(64);
    let c_recv = Cq::new(8);
    let cqp = client
        .create_ud_qp(
            None,
            &c_send,
            &c_recv,
            QpConfig {
                poll_mode: true,
                copy_path: CopyPath::Sg,
                ..QpConfig::default()
            },
        )
        .unwrap();
    for seq in 0..MSGS {
        for (qi, dest) in dests.iter().enumerate() {
            let mut payload = vec![0u8; 96];
            payload[0] = qi as u8;
            payload[1..5].copy_from_slice(&seq.to_le_bytes());
            cqp.post_send(u64::from(seq), payload, *dest).unwrap();
            while c_send.poll().is_some() {}
        }
    }
    fab.chaos_flush();

    let mut out: Vec<Vec<Vec<u8>>> = vec![Vec::new(); QPS];
    let mut quiet_since = Instant::now();
    while quiet_since.elapsed() < Duration::from_millis(300) {
        let mut any = false;
        for (qi, (_, recv_cq, mr)) in rx.iter().enumerate() {
            while let Some(cqe) = recv_cq.poll() {
                if cqe.status != CqeStatus::Success {
                    continue;
                }
                let data = mr
                    .read_vec(cqe.wr_id * SLOT as u64, cqe.byte_len as usize)
                    .unwrap();
                out[qi].push(data);
                any = true;
            }
        }
        if any {
            quiet_since = Instant::now();
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let trace = fab.fault_trace();
    (out, trace)
}

/// The per-link seeding contract across the scale-out axes: a fixed seed
/// produces byte-identical delivered payloads *and* chaos fault traces
/// whether the RX side runs 1 shard or 4, pinned or unpinned. Shard
/// interleaving and scheduler placement must never reach the wire RNGs.
#[test]
fn shard_count_and_pinning_do_not_change_bytes_or_faults() {
    let (base_out, base_trace) = run_chaos_sharded(1, false);
    let delivered: usize = base_out.iter().map(Vec::len).sum();
    assert!(delivered > 0, "chaos run delivered nothing");
    assert!(
        !base_trace.is_empty(),
        "fault plan injected nothing — the adversary is not engaged"
    );
    for (shards, pin) in [(4, false), (1, true), (4, true)] {
        let (out, trace) = run_chaos_sharded(shards, pin);
        assert_eq!(
            base_out, out,
            "{shards}-shard pin={pin}: delivered payloads diverged from 1-shard unpinned"
        );
        assert_eq!(
            base_trace, trace,
            "{shards}-shard pin={pin}: fault trace diverged from 1-shard unpinned"
        );
    }
}

/// Runs a loss-free streaming bulk read under one (batching, shard count,
/// congestion controller) combination and returns the delivered bytes
/// plus the final telemetry snapshot. The responder is sharded (the read
/// responses are generated on shard threads); the requester drives the
/// engine from the test thread in poll mode. RTO timers are pinned far
/// beyond the transfer time so a loss-free run must never repost — any
/// wire-counter drift across combinations is a real protocol leak, not
/// timer noise.
fn run_bulk_read(burst: BurstPath, shards: usize, algo: CcAlgo) -> (Vec<u8>, Snapshot) {
    const TOTAL: usize = 12 * 8 * 1024;
    let fab = Fabric::new(WireConfig {
        seed: SEED,
        ..WireConfig::default()
    });
    let requester = Device::new(&fab, NodeId(0));
    let responder = Device::with_config(
        &fab,
        NodeId(1),
        DeviceConfig {
            shard: ShardConfig::with_shards(shards),
            ..DeviceConfig::default()
        },
    );
    let recv_cq = Cq::new(8);
    let qa = requester
        .create_ud_qp(
            None,
            &Cq::new(64),
            &recv_cq,
            QpConfig {
                poll_mode: true,
                copy_path: CopyPath::Sg,
                burst_path: burst,
                read_ttl: Duration::from_secs(30),
                ..QpConfig::default()
            },
        )
        .unwrap();
    let qb = responder
        .create_ud_qp(
            None,
            &Cq::new(64),
            &Cq::new(64),
            QpConfig {
                copy_path: CopyPath::Sg,
                burst_path: burst,
                ..QpConfig::default()
            },
        )
        .unwrap();
    assert!(qb.is_sharded());

    let data: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();
    let src = responder.register_with(&data, Access::RemoteRead);
    let sink = requester.register(TOTAL, Access::Local);
    let mut xfer = BulkRead::new(
        BulkReadConfig {
            batch_bytes: 8 * 1024,
            window: 4,
            signal: SignalInterval::Every(2),
            recovery: RecoveryConfig {
                algo,
                initial_rto: Duration::from_secs(5),
                min_rto: Duration::from_secs(5),
                max_rto: Duration::from_secs(10),
                ..RecoveryConfig::default()
            },
            ..BulkReadConfig::default()
        },
        &sink,
        0,
        TOTAL as u64,
        qb.dest(),
        src.stag(),
        0,
    );
    let start = Instant::now();
    let mut finished = false;
    while start.elapsed() < Duration::from_secs(10) {
        qa.progress_burst(256, Duration::from_micros(100));
        if xfer.step(&qa, start.elapsed()).expect("bulk read step") {
            finished = true;
            break;
        }
    }
    assert!(finished, "loss-free bulk read did not finish");
    let report = xfer.report();
    assert!(!report.dead);
    assert_eq!(report.reposts, 0, "loss-free transfer reposted");
    assert_eq!(report.bytes, TOTAL as u64);
    let got = sink.read_vec(0, TOTAL).unwrap();
    assert_eq!(got, data, "bulk read delivered wrong bytes");
    (got, fab.telemetry().snapshot())
}

/// The read engine's determinism contract: a loss-free bulk read delivers
/// identical bytes and identical wire-level traffic across the batching
/// knob, the responder shard count, and every congestion controller.
/// Congestion control may change *when* batches are requested (window
/// growth) but never *what* crosses the wire on a clean network.
#[test]
fn bulk_read_is_wire_identical_across_paths_shards_and_cc() {
    let mut baseline: Option<(Vec<u8>, Snapshot)> = None;
    for burst in [BurstPath::PerPacket, BurstPath::Burst] {
        for shards in [1usize, 4] {
            for algo in CcAlgo::ALL {
                let (bytes, tel) = run_bulk_read(burst, shards, algo);
                let Some((base_bytes, base_tel)) = &baseline else {
                    baseline = Some((bytes, tel));
                    continue;
                };
                assert_eq!(
                    base_bytes, &bytes,
                    "{burst:?}/{shards}-shard/{algo:?}: delivered bytes diverged"
                );
                for name in WIRE_COUNTERS {
                    assert_eq!(
                        base_tel.get(name),
                        tel.get(name),
                        "{burst:?}/{shards}-shard/{algo:?}: wire counter {name} diverged"
                    );
                }
            }
        }
    }
}

/// The per-link RNG ownership contract at the wire level: link A's loss
/// draw sequence (and therefore its delivered-packet pattern) is
/// unchanged when link B's traffic is interleaved between A's sends. On
/// the old global-RNG fabric, B's rolls advanced A's stream.
#[test]
fn link_a_draws_unchanged_by_link_b_traffic() {
    let pattern_at_a = |with_b: bool| -> Vec<bool> {
        let fab = Fabric::new(WireConfig {
            loss: LossModel::bernoulli(0.2),
            seed: SEED,
            ..WireConfig::default()
        });
        let tx = fab.bind(Addr::new(0, 1)).unwrap();
        let a = fab.bind(Addr::new(1, 1)).unwrap();
        let b = fab.bind(Addr::new(2, 1)).unwrap();
        let mut delivered = Vec::new();
        for i in 0..400u32 {
            let before = a.pending();
            tx.send_to(a.local_addr(), bytes::Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
            delivered.push(a.pending() > before);
            if with_b {
                tx.send_to(b.local_addr(), bytes::Bytes::from(vec![0u8; 32]))
                    .unwrap();
            }
        }
        delivered
    };
    let alone = pattern_at_a(false);
    let shared = pattern_at_a(true);
    assert!(alone.iter().any(|d| !*d), "20 % loss dropped nothing");
    assert_eq!(
        alone, shared,
        "link B's traffic perturbed link A's loss draw sequence"
    );
}

/// The replicated-log workload's determinism contract (PR 9): one seeded
/// lossy run — drops, duplicates, reorders, a mid-run leader freeze with
/// fail-over, hole refetches over `BulkRead` — must produce an identical
/// event/lease history and an identical fault trace across the doorbell
/// path, the device shard count, and every refetch congestion
/// controller. Shards are inert for poll-mode QPs, the refetch window
/// fits inside every algo's initial cwnd, and bursting only groups
/// doorbells; none of the three may leak into protocol behaviour, or
/// `replog --replay <seed>` stops reproducing failures byte-for-byte.
#[test]
fn replog_history_is_identical_across_burst_shards_and_cc() {
    use datagram_iwarp::apps::replog::{Cluster, History, ReplogConfig};

    let run = |burst: BurstPath, shards: usize, algo: CcAlgo| -> (History, Vec<FaultEvent>) {
        let fab = Fabric::new(WireConfig::default());
        fab.install_fault_plan(FaultPlan::from_seed(derive_seed(SEED, 0x9E09)));
        let cfg = ReplogConfig {
            entries: 10,
            freeze: Some((300, 500)),
            shards,
            burst,
            cc: algo,
            ..ReplogConfig::default()
        };
        let mut cluster = Cluster::new(&fab, cfg);
        let out = cluster.run();
        assert!(
            out.converged,
            "{burst:?}/{shards}-shard/{algo:?}: replog run failed to converge"
        );
        fab.chaos_flush();
        (out.history, fab.fault_trace())
    };

    let mut baseline: Option<(History, Vec<FaultEvent>)> = None;
    for burst in [BurstPath::PerPacket, BurstPath::Burst] {
        for shards in [1usize, 4] {
            for algo in CcAlgo::ALL {
                let (history, trace) = run(burst, shards, algo);
                let Some((base_hist, base_trace)) = &baseline else {
                    baseline = Some((history, trace));
                    continue;
                };
                assert_eq!(
                    base_hist.digest(),
                    history.digest(),
                    "{burst:?}/{shards}-shard/{algo:?}: history digest diverged"
                );
                assert_eq!(
                    base_hist, &history,
                    "{burst:?}/{shards}-shard/{algo:?}: event/lease history diverged"
                );
                assert_eq!(
                    base_trace, &trace,
                    "{burst:?}/{shards}-shard/{algo:?}: fault trace diverged"
                );
            }
        }
    }
}
