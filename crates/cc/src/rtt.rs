//! RFC-6298-style round-trip-time estimation.
//!
//! Maintains SRTT/RTTVAR with the standard exponential smoothing and
//! derives the retransmission timeout as `SRTT + 4·RTTVAR`, clamped to a
//! configurable `[min, max]` band. Timeout backoff doubles the RTO per
//! consecutive expiry (Karn's algorithm: the backoff only unwinds once a
//! *fresh* sample arrives or the cumulative ACK advances). Samples are
//! expected to be Karn-filtered by the caller — the
//! [`crate::engine::RecoveryEngine`] only samples segments that were
//! transmitted exactly once, so retransmission ambiguity never pollutes
//! the estimate.

use std::time::Duration;

/// Smoothed RTT state plus the derived, backed-off RTO.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    /// RTO before backoff, clamped to `[min, max]`.
    base_rto: Duration,
    /// Consecutive-timeout exponent (0 = no backoff).
    backoff: u32,
    min: Duration,
    max: Duration,
    /// When false the RTO never backs off (the legacy fixed-timer
    /// discipline `CcAlgo::Fixed` preserves for `rdgram`).
    backoff_enabled: bool,
}

impl RttEstimator {
    /// A fresh estimator starting from `initial` RTO, clamped to
    /// `[min, max]` once samples arrive.
    #[must_use]
    pub fn new(initial: Duration, min: Duration, max: Duration, backoff_enabled: bool) -> Self {
        let max = max.max(min);
        Self {
            srtt: None,
            rttvar: Duration::ZERO,
            base_rto: initial.clamp(min, max),
            backoff: 0,
            min,
            max,
            backoff_enabled,
        }
    }

    /// Feeds one Karn-clean RTT sample (RFC 6298 §2) and unwinds any
    /// timeout backoff.
    pub fn on_sample(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = srtt.abs_diff(rtt);
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.base_rto = (srtt + self.rttvar * 4).clamp(self.min, self.max);
        self.backoff = 0;
    }

    /// Doubles the RTO after a timeout (no-op when backoff is disabled).
    pub fn on_backoff(&mut self) {
        if self.backoff_enabled {
            self.backoff = (self.backoff + 1).min(16);
        }
    }

    /// Unwinds the backoff without a sample (cumulative-ACK progress —
    /// the retransmission worked, even if Karn filtering discarded its
    /// timing).
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// The current (backed-off, clamped) retransmission timeout.
    #[must_use]
    pub fn rto(&self) -> Duration {
        self.base_rto
            .saturating_mul(1u32 << self.backoff.min(16))
            .min(self.max)
    }

    /// The smoothed RTT, once at least one sample has arrived.
    #[must_use]
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// The smoothed RTT deviation.
    #[must_use]
    pub fn rttvar(&self) -> Duration {
        self.rttvar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn first_sample_seeds_srtt_and_rto() {
        let mut e = RttEstimator::new(20 * MS, MS, Duration::from_secs(1), true);
        assert_eq!(e.rto(), 20 * MS);
        e.on_sample(8 * MS);
        assert_eq!(e.srtt(), Some(8 * MS));
        // RTO = srtt + 4*rttvar = 8 + 4*4 = 24 ms.
        assert_eq!(e.rto(), 24 * MS);
    }

    #[test]
    fn smoothing_converges_toward_stable_rtt() {
        let mut e = RttEstimator::new(20 * MS, MS, Duration::from_secs(1), true);
        for _ in 0..64 {
            e.on_sample(5 * MS);
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_micros() as i64 - 5_000).abs() < 200, "srtt={srtt:?}");
        // rttvar decays toward 0, so rto approaches srtt (clamped at min).
        assert!(e.rto() < 8 * MS, "rto={:?}", e.rto());
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::new(10 * MS, MS, Duration::from_secs(1), true);
        e.on_backoff();
        assert_eq!(e.rto(), 20 * MS);
        e.on_backoff();
        assert_eq!(e.rto(), 40 * MS);
        e.on_sample(10 * MS);
        assert_eq!(e.rto(), 30 * MS); // 10 + 4*5, backoff unwound
    }

    #[test]
    fn backoff_respects_max_and_disabled_mode() {
        let mut fixed = RttEstimator::new(10 * MS, 10 * MS, Duration::from_secs(1), false);
        for _ in 0..8 {
            fixed.on_backoff();
        }
        assert_eq!(fixed.rto(), 10 * MS, "disabled backoff must hold the RTO fixed");

        let mut e = RttEstimator::new(100 * MS, MS, 300 * MS, true);
        for _ in 0..8 {
            e.on_backoff();
        }
        assert_eq!(e.rto(), 300 * MS);
    }

    #[test]
    fn rto_clamped_to_min() {
        let mut e = RttEstimator::new(20 * MS, 5 * MS, Duration::from_secs(1), true);
        for _ in 0..32 {
            e.on_sample(Duration::from_micros(50));
        }
        assert_eq!(e.rto(), 5 * MS);
    }
}
