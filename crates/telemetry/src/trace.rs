//! Bounded ring-buffer packet-event tracer.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Default ring capacity (events, not bytes).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Identifies one traced endpoint: a `(node, port)` pair packed into a
/// `u32` so the telemetry crate stays independent of `simnet`'s types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

impl EndpointId {
    /// Packs a node id and port.
    #[must_use]
    pub fn new(node: u16, port: u16) -> Self {
        Self((u32::from(node) << 16) | u32::from(port))
    }

    /// The node half.
    #[must_use]
    pub fn node(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The port half.
    #[must_use]
    pub fn port(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node(), self.port())
    }
}

/// What happened to a packet (or message) at an instrumented point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Queued for transmission above the wire (conduit/QP egress).
    Enqueue,
    /// Handed to the fabric for transmission.
    Tx,
    /// Arrived at a receive endpoint.
    Rx,
    /// Dropped (loss model, unreachable destination, or overflow).
    Drop,
    /// Re-sent after a timeout or duplicate-ACK signal.
    Retransmit,
    /// Payload bytes placed into a receive or tagged buffer.
    Placement,
    /// A completion queue entry was delivered.
    Cqe,
    /// Dropped by an installed chaos fault plan (distinct from the
    /// baseline loss model's `Drop`).
    ChaosDrop,
    /// An extra copy of the packet was injected by the fault plan.
    Duplicate,
    /// The packet was held back to be released out of order.
    Reorder,
    /// A single bit of the frame was flipped in flight.
    Corrupt,
    /// The frame was cut short in flight.
    Truncate,
    /// Dropped because the link was inside a partition window.
    Partition,
}

/// One traced event. `a`/`b` are kind-specific details (lengths, message
/// ids, offsets) documented at each instrumentation site.
#[derive(Clone, Copy, Debug)]
pub struct PacketEvent {
    /// Monotonic sequence number within the telemetry domain.
    pub seq: u64,
    /// Timestamp from `Telemetry::now_nanos` at record time.
    pub t_nanos: u64,
    /// Endpoint the event is attributed to.
    pub endpoint: EndpointId,
    /// What happened.
    pub kind: EventKind,
    /// First detail word (conventionally a byte length).
    pub a: u64,
    /// Second detail word (conventionally a message/sequence id).
    pub b: u64,
}

/// A bounded ring of [`PacketEvent`]s, enabled per endpoint.
///
/// The disabled-path cost — the one paid on every packet of every
/// untraced run — is a single relaxed boolean load.
pub struct Tracer {
    armed: AtomicBool,
    all: AtomicBool,
    enabled: Mutex<HashSet<EndpointId>>,
    seq: AtomicU64,
    ring: Mutex<Ring>,
}

struct Ring {
    buf: Vec<PacketEvent>,
    capacity: usize,
    next: usize,
    dropped: u64,
}

impl Tracer {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            armed: AtomicBool::new(false),
            all: AtomicBool::new(false),
            enabled: Mutex::new(HashSet::new()),
            seq: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                capacity: capacity.max(1),
                next: 0,
                dropped: 0,
            }),
        }
    }

    /// Starts tracing events attributed to `endpoint`.
    pub fn enable(&self, endpoint: EndpointId) {
        self.enabled.lock().insert(endpoint);
        self.armed.store(true, Ordering::Release);
    }

    /// Starts tracing every endpoint (lossy-test debugging).
    pub fn enable_all(&self) {
        self.all.store(true, Ordering::Release);
        self.armed.store(true, Ordering::Release);
    }

    /// Stops tracing `endpoint`.
    pub fn disable(&self, endpoint: EndpointId) {
        let mut set = self.enabled.lock();
        set.remove(&endpoint);
        if set.is_empty() && !self.all.load(Ordering::Acquire) {
            self.armed.store(false, Ordering::Release);
        }
    }

    /// Stops tracing everywhere and clears per-endpoint enables.
    pub fn disable_all(&self) {
        self.all.store(false, Ordering::Release);
        self.enabled.lock().clear();
        self.armed.store(false, Ordering::Release);
    }

    /// Whether any endpoint is currently traced — the hot-path gate.
    /// Instrumented layers call this first and skip event construction
    /// entirely when it returns `false`.
    #[inline]
    #[must_use]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Records an event for `endpoint` if it is traced. `t_nanos` comes
    /// from `Telemetry::now_nanos` so manual clocks apply.
    pub fn record(&self, t_nanos: u64, endpoint: EndpointId, kind: EventKind, a: u64, b: u64) {
        if !self.armed() {
            return;
        }
        if !self.all.load(Ordering::Acquire) && !self.enabled.lock().contains(&endpoint) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = PacketEvent {
            seq,
            t_nanos,
            endpoint,
            kind,
            a,
            b,
        };
        let mut ring = self.ring.lock();
        if ring.buf.len() < ring.capacity {
            ring.buf.push(ev);
        } else {
            // Overwrite the oldest slot; the dump reorders by seq.
            let at = ring.next;
            ring.buf[at] = ev;
            ring.dropped += 1;
        }
        ring.next = (ring.next + 1) % ring.capacity;
    }

    /// Copies out the retained events, oldest first, plus how many were
    /// overwritten by ring wrap-around.
    #[must_use]
    pub fn dump(&self) -> TraceDump {
        let ring = self.ring.lock();
        let mut events = ring.buf.clone();
        events.sort_by_key(|e| e.seq);
        TraceDump {
            events,
            overwritten: ring.dropped,
        }
    }

    /// Discards all retained events (enables stay as they are).
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.buf.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
}

/// Result of [`Tracer::dump`]: the retained timeline.
#[derive(Clone, Debug)]
pub struct TraceDump {
    /// Retained events, oldest first.
    pub events: Vec<PacketEvent>,
    /// Events lost to ring wrap-around before this dump.
    pub overwritten: u64,
}

impl fmt::Display for TraceDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "packet trace: {} events ({} overwritten)",
            self.events.len(),
            self.overwritten
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  [{:>6}] {:>12}ns {:>11} {:<10} a={} b={}",
                e.seq,
                e.t_nanos,
                e.endpoint.to_string(),
                format!("{:?}", e.kind),
                e.a,
                e.b
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        assert!(!t.armed());
        t.record(0, EndpointId::new(0, 1), EventKind::Tx, 10, 0);
        assert!(t.dump().events.is_empty());
    }

    #[test]
    fn per_endpoint_filtering() {
        let t = Tracer::new(8);
        let a = EndpointId::new(0, 1);
        let b = EndpointId::new(1, 1);
        t.enable(a);
        t.record(1, a, EventKind::Tx, 1, 0);
        t.record(2, b, EventKind::Tx, 2, 0);
        let d = t.dump();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].endpoint, a);
        t.disable(a);
        assert!(!t.armed());
    }

    #[test]
    fn ring_keeps_newest() {
        let t = Tracer::new(4);
        t.enable_all();
        for i in 0..10u64 {
            t.record(i, EndpointId::new(0, 0), EventKind::Rx, i, 0);
        }
        let d = t.dump();
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.overwritten, 6);
        let seqs: Vec<u64> = d.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn endpoint_packing_roundtrips() {
        let e = EndpointId::new(513, 65535);
        assert_eq!(e.node(), 513);
        assert_eq!(e.port(), 65535);
        assert_eq!(e.to_string(), "513:65535");
    }
}
