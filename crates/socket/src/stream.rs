//! Stream sockets over RC queue pairs.
//!
//! TCP-socket semantics through the shim: `send` may be any size (the shim
//! segments into verbs messages), `recv` returns whatever bytes are
//! available next, and message boundaries dissolve at the receiver —
//! applications written against stream sockets work unchanged.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use iwarp_telemetry::Counter;
use parking_lot::Mutex;
use simnet::Addr;

use iwarp::qp::RcListener;
use iwarp::wr::RecvWr;
use iwarp::{Access, Cq, CqeOpcode, CqeStatus, IwarpError, IwarpResult, MemoryRegion, RcQp};

use crate::stack::{FdKind, FdSlot, StackInner};

/// Fabric-domain telemetry handles for one stream socket.
struct StreamTel {
    tx_bytes: Counter,
    rx_bytes: Counter,
    tx_chunks: Counter,
}

impl StreamTel {
    fn new(tel: &iwarp_telemetry::Telemetry) -> Self {
        Self {
            tx_bytes: tel.counter("socket.stream.tx_bytes"),
            rx_bytes: tel.counter("socket.stream.rx_bytes"),
            tx_chunks: tel.counter("socket.stream.tx_chunks"),
        }
    }
}

struct StreamInner {
    fd: FdSlot,
    stack: Arc<StackInner>,
    qp: RcQp,
    send_cq: Cq,
    recv_cq: Cq,
    slot_mr: MemoryRegion,
    slot_size: usize,
    rx: Mutex<VecDeque<u8>>,
    tel: StreamTel,
    /// Accounting for this socket's buffer pool (drives Fig. 11).
    _mem: Option<iwarp_common::memacct::MemScope>,
}

/// A TCP-like socket whose data path is RC iWARP.
pub struct StreamSocket {
    inner: Arc<StreamInner>,
}

impl StreamSocket {
    pub(crate) fn connect(stack: Arc<StackInner>, remote: Addr) -> IwarpResult<Self> {
        let cfg = &stack.cfg;
        let depth = cfg.recv_slots * 2 + 32;
        let send_cq = Cq::new(depth);
        let recv_cq = Cq::new(depth);
        let qp = stack
            .device
            .rc_connect(remote, &send_cq, &recv_cq, cfg.qp.clone())?;
        Self::build(stack, qp, send_cq, recv_cq)
    }

    pub(crate) fn build(
        stack: Arc<StackInner>,
        qp: RcQp,
        send_cq: Cq,
        recv_cq: Cq,
    ) -> IwarpResult<Self> {
        let cfg = &stack.cfg;
        let slot_mr = stack
            .device
            .register(cfg.recv_slots * cfg.slot_size, Access::Local);
        for i in 0..cfg.recv_slots {
            qp.post_recv(RecvWr {
                wr_id: i as u64,
                mr: slot_mr.clone(),
                offset: (i * cfg.slot_size) as u64,
                len: cfg.slot_size as u32,
            })?;
        }
        let fd = stack.alloc_fd(FdKind::Stream);
        let mem = stack
            .device
            .mem()
            .map(|r| r.track("socket_buffers", slot_mr.len() as u64));
        let tel = StreamTel::new(stack.device.telemetry());
        Ok(Self {
            inner: Arc::new(StreamInner {
                fd,
                slot_size: cfg.slot_size,
                stack,
                qp,
                send_cq,
                recv_cq,
                slot_mr,
                rx: Mutex::new(VecDeque::new()),
                tel,
                _mem: mem,
            }),
        })
    }

    /// The shim's file-descriptor number.
    #[must_use]
    pub fn fd(&self) -> u32 {
        self.inner.fd.fd
    }

    /// Local endpoint address.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.inner.qp.local_addr()
    }

    /// Remote endpoint address.
    #[must_use]
    pub fn peer_addr(&self) -> Addr {
        self.inner.qp.peer_addr()
    }

    /// Writes all of `buf` to the stream (segmenting into verbs messages
    /// no larger than the peer's receive slots).
    pub fn send(&self, buf: &[u8]) -> IwarpResult<()> {
        let inner = &self.inner;
        for chunk in buf.chunks(inner.slot_size.max(1)) {
            inner.qp.post_send(0, chunk)?;
            inner.tel.tx_chunks.inc();
            while inner.send_cq.poll().is_some() {}
        }
        inner.tel.tx_bytes.add(buf.len() as u64);
        Ok(())
    }

    /// Reads up to `buf.len()` bytes, blocking at most `timeout`.
    pub fn recv(&self, buf: &mut [u8], timeout: Duration) -> IwarpResult<usize> {
        let inner = &self.inner;
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut rx = inner.rx.lock();
                if !rx.is_empty() {
                    let n = rx.len().min(buf.len());
                    let (a, b) = rx.as_slices();
                    let ta = a.len().min(n);
                    buf[..ta].copy_from_slice(&a[..ta]);
                    if ta < n {
                        buf[ta..n].copy_from_slice(&b[..n - ta]);
                    }
                    rx.drain(..n);
                    return Ok(n);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(IwarpError::PollTimeout);
            }
            let cqe = if inner.stack.cfg.qp.poll_mode {
                match inner.recv_cq.poll() {
                    Some(c) => c,
                    None => {
                        inner
                            .qp
                            .progress((deadline - now).min(Duration::from_millis(20)));
                        continue;
                    }
                }
            } else {
                match inner.recv_cq.poll_timeout(deadline - now) {
                    Ok(c) => c,
                    Err(IwarpError::PollTimeout) => continue,
                    Err(e) => return Err(e),
                }
            };
            match (cqe.opcode, cqe.status) {
                (CqeOpcode::Recv, CqeStatus::Success) => {
                    let slot = cqe.wr_id as usize;
                    let off = (slot * inner.slot_size) as u64;
                    let data = inner.slot_mr.read_vec(off, cqe.byte_len as usize)?;
                    // Repost may fail once the QP has entered the error
                    // state (peer closed); completions already queued must
                    // still be served, so the failure is not propagated.
                    let _ = inner.qp.post_recv(RecvWr {
                        wr_id: slot as u64,
                        mr: inner.slot_mr.clone(),
                        offset: off,
                        len: inner.slot_size as u32,
                    });
                    inner.tel.rx_bytes.add(data.len() as u64);
                    inner.rx.lock().extend(data);
                }
                (CqeOpcode::Recv, CqeStatus::Flushed) => {
                    return Err(IwarpError::Net(simnet::NetError::Closed));
                }
                _ => {}
            }
        }
    }

    /// Non-blocking receive: drains any completed work (driving the QP
    /// engine in poll mode) and returns bytes if available. The building
    /// block for event loops over many connections.
    pub fn try_recv(&self, buf: &mut [u8]) -> IwarpResult<Option<usize>> {
        let inner = &self.inner;
        if inner.stack.cfg.qp.poll_mode {
            inner.qp.progress(Duration::ZERO);
        }
        loop {
            {
                let mut rx = inner.rx.lock();
                if !rx.is_empty() {
                    let n = rx.len().min(buf.len());
                    let (a, b) = rx.as_slices();
                    let ta = a.len().min(n);
                    buf[..ta].copy_from_slice(&a[..ta]);
                    if ta < n {
                        buf[ta..n].copy_from_slice(&b[..n - ta]);
                    }
                    rx.drain(..n);
                    return Ok(Some(n));
                }
            }
            let Some(cqe) = inner.recv_cq.poll() else {
                return Ok(None);
            };
            match (cqe.opcode, cqe.status) {
                (CqeOpcode::Recv, CqeStatus::Success) => {
                    let slot = cqe.wr_id as usize;
                    let off = (slot * inner.slot_size) as u64;
                    let data = inner.slot_mr.read_vec(off, cqe.byte_len as usize)?;
                    let _ = inner.qp.post_recv(RecvWr {
                        wr_id: slot as u64,
                        mr: inner.slot_mr.clone(),
                        offset: off,
                        len: inner.slot_size as u32,
                    });
                    inner.tel.rx_bytes.add(data.len() as u64);
                    inner.rx.lock().extend(data);
                }
                (CqeOpcode::Recv, CqeStatus::Flushed) => {
                    return Err(IwarpError::Net(simnet::NetError::Closed));
                }
                _ => {}
            }
        }
    }

    /// Reads exactly `buf.len()` bytes.
    pub fn recv_exact(&self, buf: &mut [u8], timeout: Duration) -> IwarpResult<()> {
        let deadline = Instant::now() + timeout;
        let mut filled = 0;
        while filled < buf.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(IwarpError::PollTimeout);
            }
            filled += self.recv(&mut buf[filled..], deadline - now)?;
        }
        Ok(())
    }
}

impl Drop for StreamSocket {
    fn drop(&mut self) {
        self.inner.stack.release_fd(self.inner.fd);
    }
}

/// A listening stream socket.
pub struct StreamListener {
    fd: FdSlot,
    stack: Arc<StackInner>,
    listener: RcListener,
}

impl StreamListener {
    pub(crate) fn bind(stack: Arc<StackInner>, port: u16) -> IwarpResult<Self> {
        let listener = stack.device.rc_listen(port)?;
        let fd = stack.alloc_fd(FdKind::Listener);
        Ok(Self {
            fd,
            stack,
            listener,
        })
    }

    /// The shim's file-descriptor number.
    #[must_use]
    pub fn fd(&self) -> u32 {
        self.fd.fd
    }

    /// The listening address.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.listener.local_addr()
    }

    /// Accepts one incoming connection.
    pub fn accept(&self, timeout: Duration) -> IwarpResult<StreamSocket> {
        let cfg = &self.stack.cfg;
        let depth = cfg.recv_slots * 2 + 32;
        let send_cq = Cq::new(depth);
        let recv_cq = Cq::new(depth);
        let qp = self
            .listener
            .accept(timeout, &send_cq, &recv_cq, cfg.qp.clone())?;
        StreamSocket::build(Arc::clone(&self.stack), qp, send_cq, recv_cq)
    }
}

impl Drop for StreamListener {
    fn drop(&mut self) {
        self.stack.release_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::SocketStack;
    use simnet::{Fabric, NodeId};

    const TO: Duration = Duration::from_secs(5);

    #[test]
    fn stream_roundtrip() {
        let fab = Fabric::loopback();
        let sa = SocketStack::new(&fab, NodeId(0));
        let sb = SocketStack::new(&fab, NodeId(1));
        let listener = sb.listen(8000).unwrap();
        std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(TO).unwrap());
            let client = sa.connect(Addr::new(1, 8000)).unwrap();
            let server = srv.join().unwrap();
            client.send(b"stream hello").unwrap();
            let mut buf = [0u8; 12];
            server.recv_exact(&mut buf, TO).unwrap();
            assert_eq!(&buf, b"stream hello");
            server.send(b"reply").unwrap();
            let mut buf = [0u8; 5];
            client.recv_exact(&mut buf, TO).unwrap();
            assert_eq!(&buf, b"reply");
        });
    }

    #[test]
    fn message_boundaries_dissolve() {
        // Two sends, one large recv: byte-stream semantics.
        let fab = Fabric::loopback();
        let sa = SocketStack::new(&fab, NodeId(0));
        let sb = SocketStack::new(&fab, NodeId(1));
        let listener = sb.listen(8001).unwrap();
        std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(TO).unwrap());
            let client = sa.connect(Addr::new(1, 8001)).unwrap();
            let server = srv.join().unwrap();
            client.send(b"part1-").unwrap();
            client.send(b"part2").unwrap();
            let mut buf = [0u8; 11];
            server.recv_exact(&mut buf, TO).unwrap();
            assert_eq!(&buf, b"part1-part2");
        });
    }

    #[test]
    fn large_transfer_segmented() {
        let fab = Fabric::loopback();
        let sa = SocketStack::new(&fab, NodeId(0));
        let sb = SocketStack::new(&fab, NodeId(1));
        let listener = sb.listen(8002).unwrap();
        std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(TO).unwrap());
            let client = sa.connect(Addr::new(1, 8002)).unwrap();
            let server = srv.join().unwrap();
            let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
            let expect = data.clone();
            s.spawn(move || client.send(&data).unwrap());
            let mut got = vec![0u8; expect.len()];
            server.recv_exact(&mut got, TO).unwrap();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn poll_mode_stream_roundtrip() {
        let fab = Fabric::loopback();
        let cfg = crate::stack::SocketConfig {
            qp: iwarp::QpConfig {
                poll_mode: true,
                ..iwarp::QpConfig::default()
            },
            ..crate::stack::SocketConfig::default()
        };
        let sa = SocketStack::with_config(&fab, NodeId(0), Default::default(), cfg.clone());
        let sb = SocketStack::with_config(&fab, NodeId(1), Default::default(), cfg);
        let listener = sb.listen(8010).unwrap();
        std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(TO).unwrap());
            let client = sa.connect(Addr::new(1, 8010)).unwrap();
            let server = srv.join().unwrap();
            client.send(b"threads: zero").unwrap();
            let mut buf = [0u8; 13];
            server.recv_exact(&mut buf, TO).unwrap();
            assert_eq!(&buf, b"threads: zero");
            server.send(b"ack").unwrap();
            let mut buf = [0u8; 3];
            client.recv_exact(&mut buf, TO).unwrap();
            assert_eq!(&buf, b"ack");
        });
    }

    #[test]
    fn connect_to_nothing_fails() {
        let fab = Fabric::loopback();
        let sa = SocketStack::new(&fab, NodeId(0));
        assert!(sa.connect(Addr::new(9, 9)).is_err());
    }
}
