//! Fixed-bucket log2 histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one per power of two that fits in a `u64`.
pub const BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples with log2 buckets.
///
/// Bucket `i` holds samples whose value `v` satisfies `ilog2(v) == i`
/// (bucket 0 additionally holds `v == 0`), i.e. `v` in
/// `[2^i, 2^(i+1))`. Bucketing depends only on the sample values, so a
/// seeded run reproduces its histogram exactly.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: Arc<Cells>,
}

#[derive(Debug)]
struct Cells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Cells {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket `value` falls in.
#[inline]
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        value.ilog2() as usize
    }
}

impl Histogram {
    /// Creates a detached histogram (registry use normally goes through
    /// `Telemetry::histogram`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Occupancy of bucket `i`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.inner.buckets[i].load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the p-th percentile (0–100): the top edge
    /// of the bucket where the cumulative count crosses `p`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for i in 0..BUCKETS {
            cum += self.bucket(i);
            if cum >= target {
                return if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }

    /// Appends `name.count`, `name.sum`, and each non-empty bucket as
    /// `name.le_<upper>` (upper bound inclusive) to `out`.
    pub(crate) fn export(&self, name: &str, out: &mut Vec<(String, u64)>) {
        out.push((format!("{name}.count"), self.count()));
        out.push((format!("{name}.sum"), self.sum()));
        for i in 0..BUCKETS {
            let n = self.bucket(i);
            if n > 0 {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                out.push((format!("{name}.le_{upper}"), n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_and_stats() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1500, 1500] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3006);
        assert_eq!(h.bucket(0), 1); // 1
        assert_eq!(h.bucket(1), 2); // 2, 3
        assert_eq!(h.bucket(10), 2); // 1500 ×2
        assert!(h.mean() > 600.0 && h.mean() < 602.0);
    }

    #[test]
    fn percentile_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(100_000);
        // p50 falls in the [64,128) bucket → upper edge 127.
        assert_eq!(h.percentile(50.0), 127);
        assert!(h.percentile(100.0) >= 100_000);
    }

    #[test]
    fn deterministic_export() {
        let mk = || {
            let h = Histogram::new();
            for v in [5u64, 5, 9, 300] {
                h.record(v);
            }
            let mut out = Vec::new();
            h.export("h", &mut out);
            out
        };
        assert_eq!(mk(), mk());
    }
}
