//! Media streaming workload (the paper's VLC experiment, §VI.B.1).
//!
//! A server streams a media object to one client; the client reports the
//! **initial buffering time** — how long until `prebuffer_bytes` of media
//! are locally buffered and playback could start — plus total transfer
//! statistics. Three transports reproduce the paper's comparisons:
//!
//! * [`run_udp_session`] — UDP-style streaming through the iWARP socket
//!   shim over a **UD QP** (send/recv or Write-Record, per the stack's
//!   [`iwarp_socket::DgramMode`]);
//! * [`run_http_session`] — VLC's RC-compatible mode: an HTTP/1.0 GET over
//!   a **stream socket** (RC QP), headers included, which is how the paper
//!   compares UD against a connection-oriented transport;
//! * [`run_native_udp_session`] — the same flow over the raw datagram
//!   conduit with *no iWARP stack at all*, the baseline for the ~2 %
//!   shim-overhead measurement (§VI.B.2).

use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use simnet::{Addr, Fabric, NodeId};

use iwarp::{IwarpError, IwarpResult};
use iwarp_socket::SocketStack;

/// Streaming workload parameters.
#[derive(Clone, Debug)]
pub struct MediaConfig {
    /// Media payload bytes per chunk (1316 ≈ 7 TS packets, the classic
    /// RTP-over-UDP media datagram).
    pub chunk_size: usize,
    /// Total media bytes to stream.
    pub total_bytes: usize,
    /// Server pacing in bits/s of media payload; 0 streams flat out.
    pub bitrate_bps: u64,
    /// Client buffering target before "playback" starts.
    pub prebuffer_bytes: usize,
    /// Client idle timeout that ends the session (datagram modes).
    pub idle_timeout: Duration,
}

impl Default for MediaConfig {
    fn default() -> Self {
        Self {
            chunk_size: 1316,
            total_bytes: 2 * 1024 * 1024,
            bitrate_bps: 0,
            prebuffer_bytes: 256 * 1024,
            idle_timeout: Duration::from_millis(500),
        }
    }
}

/// What the client observed.
#[derive(Clone, Debug)]
pub struct MediaMetrics {
    /// Time from the play request until `prebuffer_bytes` were buffered —
    /// the paper's Fig. 9 metric.
    pub prebuffer_time: Duration,
    /// Time from the play request until the stream ended.
    pub total_time: Duration,
    /// Media bytes received.
    pub bytes_received: usize,
    /// Chunks received.
    pub chunks_received: u64,
    /// Chunks missing (sequence gaps — loss on datagram transports).
    pub chunks_lost: u64,
}

impl MediaMetrics {
    /// Application-level goodput in MB/s over the full session.
    #[must_use]
    pub fn goodput_mbps(&self) -> f64 {
        if self.total_time.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.bytes_received as f64 / 1e6 / self.total_time.as_secs_f64()
    }
}

/// Chunk wire format: seq(8) + flags(1) + payload. Flag bit 0 marks the
/// final chunk of the stream.
const CHUNK_HEADER: usize = 9;
const FLAG_END: u8 = 0x01;

fn make_chunk(seq: u64, len: usize, last: bool) -> Bytes {
    let mut b = BytesMut::with_capacity(CHUNK_HEADER + len);
    b.put_u64(seq);
    b.put_u8(if last { FLAG_END } else { 0 });
    // Deterministic payload so tests can verify integrity.
    b.extend((0..len).map(|i| (seq as usize + i) as u8));
    b.freeze()
}

fn parse_chunk(raw: &[u8]) -> Option<(u64, bool, &[u8])> {
    if raw.len() < CHUNK_HEADER {
        return None;
    }
    let seq = u64::from_be_bytes(raw[..8].try_into().ok()?);
    let last = raw[8] & FLAG_END != 0;
    Some((seq, last, &raw[CHUNK_HEADER..]))
}

/// Paces the sender to `bitrate_bps` of media payload.
struct Pacer {
    start: Instant,
    sent_bytes: u64,
    bitrate_bps: u64,
}

impl Pacer {
    fn new(bitrate_bps: u64) -> Self {
        Self {
            start: Instant::now(),
            sent_bytes: 0,
            bitrate_bps,
        }
    }

    fn sent(&mut self, bytes: usize) {
        self.sent_bytes += bytes as u64;
        if self.bitrate_bps == 0 {
            return;
        }
        let due = Duration::from_secs_f64(self.sent_bytes as f64 * 8.0 / self.bitrate_bps as f64);
        let elapsed = self.start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }
}

fn chunk_plan(cfg: &MediaConfig) -> Vec<(u64, usize, bool)> {
    let n_chunks = cfg.total_bytes.div_ceil(cfg.chunk_size.max(1));
    (0..n_chunks)
        .map(|i| {
            let len = cfg.chunk_size.min(cfg.total_bytes - i * cfg.chunk_size);
            (i as u64, len, i + 1 == n_chunks)
        })
        .collect()
}

/// Client-side accounting shared by all transports.
struct ClientTally {
    started: Instant,
    prebuffer_at: Option<Instant>,
    last_chunk_at: Option<Instant>,
    bytes: usize,
    chunks: u64,
    max_seq: Option<u64>,
    done: bool,
}

impl ClientTally {
    fn new() -> Self {
        Self {
            started: Instant::now(),
            prebuffer_at: None,
            last_chunk_at: None,
            bytes: 0,
            chunks: 0,
            max_seq: None,
            done: false,
        }
    }

    fn on_chunk(&mut self, cfg: &MediaConfig, seq: u64, last: bool, payload_len: usize) {
        self.bytes += payload_len;
        self.chunks += 1;
        self.last_chunk_at = Some(Instant::now());
        self.max_seq = Some(self.max_seq.map_or(seq, |m| m.max(seq)));
        if self.prebuffer_at.is_none() && self.bytes >= cfg.prebuffer_bytes.min(cfg.total_bytes) {
            self.prebuffer_at = Some(Instant::now());
        }
        if last {
            self.done = true;
        }
    }

    fn finish(self) -> MediaMetrics {
        // End the session clock at the last media byte, not at the idle
        // timeout that detected the stream went quiet.
        let total_time = self
            .last_chunk_at
            .map_or_else(|| self.started.elapsed(), |t| t - self.started);
        MediaMetrics {
            prebuffer_time: self
                .prebuffer_at
                .map_or(total_time, |t| t - self.started),
            total_time,
            bytes_received: self.bytes,
            chunks_received: self.chunks,
            chunks_lost: self
                .max_seq
                .map_or(0, |m| (m + 1).saturating_sub(self.chunks)),
        }
    }
}

/// Runs one UDP-mode streaming session through the iWARP socket shim.
/// The socket stacks choose the datagram data path
/// ([`iwarp_socket::DgramMode`]);
/// `chunk_size` must fit the stacks' receive slots.
pub fn run_udp_session(
    server_stack: &SocketStack,
    client_stack: &SocketStack,
    cfg: &MediaConfig,
) -> IwarpResult<MediaMetrics> {
    assert!(
        cfg.chunk_size + CHUNK_HEADER <= server_stack.config().slot_size,
        "chunk must fit a receive slot"
    );
    let server = server_stack.dgram()?;
    let client = client_stack.dgram()?;
    let server_addr = server.local_addr();

    std::thread::scope(|s| {
        let srv = s.spawn(move || -> IwarpResult<()> {
            // Wait for the PLAY request, then stream.
            let mut buf = [0u8; 64];
            let (_, viewer) = server.recv_from(&mut buf, Duration::from_secs(10))?;
            let mut pacer = Pacer::new(cfg.bitrate_bps);
            for (seq, len, last) in chunk_plan(cfg) {
                let chunk = make_chunk(seq, len, last);
                if last {
                    // The end marker is precious on a lossy transport:
                    // send it a few times (cheap application-level FEC).
                    for _ in 0..3 {
                        server.send_to(&chunk, viewer)?;
                    }
                } else {
                    server.send_to(&chunk, viewer)?;
                }
                pacer.sent(len);
            }
            Ok(())
        });

        client.send_to(b"PLAY", server_addr)?;
        let mut tally = ClientTally::new();
        let mut buf = vec![0u8; cfg.chunk_size + CHUNK_HEADER];
        while !tally.done {
            match client.recv_from(&mut buf, cfg.idle_timeout) {
                Ok((n, _)) => {
                    if let Some((seq, last, payload)) = parse_chunk(&buf[..n]) {
                        tally.on_chunk(cfg, seq, last, payload.len());
                    }
                }
                Err(IwarpError::PollTimeout) => break, // stream went quiet
                Err(e) => return Err(e),
            }
        }
        srv.join().expect("server thread")?;
        Ok(tally.finish())
    })
}

/// Runs one HTTP-over-RC streaming session (the paper's VLC "RC
/// compatible mode ... HTTP-based").
pub fn run_http_session(
    server_stack: &SocketStack,
    client_stack: &SocketStack,
    port: u16,
    cfg: &MediaConfig,
) -> IwarpResult<MediaMetrics> {
    let listener = server_stack.listen(port)?;
    let server_node_addr = Addr {
        node: server_stack.device().node(),
        port,
    };

    std::thread::scope(|s| {
        let srv = s.spawn(move || -> IwarpResult<()> {
            let conn = listener.accept(Duration::from_secs(10))?;
            // Read the request up to the blank line.
            let mut req = Vec::new();
            let mut byte = [0u8; 1];
            while !req.ends_with(b"\r\n\r\n") && req.len() < 4096 {
                conn.recv_exact(&mut byte, Duration::from_secs(10))?;
                req.push(byte[0]);
            }
            let header = format!(
                "HTTP/1.0 200 OK\r\nServer: iwarp-media\r\nContent-Type: video/mp2t\r\nContent-Length: {}\r\n\r\n",
                cfg.total_bytes + chunk_plan(cfg).len() * CHUNK_HEADER
            );
            conn.send(header.as_bytes())?;
            let mut pacer = Pacer::new(cfg.bitrate_bps);
            for (seq, len, last) in chunk_plan(cfg) {
                conn.send(&make_chunk(seq, len, last))?;
                pacer.sent(len);
            }
            Ok(())
        });

        let conn = client_stack.connect(server_node_addr)?;
        conn.send(b"GET /stream HTTP/1.0\r\nHost: media\r\nUser-Agent: iwarp-vlc\r\n\r\n")?;
        let mut tally = ClientTally::new();

        // Read the response headers.
        let mut hdr = Vec::new();
        let mut byte = [0u8; 1];
        while !hdr.ends_with(b"\r\n\r\n") && hdr.len() < 4096 {
            conn.recv_exact(&mut byte, Duration::from_secs(10))?;
            hdr.push(byte[0]);
        }
        // Stream the body chunk by chunk (framing is self-describing:
        // fixed header then chunk_size payload, smaller final chunk).
        for (seq, len, last) in chunk_plan(cfg) {
            let mut chunk = vec![0u8; CHUNK_HEADER + len];
            conn.recv_exact(&mut chunk, Duration::from_secs(30))?;
            let (got_seq, got_last, payload) =
                parse_chunk(&chunk).ok_or(IwarpError::Net(simnet::NetError::Protocol(
                    "bad media chunk",
                )))?;
            debug_assert_eq!(got_seq, seq);
            debug_assert_eq!(got_last, last);
            tally.on_chunk(cfg, got_seq, got_last, payload.len());
        }
        srv.join().expect("server thread")?;
        Ok(tally.finish())
    })
}

/// Runs one UDP streaming session over the **raw datagram conduit** — the
/// native-UDP baseline with no iWARP processing, used to quantify the
/// socket-shim overhead (paper reports ≈ 2 %).
pub fn run_native_udp_session(fabric: &Fabric, cfg: &MediaConfig) -> IwarpResult<MediaMetrics> {
    let server = simnet::DgramConduit::bind_ephemeral(fabric, NodeId(0))?;
    let client = simnet::DgramConduit::bind_ephemeral(fabric, NodeId(1))?;
    let server_addr = server.local_addr();

    std::thread::scope(|s| {
        let srv = s.spawn(move || -> IwarpResult<()> {
            let (viewer, _) = server.recv_from(Some(Duration::from_secs(10)))?;
            let mut pacer = Pacer::new(cfg.bitrate_bps);
            for (seq, len, last) in chunk_plan(cfg) {
                let chunk = make_chunk(seq, len, last);
                let copies = if last { 3 } else { 1 };
                for _ in 0..copies {
                    server.send_to(viewer, chunk.clone())?;
                }
                pacer.sent(len);
            }
            Ok(())
        });

        client.send_to(server_addr, Bytes::from_static(b"PLAY"))?;
        let mut tally = ClientTally::new();
        while !tally.done {
            match client.recv_from(Some(cfg.idle_timeout)) {
                Ok((_, data)) => {
                    if let Some((seq, last, payload)) = parse_chunk(&data) {
                        tally.on_chunk(cfg, seq, last, payload.len());
                    }
                }
                Err(simnet::NetError::Timeout) => break,
                Err(e) => return Err(IwarpError::Net(e)),
            }
        }
        srv.join().expect("server thread")?;
        Ok(tally.finish())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwarp_socket::{DgramMode, SocketConfig};

    fn small_cfg() -> MediaConfig {
        MediaConfig {
            chunk_size: 1316,
            total_bytes: 200 * 1024,
            // Pace at 200 Mbit/s so the single-core test scheduler can
            // drain the receiver (an unpaced blast overruns the socket's
            // slot pool — correct UDP behaviour, separate test below).
            bitrate_bps: 200_000_000,
            prebuffer_bytes: 64 * 1024,
            idle_timeout: Duration::from_millis(300),
        }
    }

    /// Socket pool deep enough to hold the whole test object, mirroring a
    /// kernel UDP receive buffer (~212 KB) relative to message size.
    fn media_sock_cfg(mode: DgramMode) -> SocketConfig {
        SocketConfig {
            mode,
            recv_slots: 256,
            slot_size: 2048,
            ..SocketConfig::default()
        }
    }

    #[test]
    fn chunk_roundtrip() {
        let c = make_chunk(7, 100, true);
        let (seq, last, payload) = parse_chunk(&c).unwrap();
        assert_eq!(seq, 7);
        assert!(last);
        assert_eq!(payload.len(), 100);
        assert!(parse_chunk(&c[..4]).is_none());
    }

    #[test]
    fn chunk_plan_covers_exactly() {
        let cfg = MediaConfig {
            chunk_size: 1000,
            total_bytes: 2500,
            ..small_cfg()
        };
        let plan = chunk_plan(&cfg);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[2], (2, 500, true));
        let total: usize = plan.iter().map(|(_, l, _)| l).sum();
        assert_eq!(total, 2500);
    }

    #[test]
    fn udp_session_lossless() {
        let fab = Fabric::loopback();
        let sc = media_sock_cfg(DgramMode::SendRecv);
        let sa = SocketStack::with_config(&fab, NodeId(0), Default::default(), sc.clone());
        let sb = SocketStack::with_config(&fab, NodeId(1), Default::default(), sc);
        let cfg = small_cfg();
        let m = run_udp_session(&sa, &sb, &cfg).unwrap();
        assert_eq!(m.bytes_received, cfg.total_bytes);
        assert_eq!(m.chunks_lost, 0);
        assert!(m.prebuffer_time <= m.total_time);
    }

    #[test]
    fn udp_session_write_record_mode() {
        let fab = Fabric::loopback();
        let cfg_sock = media_sock_cfg(DgramMode::WriteRecord);
        let sa = SocketStack::with_config(&fab, NodeId(0), Default::default(), cfg_sock.clone());
        let sb = SocketStack::with_config(&fab, NodeId(1), Default::default(), cfg_sock);
        let cfg = small_cfg();
        let m = run_udp_session(&sa, &sb, &cfg).unwrap();
        assert_eq!(m.bytes_received, cfg.total_bytes);
        assert_eq!(m.chunks_lost, 0);
    }

    #[test]
    fn http_session_delivers_everything() {
        let fab = Fabric::loopback();
        let sa = SocketStack::new(&fab, NodeId(0));
        let sb = SocketStack::new(&fab, NodeId(1));
        let cfg = small_cfg();
        let m = run_http_session(&sa, &sb, 8080, &cfg).unwrap();
        assert_eq!(m.bytes_received, cfg.total_bytes);
        assert_eq!(m.chunks_lost, 0);
    }

    #[test]
    fn native_udp_baseline() {
        let fab = Fabric::loopback();
        let cfg = small_cfg();
        let m = run_native_udp_session(&fab, &cfg).unwrap();
        assert_eq!(m.bytes_received, cfg.total_bytes);
    }

    #[test]
    fn unpaced_blast_overruns_receiver_like_udp() {
        // No pacing, small socket pool: the receiver must lose chunks —
        // the kernel-UDP overrun behaviour (not an error in the stack).
        let fab = Fabric::loopback();
        let sa = SocketStack::new(&fab, NodeId(0));
        let sb = SocketStack::new(&fab, NodeId(1));
        let cfg = MediaConfig {
            bitrate_bps: 0,
            ..small_cfg()
        };
        let m = run_udp_session(&sa, &sb, &cfg).unwrap();
        assert!(m.bytes_received <= cfg.total_bytes);
    }

    #[test]
    fn udp_session_survives_loss() {
        let fab = simnet::Fabric::new(simnet::wire::WireConfig::with_loss(0.01, 3));
        let sc = media_sock_cfg(DgramMode::SendRecv);
        let sa = SocketStack::with_config(&fab, NodeId(0), Default::default(), sc.clone());
        let sb = SocketStack::with_config(&fab, NodeId(1), Default::default(), sc);
        let cfg = small_cfg();
        let m = run_udp_session(&sa, &sb, &cfg).unwrap();
        // Some chunks may vanish, but the session must complete and count
        // the losses consistently.
        assert!(m.chunks_received > 0);
        assert!(m.bytes_received <= cfg.total_bytes);
        let expected_chunks = cfg.total_bytes.div_ceil(cfg.chunk_size) as u64;
        assert!(m.chunks_received + m.chunks_lost <= expected_chunks);
    }

    #[test]
    fn paced_stream_respects_bitrate() {
        let fab = Fabric::loopback();
        let cfg = MediaConfig {
            chunk_size: 1000,
            total_bytes: 50_000,
            bitrate_bps: 4_000_000, // 50k bytes at 4 Mbit/s ⇒ ≥ 100 ms
            prebuffer_bytes: 10_000,
            idle_timeout: Duration::from_secs(1),
        };
        let t0 = Instant::now();
        let m = run_native_udp_session(&fab, &cfg).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(90), "pacing ignored");
        assert_eq!(m.bytes_received, cfg.total_bytes);
        // Prebuffer fill is paced too, so it must take a measurable time.
        assert!(m.prebuffer_time >= Duration::from_millis(15));
    }
}
