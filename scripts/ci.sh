#!/usr/bin/env sh
# Tier-1 gate plus lint, exactly what CI runs. Usage: scripts/ci.sh
#
# The build is fully offline: every external crate resolves to a vendored
# shim under shims/ (see ROADMAP.md), so no registry access is needed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root-package full-stack tests)"
cargo test -q

echo "==> cargo test --workspace -q (per-crate suites)"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> seed audit: no entropy-seeded RNGs outside shims/"
if grep -rn "from_entropy" crates src tests examples 2>/dev/null; then
    echo "entropy-seeded RNG found: use iwarp_common::rng (seeded, reproducible)" >&2
    exit 1
fi

echo "==> chaos smoke: 25 seeded adversarial plans, both batching paths"
# Deterministic: a failure prints the plan seed; reproduce it with
#   cargo run --release -p iwarp-bench --bin chaos -- --replay <seed> [--burst-path burst]
# Nightly soak: cargo test --release --test chaos -- --include-ignored
for bpath in per-packet burst; do
    cargo run --release -p iwarp-bench --bin chaos -- --plans 25 --burst-path "$bpath"
done

echo "==> chaos smoke under adaptive congestion control (newreno)"
# Same adversary, reliable phase driven by NewReno instead of the legacy
# fixed window — verbs/socket fault traces must stay seed-deterministic.
cargo run --release -p iwarp-bench --bin chaos -- --plans 25 --cc newreno

echo "==> burst smoke: batched-verbs datapath A/B at the acceptance cell"
# Fails unless burst-32 x 64 B beats per-packet >= 2x msgs/s AND both
# paths take zero shared fabric locks on hot transmit (per-link rings,
# PR 7). The committed BENCH_PR5.json is the full sweep; the smoke
# result goes to target/ so it never clobbers it.
cargo run --release -p iwarp-bench --bin burst -- --smoke --out target/burst_smoke.json

echo "==> recovery smoke: NewReno vs fixed at 1% loss (>= 2x gate)"
# Bounded slice of the loss-recovery sweep; fails unless the adaptive
# controller beats the legacy fixed window >= 2x rdgram msgs/s at 1%
# Bernoulli loss. The committed BENCH_PR6.json is the full sweep.
cargo run --release -p iwarp-bench --bin recovery -- --smoke --out target/recovery_smoke.json

echo "==> replog smoke: 25 seeded agreement plans + one-sided throughput gate"
# The replicated-log oracle: every agreement invariant (total order, no
# lost acks, no divergence, lease exclusivity) under seeded chaos plans
# across both publish paths, then the one-sided >= two-sided
# commit-throughput sanity gate. A failure prints the plan seed;
# reproduce it with
#   cargo run --release -p iwarp-bench --bin replog -- --replay <seed>
cargo run --release -p iwarp-bench --bin replog -- --smoke --plans 25

echo "==> bulkread smoke: selective signaling at 1 MiB (lastonly >= 1.3x every1)"
# Bounded slice of the read-engine sweep on the 80 ms pipe; fails unless
# last-only signaling beats per-batch signaling >= 1.3x goodput at 1 MiB
# batches. The committed BENCH_PR8.json is the full sweep.
cargo run --release -p iwarp-bench --bin bulkread -- --smoke --out target/bulkread_smoke.json

echo "==> scale smoke: 256/1024 SIP calls, 2 shards, event-driven completions"
# Bounded concurrency-scaling run (legacy baseline + sharded/event mode);
# fails if any call fails to establish. On hosts with host_cpus >= 2 it
# additionally gates the PR 7 multi-core ratio: 4 pinned event shards
# must beat 1 by >= 1.5x msgs/s; single-core hosts record an honest skip
# (with host_cpus) in the acceptance JSON. The 1024-call event run also
# carries the PR 10 memory gate: instrumented per-call bytes <= 6 KiB
# (slab/arena compaction budget; pre-compaction baseline was ~18 KiB).
# Full matrix: bin scale (no flags); 100k memory ramp: bin scale --ramp.
cargo run --release -p iwarp-bench --bin scale -- --smoke --out target/scale_smoke.json

echo "==> bench smoke: copypath kernels run once (--test mode)"
cargo bench -p iwarp-bench --bench copypath -- --test

echo "==> figures smoke: fig5/fig6 CSVs sane under both copy paths"
for path in legacy sg; do
    out="target/ci-figures-$path"
    rm -rf "$out"
    cargo run --release -p iwarp-bench --bin figures -- \
        --fig5 --fig6 --quick --copy-path "$path" --out "$out" >/dev/null
    sh scripts/check_figures.sh "$out"
done

echo "CI green."
