//! Value-generation strategies (no shrinking — see crate docs).

use std::marker::PhantomData;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (stand-in for upstream's
/// `Arbitrary` + `Standard` distribution).
pub trait ArbitraryValue: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Uniformly samples any value of `T`.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Strategy built from a plain generation function (`prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wraps `f` as a strategy.
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> T,
    {
        Self { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// The `[class]{m,n}` regex subset: `&'static str` as a `String` strategy.
///
/// Supported syntax: a sequence of atoms, each a char class `[...]`
/// (literal chars plus `a-z` ranges; `-` last is literal) or a literal
/// character, optionally followed by `{m,n}` / `{n}` repetition. This
/// covers every pattern used in the workspace's tests; anything else
/// panics so a new pattern fails loudly rather than silently mismatching.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"))
                        + i;
                    let class = &chars[i + 1..close];
                    i = close + 1;
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < class.len() {
                        if j + 2 < class.len() && class[j + 1] == '-' {
                            for c in class[j]..=class[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(class[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty char class in {self:?}");
                    set
                }
                ']' | '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '\\' => {
                    panic!("unsupported regex syntax {:?} in {self:?}", chars[i])
                }
                lit => {
                    i += 1;
                    vec![lit]
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("repeat lower bound"),
                        b.trim().parse::<usize>().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let k = (rng.next_u64() % alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}
