//! `iwarp` — a software datagram-iWARP stack with RDMA Write-Record.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *RDMA Capable iWARP over Datagrams* (Grant, Rashti, Afsahi, Balaji —
//! IPDPS 2011): an iWARP protocol stack extended beyond the
//! reliable-connection-only standard to unreliable (UD) and reliable (RD)
//! datagram transports, including **RDMA Write-Record** — the first
//! one-sided RDMA Write defined over unreliable datagrams.
//!
//! ## Layering
//!
//! ```text
//!        verbs (Queue Pairs, Completion Queues, Work Requests)   [qp, cq, wr]
//!        RDMAP  (send / RDMA write / write-record / RDMA read)   [hdr, qp]
//!        DDP    (direct data placement, segmentation, CRC32)     [hdr, qp, wr_record]
//!        MPA    (markers + FPDU framing — RC/stream path ONLY)   [mpa]
//!   LLP: stream (TCP-like)  |  datagram (UDP-like)  |  reliable dgram
//!        -- provided by the `simnet` crate --
//! ```
//!
//! The datagram path **bypasses MPA entirely** — datagrams preserve message
//! boundaries, so no markers are needed (paper §IV.B item 5) — and instead
//! carries a mandatory CRC32 on every DDP segment (item 6).
//!
//! ## The three queue-pair flavours
//!
//! * [`qp::RcQp`] — the standard reliable-connection iWARP over the
//!   TCP-like stream conduit with real MPA framing/markers: the baseline
//!   every figure compares against.
//! * [`qp::UdQp`] — datagram-iWARP: connectionless send/recv with source
//!   addressing, plus **RDMA Write-Record** with partial placement and
//!   validity-map completions.
//! * [`qp::RdQp`] — datagram-iWARP over the reliable-datagram LLP
//!   (the paper's "RD mode").
//!
//! See `examples/quickstart.rs` at the workspace root for a tour.

#![warn(missing_docs)]

pub mod buf;
pub mod chan;
pub mod cm;
pub mod cq;
pub mod device;
pub mod error;
pub mod hdr;
pub mod mpa;
pub mod qp;
pub mod read;
pub mod shard;
pub mod signal;
pub mod wr;
pub mod wr_record;

pub use buf::{Access, MemoryRegion, MrTable};
pub use chan::CompletionChannel;
pub use cq::{Cq, Cqe, CqeOpcode, CqeStatus};
pub use device::{Device, DeviceConfig};
pub use shard::{ShardConfig, ShardMap};
pub use error::{IwarpError, IwarpResult};
pub use qp::{QpConfig, RcListener, RcQp, RdQp, UdQp};
pub use read::{BulkRead, BulkReadConfig, BulkReadReport, SignalInterval};
pub use signal::place_signals;
pub use wr::{SendWr, UdDest};
pub use wr_record::WriteRecordInfo;
