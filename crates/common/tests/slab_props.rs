//! Property-based tests for the slab allocator: the slab is driven with
//! arbitrary insert/remove/re-insert sequences against a naive model,
//! checking the three contracts the per-call state compaction leans on —
//! live handles never alias, generation checks catch every use of a
//! freed handle, and occupancy always equals the live set.

use proptest::prelude::*;

use iwarp_common::slab::{Handle, Slab, SlabStats};

proptest! {
    /// The slab agrees with a vector model under arbitrary op sequences:
    /// every live handle resolves to its own value (no aliasing, even
    /// across free-list reuse), every freed handle is rejected forever,
    /// and `len`/stats occupancy track the model's live set exactly.
    #[test]
    fn slab_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..160)) {
        let stats = SlabStats::new();
        let mut slab: Slab<u64> = Slab::new().with_stats(stats.clone());
        let mut live: Vec<(Handle, u64)> = Vec::new();
        let mut freed: Vec<Handle> = Vec::new();
        let mut next_value = 0u64;

        for &(op, sel) in &ops {
            match op % 4 {
                // Insert (twice as likely: ops 0 and 1) — the fresh
                // handle must not equal any live handle.
                0 | 1 => {
                    let h = slab.insert(next_value);
                    for &(lh, _) in &live {
                        prop_assert_ne!(lh, h, "fresh handle aliases a live one");
                    }
                    live.push((h, next_value));
                    next_value += 1;
                }
                // Remove a random live entry; its handle goes stale.
                2 if !live.is_empty() => {
                    let i = sel as usize % live.len();
                    let (h, v) = live.swap_remove(i);
                    prop_assert_eq!(slab.remove(h), Some(v));
                    freed.push(h);
                }
                // Use-after-free: a freed handle must never resolve or
                // double-free, even after its slot was reused.
                3 if !freed.is_empty() => {
                    let h = freed[sel as usize % freed.len()];
                    prop_assert!(slab.get(h).is_none(), "stale handle resolved");
                    prop_assert!(slab.remove(h).is_none(), "stale handle double-freed");
                }
                _ => {}
            }

            // Step invariants: occupancy == live set, every live handle
            // reads back its own value.
            prop_assert_eq!(slab.len(), live.len());
            prop_assert_eq!(stats.live(), live.len() as u64);
            prop_assert!(stats.slots() >= stats.live());
            for &(h, v) in &live {
                prop_assert_eq!(slab.get(h).copied(), Some(v));
            }
        }

        // Iteration visits exactly the live set (order-insensitive).
        let mut from_iter: Vec<(Handle, u64)> =
            slab.iter().map(|(h, &v)| (h, v)).collect();
        let mut expected = live.clone();
        from_iter.sort_by_key(|(h, _)| h.to_u64());
        expected.sort_by_key(|(h, _)| h.to_u64());
        prop_assert_eq!(from_iter, expected);

        // Accounting: the slab never grew more slots than total inserts,
        // and every free-list reuse is counted.
        prop_assert_eq!(stats.allocs(), next_value);
        prop_assert_eq!(stats.frees(), freed.len() as u64);
        prop_assert!(stats.slots() as usize <= next_value.max(1) as usize);
        prop_assert_eq!(stats.allocs() - stats.reuses(), stats.slots());
    }

    /// Handles survive the u64 round-trip (`to_u64`/`from_u64`) for
    /// arbitrary slab states — the form the socket shim's completion
    /// tokens and any serialized diagnostics rely on.
    #[test]
    fn handle_u64_roundtrip_holds(inserts in 1usize..64, removes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut slab: Slab<usize> = Slab::new();
        let mut handles: Vec<Handle> = (0..inserts).map(|i| slab.insert(i)).collect();
        for &r in &removes {
            if handles.is_empty() {
                break;
            }
            let h = handles.swap_remove(r as usize % handles.len());
            slab.remove(h);
            // Re-insert to churn generations.
            handles.push(slab.insert(usize::MAX));
        }
        for &h in &handles {
            prop_assert_eq!(Handle::from_u64(h.to_u64()), h);
        }
    }
}
