//! Notification-mechanism ablation (the paper's Fig. 3 / §IV.B.3
//! discussion, as numbers): how long until the *target application* knows
//! one-sided data is valid, under four schemes:
//!
//! * RC RDMA Write + separate send/recv notification (the standard's way);
//! * RC RDMA Write with Immediate (InfiniBand-style; consumes a receive);
//! * UD RDMA Write with Immediate;
//! * UD RDMA Write-Record (the paper's: no receive, no second operation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use iwarp::wr::RecvWr;
use iwarp::{Access, Cq, Device, QpConfig};
use simnet::{Addr, Fabric, NodeId};

const TO: Duration = Duration::from_secs(10);
const SIZE: usize = 4096;

fn bench_notify(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_notification");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // --- UD Write-Record: one posted op, unsolicited target completion.
    g.bench_function("ud_write_record", |b| {
        let fab = Fabric::loopback();
        let dev_a = Device::new(&fab, NodeId(0));
        let dev_b = Device::new(&fab, NodeId(1));
        let (a_s, a_r) = (Cq::new(64), Cq::new(64));
        let (b_s, b_r) = (Cq::new(64), Cq::new(64));
        let qa = dev_a.create_ud_qp(None, &a_s, &a_r, QpConfig::default()).unwrap();
        let qb = dev_b.create_ud_qp(None, &b_s, &b_r, QpConfig::default()).unwrap();
        let sink = dev_b.register(SIZE, Access::RemoteWrite);
        let data = vec![7u8; SIZE];
        b.iter(|| {
            qa.post_write_record(0, data.clone(), qb.dest(), sink.stag(), 0).unwrap();
            while qa.send_cq().poll().is_some() {}
            b_r.poll_timeout(TO).unwrap()
        });
    });

    // --- UD Write with Immediate: consumes a posted receive.
    g.bench_function("ud_write_imm", |b| {
        let fab = Fabric::loopback();
        let dev_a = Device::new(&fab, NodeId(0));
        let dev_b = Device::new(&fab, NodeId(1));
        let (a_s, a_r) = (Cq::new(64), Cq::new(64));
        let (b_s, b_r) = (Cq::new(64), Cq::new(64));
        let qa = dev_a.create_ud_qp(None, &a_s, &a_r, QpConfig::default()).unwrap();
        let qb = dev_b.create_ud_qp(None, &b_s, &b_r, QpConfig::default()).unwrap();
        let sink = dev_b.register(SIZE, Access::RemoteWrite);
        let notify_sink = dev_b.register(16, Access::Local);
        let data = vec![7u8; SIZE];
        b.iter(|| {
            qb.post_recv(RecvWr::whole(1, &notify_sink)).unwrap();
            qa.post_write_imm(0, data.clone(), qb.dest(), sink.stag(), 0, 9).unwrap();
            while qa.send_cq().poll().is_some() {}
            b_r.poll_timeout(TO).unwrap()
        });
    });

    // --- RC Write + send notification (two operations).
    g.bench_function("rc_write_plus_send", |b| {
        let fab = Fabric::loopback();
        let dev_a = Device::new(&fab, NodeId(0));
        let dev_b = Device::new(&fab, NodeId(1));
        let (a_s, a_r) = (Cq::new(64), Cq::new(64));
        let (b_s, b_r) = (Cq::new(64), Cq::new(64));
        let listener = dev_b.rc_listen(4950).unwrap();
        let (qa, _qb) = std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(TO, &b_s, &b_r, QpConfig::default()).unwrap());
            let qa = dev_a
                .rc_connect(Addr::new(1, 4950), &a_s, &a_r, QpConfig::default())
                .unwrap();
            (qa, srv.join().unwrap())
        });
        let sink = dev_b.register(SIZE, Access::RemoteWrite);
        let notify_sink = dev_b.register(16, Access::Local);
        let data = vec![7u8; SIZE];
        b.iter(|| {
            _qb.post_recv(RecvWr::whole(1, &notify_sink)).unwrap();
            qa.post_rdma_write(0, data.clone(), sink.stag(), 0).unwrap();
            qa.post_send(0, &b"!"[..]).unwrap();
            while qa.send_cq().poll().is_some() {}
            b_r.poll_timeout(TO).unwrap()
        });
    });

    // --- RC Write with Immediate (one operation, still needs a receive).
    g.bench_function("rc_write_imm", |b| {
        let fab = Fabric::loopback();
        let dev_a = Device::new(&fab, NodeId(0));
        let dev_b = Device::new(&fab, NodeId(1));
        let (a_s, a_r) = (Cq::new(64), Cq::new(64));
        let (b_s, b_r) = (Cq::new(64), Cq::new(64));
        let listener = dev_b.rc_listen(4951).unwrap();
        let (qa, _qb) = std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(TO, &b_s, &b_r, QpConfig::default()).unwrap());
            let qa = dev_a
                .rc_connect(Addr::new(1, 4951), &a_s, &a_r, QpConfig::default())
                .unwrap();
            (qa, srv.join().unwrap())
        });
        let sink = dev_b.register(SIZE, Access::RemoteWrite);
        let notify_sink = dev_b.register(16, Access::Local);
        let data = vec![7u8; SIZE];
        b.iter(|| {
            _qb.post_recv(RecvWr::whole(1, &notify_sink)).unwrap();
            qa.post_write_imm(0, data.clone(), sink.stag(), 0, 9).unwrap();
            while qa.send_cq().poll().is_some() {}
            b_r.poll_timeout(TO).unwrap()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_notify);
criterion_main!(benches);
