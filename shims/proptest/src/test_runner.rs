//! Test configuration, deterministic RNG, and case errors.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the lossy end-to-end
        // properties (which spin real threads per case) inside a
        // reasonable tier-1 budget while still exploring the space.
        Self { cases: 64 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// A property violation with the given message.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// An input rejection with the given message.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
            Self::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator: xoshiro256++ seeded from the test's name, so
/// every run of a given test explores the same inputs (reproducible
/// failures without a regression-persistence file).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary string (the macro passes
    /// `module_path!() :: test_name`).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a folds the name into a 64-bit seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seeds directly from a 64-bit value via SplitMix64 expansion.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        let mut c = TestRng::deterministic("x::z");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn regex_subset_generates_in_class() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[A-Za-z0-9@._-]{1,24}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "@._-".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself: args, ranges, vec, tuples, asserts.
        #[test]
        fn macro_smoke(a in 0u64..100, v in crate::collection::vec(any::<u8>(), 0..8),
                       t in (0u32..4, any::<bool>())) {
            prop_assert!(a < 100);
            prop_assert!(v.len() < 8);
            prop_assert_eq!(t.0 < 4, true);
            prop_assert_ne!(a, 100);
        }
    }
}
