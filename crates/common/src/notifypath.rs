//! Process-wide default for how completion consumers wait.
//!
//! The scale-out work adds event-driven completions (a condvar-backed
//! `CompletionChannel` with `wait_any` multiplexing) while keeping
//! spin-polling alive as the A/B baseline — the same pattern as
//! [`crate::copypath`] for the datapath. The selection itself is a
//! per-socket/bench configuration knob; this module only stores the
//! *default* those configs pick up at construction time, so tests can
//! still pin a strategy explicitly without racing on global state.

use std::sync::atomic::{AtomicU8, Ordering};

/// How a completion consumer learns that work is ready.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NotifyPath {
    /// Busy-poll: spin on non-blocking CQ polls. Lowest latency, burns a
    /// core per waiter. Kept as the reference baseline.
    Poll,
    /// Event-driven: park on a completion channel and be woken on push —
    /// one thread can multiplex thousands of CQs (`wait_any`, the epoll
    /// analogue). The default.
    Event,
}

impl NotifyPath {
    /// Parses the `--notify` CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "poll" => Some(Self::Poll),
            "event" => Some(Self::Event),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Poll => "poll",
            Self::Event => "event",
        }
    }
}

impl std::fmt::Display for NotifyPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

static DEFAULT: AtomicU8 = AtomicU8::new(1); // 1 = Event

/// Sets the process-wide default strategy picked up by socket/bench
/// configs at construction time (e.g. from `scale --notify=poll`).
pub fn set_default(path: NotifyPath) {
    DEFAULT.store(
        match path {
            NotifyPath::Poll => 0,
            NotifyPath::Event => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide default strategy.
#[must_use]
pub fn default_path() -> NotifyPath {
    if DEFAULT.load(Ordering::Relaxed) == 0 {
        NotifyPath::Poll
    } else {
        NotifyPath::Event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        assert_eq!(NotifyPath::parse("poll"), Some(NotifyPath::Poll));
        assert_eq!(NotifyPath::parse("event"), Some(NotifyPath::Event));
        assert_eq!(NotifyPath::parse("spin"), None);
        assert_eq!(NotifyPath::Event.as_str(), "event");
        assert_eq!(NotifyPath::Poll.to_string(), "poll");
    }
}
