//! `RdConduit` — a reliable datagram (RD) service.
//!
//! The paper's design explicitly keeps datagram-iWARP compatible with
//! *reliable* datagram lower layers: "applications that currently use TCP
//! can also be supported via a reliable UDP implementation that provides
//! the order and reliability guarantees they require" (§IV.B). This module
//! is that reliable-UDP stand-in: message-oriented like UDP, but with
//! per-peer sequencing, cumulative + selective acknowledgements,
//! retransmission and in-order delivery.
//!
//! It layers on [`DgramConduit`], so a single "RD message" still enjoys the
//! all-or-nothing fragmentation semantics of the datagram service — the RD
//! layer then recovers whole lost messages rather than fragments.
//!
//! Loss recovery is delegated to [`iwarp_cc::RecoveryEngine`] (one per
//! peer): the engine owns the selective-repeat scoreboard, the RFC-6298
//! RTT estimator behind the retransmission timer, and the congestion
//! window. With the default [`CcAlgo::Fixed`] the conduit behaves like
//! the legacy implementation — fixed window, fixed timer, timer-driven
//! recovery only; `newreno`/`cubic` add SACK-gap fast retransmit and an
//! adaptive window on top of the same wire format.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use iwarp_cc::{RecoveryConfig, RecoveryEngine};
use iwarp_common::ccalgo::{self, CcAlgo};
use iwarp_telemetry::{Counter, EndpointId, EventKind, Telemetry};
use parking_lot::{Condvar, Mutex};

use crate::dgram::DgramConduit;
use crate::error::{NetError, NetResult};
use crate::fabric::Fabric;
use crate::wire::{Addr, NodeId};

const TYPE_DATA: u8 = 0;
const TYPE_ACK: u8 = 1;

/// RD header: type(1) + seq(8). ACKs carry cum(8) + word-count(1) + a
/// variable-width SACK bitmap (`word-count` big-endian u64 words)
/// instead.
const DATA_HEADER: usize = 9;

/// Fixed prefix of an ACK frame: type(1) + cum(8) + word-count(1).
const ACK_PREFIX: usize = 10;

/// Configuration of a reliable-datagram endpoint.
#[derive(Clone, Debug)]
pub struct RdConfig {
    /// Maximum unacknowledged *span* per peer: `next_seq - oldest_unacked`
    /// never exceeds this, which keeps every outstanding sequence inside
    /// the peer's SACK-bitmap horizon.
    pub window: usize,
    /// SACK bitmap width in u64 words, or `None` to derive the minimum
    /// covering `window` (`ceil(window / 64)`). Explicit values narrower
    /// than the window are rejected at bind time — a sender could
    /// otherwise outrun what the ACKs can describe.
    pub sack_words: Option<usize>,
    /// Initial retransmission timeout. Under [`CcAlgo::Fixed`] this is
    /// the constant timer (legacy behavior); otherwise the RFC-6298
    /// estimator adapts from here.
    pub rto: Duration,
    /// RTO floor for the adaptive estimator (ignored under `Fixed`).
    pub min_rto: Duration,
    /// RTO ceiling / backoff cap for the adaptive estimator (ignored
    /// under `Fixed`).
    pub max_rto: Duration,
    /// Retransmissions allowed per message before the conduit declares
    /// the peer dead and surfaces [`NetError::Reset`]. Generous because
    /// a large RD message rides one fragmented datagram: at 5% wire loss
    /// a 64 KiB datagram (≈44 fragments) survives only ~10% of attempts,
    /// so tens of retransmissions are routine, not pathological.
    pub max_retries: u32,
    /// Congestion-control algorithm (defaults to the process-wide
    /// [`ccalgo::default_algo`], normally `Fixed`).
    pub cc: CcAlgo,
    /// Spread sends over the smoothed RTT instead of bursting the whole
    /// window (adaptive algorithms only).
    pub paced: bool,
}

impl Default for RdConfig {
    fn default() -> Self {
        Self {
            window: 64,
            sack_words: None,
            rto: Duration::from_millis(20),
            min_rto: Duration::from_millis(2),
            max_rto: Duration::from_secs(1),
            max_retries: 150,
            cc: ccalgo::default_algo(),
            paced: false,
        }
    }
}

impl RdConfig {
    /// Resolves the SACK bitmap width in words, validating that the
    /// config is self-consistent (the bitmap must cover the window, and
    /// both must fit the wire format).
    pub fn resolve_sack_words(&self) -> NetResult<usize> {
        if self.window == 0 {
            return Err(NetError::Protocol("rd window must be at least 1"));
        }
        let derived = self.window.div_ceil(64);
        let words = match self.sack_words {
            None => derived,
            Some(0) => return Err(NetError::Protocol("rd sack bitmap must be at least 1 word")),
            Some(w) if w * 64 < self.window => {
                return Err(NetError::Protocol(
                    "rd sack bitmap narrower than window: unacked messages would fall outside \
                     what ACKs can describe",
                ))
            }
            Some(w) => w,
        };
        if words > 255 {
            return Err(NetError::Protocol(
                "rd sack bitmap exceeds wire format (255 words / 16320 seqs)",
            ));
        }
        Ok(words)
    }

    fn recovery_config(&self) -> RecoveryConfig {
        let fixed = self.cc == CcAlgo::Fixed;
        RecoveryConfig {
            algo: self.cc,
            quantum: 1,
            init_cwnd: if fixed { self.window as u64 } else { 4 },
            fixed_window: self.window as u64,
            bdp_cap: self.window as u64,
            initial_rto: self.rto,
            // Fixed keeps the legacy constant timer; adaptive algorithms
            // get the full RFC-6298 treatment.
            min_rto: if fixed { self.rto } else { self.min_rto },
            max_rto: if fixed { self.rto } else { self.max_rto },
            backoff: !fixed,
            max_retries: self.max_retries,
            dup_threshold: 3,
            rtx_queue_cap: self.window.max(64),
            paced: self.paced,
        }
    }
}

struct PeerTx {
    engine: RecoveryEngine,
    /// seq → payload for everything the engine may still ask us to
    /// retransmit. Entries drop as soon as the peer holds the message
    /// (cumulative or selective ACK).
    payloads: BTreeMap<u64, Bytes>,
}

struct PeerRx {
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
}

struct St {
    tx: HashMap<Addr, PeerTx>,
    rx: HashMap<Addr, PeerRx>,
    ready: VecDeque<(Addr, Bytes)>,
    err: Option<NetError>,
    shutdown: bool,
}

/// Telemetry handles resolved once at bind time.
struct RdTel {
    tel: Telemetry,
    tx_msgs: Counter,
    rx_msgs: Counter,
    retransmits: Counter,
    acks_tx: Counter,
}

struct Inner {
    dg: DgramConduit,
    cfg: RdConfig,
    /// Resolved SACK bitmap width (validated at bind).
    sack_words: usize,
    /// `sack_words * 64`: how far past `rcv_nxt` the receiver will hold
    /// out-of-order messages (anything farther is undescribable in an
    /// ACK, so it is dropped and recovered by retransmission).
    horizon: u64,
    /// SACK-gap fast retransmit + adaptive window are only active off
    /// the `Fixed` baseline.
    adaptive: bool,
    st: Mutex<St>,
    readable: Condvar,
    writable: Condvar,
    tel: RdTel,
}

impl Inner {
    fn send_data(&self, dst: Addr, seq: u64, payload: &Bytes) {
        let mut b = BytesMut::with_capacity(DATA_HEADER + payload.len());
        b.put_u8(TYPE_DATA);
        b.put_u64(seq);
        b.extend_from_slice(payload);
        let _ = self.dg.send_to(dst, b.freeze());
    }

    fn send_ack(&self, dst: Addr, st: &St) {
        let Some(rx) = st.rx.get(&dst) else { return };
        let mut bitmap = vec![0u64; self.sack_words];
        for (&seq, _) in rx.ooo.range(rx.rcv_nxt..rx.rcv_nxt + self.horizon) {
            let d = (seq - rx.rcv_nxt) as usize;
            bitmap[d / 64] |= 1 << (d % 64);
        }
        let mut b = BytesMut::with_capacity(ACK_PREFIX + 8 * self.sack_words);
        b.put_u8(TYPE_ACK);
        b.put_u64(rx.rcv_nxt);
        b.put_u8(self.sack_words as u8);
        for word in bitmap {
            b.put_u64(word);
        }
        self.tel.acks_tx.inc();
        let _ = self.dg.send_to(dst, b.freeze());
    }

    fn retransmit(&self, dst: Addr, seq: u64, payload: &Bytes) {
        self.tel.retransmits.inc();
        if self.tel.tel.tracer().armed() {
            let local = self.dg.local_addr();
            self.tel.tel.tracer().record(
                self.tel.tel.now_nanos(),
                EndpointId::new(local.node.0, local.port),
                EventKind::Retransmit,
                payload.len() as u64,
                seq,
            );
        }
        self.send_data(dst, seq, payload);
    }

    fn on_datagram(&self, st: &mut St, src: Addr, data: &Bytes) {
        if data.is_empty() {
            return;
        }
        match data[0] {
            TYPE_DATA if data.len() >= DATA_HEADER => {
                let seq = u64::from_be_bytes(data[1..9].try_into().expect("len checked"));
                let payload = data.slice(DATA_HEADER..);
                let rx = st.rx.entry(src).or_insert(PeerRx {
                    rcv_nxt: 0,
                    ooo: BTreeMap::new(),
                });
                if seq == rx.rcv_nxt {
                    rx.rcv_nxt += 1;
                    st.ready.push_back((src, payload));
                    self.tel.rx_msgs.inc();
                    // Drain contiguous out-of-order messages.
                    let rx = st.rx.get_mut(&src).expect("present");
                    while let Some(p) = rx.ooo.remove(&rx.rcv_nxt) {
                        rx.rcv_nxt += 1;
                        st.ready.push_back((src, p));
                        self.tel.rx_msgs.inc();
                    }
                    self.readable.notify_all();
                } else if seq > rx.rcv_nxt && seq < rx.rcv_nxt + self.horizon {
                    // Inside the SACK horizon: hold for reordering. Beyond
                    // it an ACK couldn't describe the message, so drop and
                    // let retransmission recover it (a conforming sender's
                    // window never reaches this far anyway).
                    rx.ooo.entry(seq).or_insert(payload);
                }
                // Duplicates (seq < rcv_nxt) are dropped; always re-ACK so
                // the sender learns our state.
                self.send_ack(src, st);
            }
            TYPE_ACK if data.len() >= ACK_PREFIX => {
                let cum = u64::from_be_bytes(data[1..9].try_into().expect("len checked"));
                let words = usize::from(data[9]);
                if data.len() < ACK_PREFIX + 8 * words {
                    return;
                }
                let Some(tx) = st.tx.get_mut(&src) else {
                    return;
                };
                let t = tx.engine.now();
                if cum > tx.engine.una() {
                    tx.engine.on_cum_ack(t, cum);
                    // Everything below cum is delivered; forget payloads.
                    tx.payloads = tx.payloads.split_off(&cum);
                }
                for w in 0..words {
                    let off = ACK_PREFIX + 8 * w;
                    let word =
                        u64::from_be_bytes(data[off..off + 8].try_into().expect("len checked"));
                    if word == 0 {
                        continue;
                    }
                    for bit in 0..64u64 {
                        if word & (1 << bit) != 0 {
                            let seq = cum + 64 * w as u64 + bit;
                            tx.engine.on_sack_seq(t, seq);
                            tx.payloads.remove(&seq);
                        }
                    }
                }
                if self.adaptive {
                    // Each ACK showing data beyond an in-flight message is
                    // one more hint it was lost; the engine fast-queues it
                    // at the dup threshold. (The Fixed baseline stays
                    // timer-driven, like the legacy implementation.)
                    tx.engine.detect_losses(t);
                }
                self.writable.notify_all();
            }
            _ => {}
        }
    }

    /// Checks per-peer retransmission timers, drains the retransmit
    /// queues, and surfaces retry exhaustion as a connection reset.
    fn sweep_timers(&self, st: &mut St) {
        let mut dead = false;
        for (&peer, tx) in &mut st.tx {
            let t = tx.engine.now();
            let ev = tx.engine.sweep(t);
            if ev.dead {
                dead = true;
                break;
            }
            while let Some((seq, _len)) = tx.engine.pop_rtx(t) {
                if let Some(payload) = tx.payloads.get(&seq) {
                    let payload = payload.clone();
                    self.retransmit(peer, seq, &payload);
                }
            }
            if tx.engine.is_dead() {
                dead = true;
                break;
            }
        }
        if dead {
            st.err = Some(NetError::Reset);
            self.readable.notify_all();
            self.writable.notify_all();
        }
    }

    /// How long the IO thread may sleep in `recv_from` before a timer
    /// could be due.
    fn next_deadline_in(&self, st: &St) -> Duration {
        const IDLE: Duration = Duration::from_millis(5);
        let mut wait = IDLE;
        for tx in st.tx.values() {
            if let Some(d) = tx.engine.rto_deadline() {
                wait = wait.min(d.saturating_sub(tx.engine.now()));
            }
        }
        wait.max(Duration::from_micros(200))
    }
}

/// Reliable datagram endpoint: unreliable-datagram ergonomics with
/// TCP-grade delivery guarantees per peer.
pub struct RdConduit {
    inner: Arc<Inner>,
    io: Option<std::thread::JoinHandle<()>>,
}

impl RdConduit {
    /// Binds a reliable-datagram conduit at `addr`.
    ///
    /// Fails with [`NetError::Protocol`] when the config's window and
    /// SACK bitmap width are inconsistent (see
    /// [`RdConfig::resolve_sack_words`]).
    pub fn bind(fabric: &Fabric, addr: Addr, cfg: RdConfig) -> NetResult<Self> {
        Self::wrap(DgramConduit::bind(fabric, addr)?, cfg)
    }

    /// Binds at an ephemeral port on `node`.
    pub fn bind_ephemeral(fabric: &Fabric, node: NodeId, cfg: RdConfig) -> NetResult<Self> {
        Self::wrap(DgramConduit::bind_ephemeral(fabric, node)?, cfg)
    }

    fn wrap(dg: DgramConduit, cfg: RdConfig) -> NetResult<Self> {
        let sack_words = cfg.resolve_sack_words()?;
        let t = dg.fabric().telemetry().clone();
        let tel = RdTel {
            tx_msgs: t.counter("simnet.rdgram.tx_msgs"),
            rx_msgs: t.counter("simnet.rdgram.rx_msgs"),
            retransmits: t.counter("simnet.rdgram.retransmits"),
            acks_tx: t.counter("simnet.rdgram.acks_tx"),
            tel: t,
        };
        let inner = Arc::new(Inner {
            dg,
            sack_words,
            horizon: sack_words as u64 * 64,
            adaptive: cfg.cc != CcAlgo::Fixed,
            cfg,
            tel,
            st: Mutex::new(St {
                tx: HashMap::new(),
                rx: HashMap::new(),
                ready: VecDeque::new(),
                err: None,
                shutdown: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        let io_inner = Arc::clone(&inner);
        let io = std::thread::Builder::new()
            .name("rd-io".into())
            .spawn(move || {
                loop {
                    let wait = {
                        let st = io_inner.st.lock();
                        if st.shutdown {
                            return;
                        }
                        io_inner.next_deadline_in(&st)
                    };
                    let got = io_inner.dg.recv_from(Some(wait));
                    let mut st = io_inner.st.lock();
                    if st.shutdown {
                        return;
                    }
                    match got {
                        Ok((src, data)) => {
                            io_inner.on_datagram(&mut st, src, &data);
                            while let Ok((src, data)) = io_inner.dg.try_recv_from() {
                                io_inner.on_datagram(&mut st, src, &data);
                            }
                        }
                        Err(NetError::Timeout) => {}
                        Err(e) => {
                            st.err = Some(e);
                            io_inner.readable.notify_all();
                            io_inner.writable.notify_all();
                            return;
                        }
                    }
                    io_inner.sweep_timers(&mut st);
                }
            })
            .expect("spawn rd io thread");
        Ok(Self {
            inner,
            io: Some(io),
        })
    }

    /// Local address.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.inner.dg.local_addr()
    }

    /// The fabric this conduit is bound on.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        self.inner.dg.fabric()
    }

    /// Wire packets waiting in the underlying delivery ring; see
    /// [`DgramConduit::rx_backlog`].
    #[must_use]
    pub fn rx_backlog(&self) -> usize {
        self.inner.dg.rx_backlog()
    }

    /// Largest message this conduit accepts (one datagram's worth).
    #[must_use]
    pub fn max_datagram(&self) -> usize {
        self.inner.dg.max_datagram() - DATA_HEADER
    }

    /// Sends `payload` reliably to `dst`; blocks while the per-peer send
    /// window (congestion window ∩ configured window) is full. Returns
    /// once the message is queued and transmitted (not once
    /// acknowledged).
    pub fn send_to(&self, dst: Addr, payload: Bytes) -> NetResult<()> {
        if payload.len() > self.max_datagram() {
            return Err(NetError::TooBig {
                len: payload.len(),
                max: self.max_datagram(),
            });
        }
        let inner = &self.inner;
        let window = inner.cfg.window as u64;
        let mut st = inner.st.lock();
        loop {
            if let Some(e) = &st.err {
                return Err(e.clone());
            }
            let tel = &inner.tel;
            let tx = st.tx.entry(dst).or_insert_with(|| PeerTx {
                engine: RecoveryEngine::new(inner.cfg.recovery_config())
                    .with_telemetry(&tel.tel),
                payloads: BTreeMap::new(),
            });
            let t = tx.engine.now();
            if tx.engine.can_send(1, window) {
                if let Some(hold) = tx.engine.pace_delay(t) {
                    inner.writable.wait_for(&mut st, hold);
                    continue;
                }
                let seq = tx.engine.on_send(t, 1);
                tx.payloads.insert(seq, payload.clone());
                inner.tel.tx_msgs.inc();
                inner.send_data(dst, seq, &payload);
                return Ok(());
            }
            inner.writable.wait(&mut st);
        }
    }

    /// Receives the next in-order message from any peer.
    pub fn recv_from(&self, timeout: Option<Duration>) -> NetResult<(Addr, Bytes)> {
        let inner = &self.inner;
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = inner.st.lock();
        loop {
            if let Some(item) = st.ready.pop_front() {
                return Ok(item);
            }
            if let Some(e) = &st.err {
                return Err(e.clone());
            }
            match deadline {
                None => {
                    inner.readable.wait(&mut st);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(NetError::Timeout);
                    }
                    inner.readable.wait_for(&mut st, d - now);
                }
            }
        }
    }

    /// Blocks until every queued message to every peer is acknowledged.
    pub fn flush(&self, timeout: Duration) -> NetResult<()> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.st.lock();
        loop {
            if st.tx.values().all(|t| t.engine.outstanding() == 0) {
                return Ok(());
            }
            if let Some(e) = &st.err {
                return Err(e.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            self.inner.writable.wait_for(&mut st, deadline - now);
        }
    }
}

impl Drop for RdConduit {
    fn drop(&mut self) {
        self.inner.st.lock().shutdown = true;
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireConfig;

    fn pair(fab: &Fabric) -> (RdConduit, RdConduit) {
        pair_with(fab, RdConfig::default())
    }

    fn pair_with(fab: &Fabric, cfg: RdConfig) -> (RdConduit, RdConduit) {
        let a = RdConduit::bind(fab, Addr::new(0, 300), cfg.clone()).unwrap();
        let b = RdConduit::bind(fab, Addr::new(1, 300), cfg).unwrap();
        (a, b)
    }

    #[test]
    fn basic_roundtrip() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        a.send_to(b.local_addr(), Bytes::from_static(b"reliable")).unwrap();
        let (src, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(src, a.local_addr());
        assert_eq!(&data[..], b"reliable");
    }

    #[test]
    fn ordered_delivery_without_loss() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        for i in 0..200u32 {
            a.send_to(b.local_addr(), Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..200u32 {
            let (_, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
            assert_eq!(u32::from_be_bytes(data[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn ordered_delivery_under_loss() {
        // 5% wire loss: the RD layer must still deliver every message,
        // in order, exactly once.
        let fab = Fabric::new(WireConfig::with_loss(0.05, 21));
        let (a, b) = pair(&fab);
        let n = 300u32;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    a.send_to(b.local_addr(), Bytes::from(i.to_be_bytes().to_vec()))
                        .unwrap();
                }
            });
            for i in 0..n {
                let (_, data) = b.recv_from(Some(Duration::from_secs(10))).unwrap();
                assert_eq!(u32::from_be_bytes(data[..].try_into().unwrap()), i);
            }
        });
    }

    #[test]
    fn ordered_delivery_under_loss_adaptive() {
        // Same contract with the adaptive algorithms driving recovery.
        for cc in [CcAlgo::NewReno, CcAlgo::Cubic] {
            let fab = Fabric::new(WireConfig::with_loss(0.05, 22));
            let cfg = RdConfig { cc, ..RdConfig::default() };
            let (a, b) = pair_with(&fab, cfg);
            let n = 300u32;
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in 0..n {
                        a.send_to(b.local_addr(), Bytes::from(i.to_be_bytes().to_vec()))
                            .unwrap();
                    }
                });
                for i in 0..n {
                    let (_, data) = b.recv_from(Some(Duration::from_secs(10))).unwrap();
                    assert_eq!(
                        u32::from_be_bytes(data[..].try_into().unwrap()),
                        i,
                        "cc={cc}"
                    );
                }
            });
        }
    }

    #[test]
    fn wide_window_needs_wide_bitmap() {
        // window 256 derives a 4-word bitmap; deliveries must survive
        // reordering across the whole widened horizon.
        let fab = Fabric::new(WireConfig::with_loss(0.02, 77));
        let cfg = RdConfig {
            window: 256,
            cc: CcAlgo::NewReno,
            ..RdConfig::default()
        };
        assert_eq!(cfg.resolve_sack_words().unwrap(), 4);
        let (a, b) = pair_with(&fab, cfg);
        let n = 600u32;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    a.send_to(b.local_addr(), Bytes::from(i.to_be_bytes().to_vec()))
                        .unwrap();
                }
            });
            for i in 0..n {
                let (_, data) = b.recv_from(Some(Duration::from_secs(10))).unwrap();
                assert_eq!(u32::from_be_bytes(data[..].try_into().unwrap()), i);
            }
        });
    }

    #[test]
    fn inconsistent_config_rejected() {
        let fab = Fabric::loopback();
        // Bitmap narrower than the window: a sender could outrun ACKs.
        let narrow = RdConfig {
            window: 130,
            sack_words: Some(2),
            ..RdConfig::default()
        };
        assert!(matches!(
            RdConduit::bind(&fab, Addr::new(0, 310), narrow),
            Err(NetError::Protocol(_))
        ));
        let zero_window = RdConfig { window: 0, ..RdConfig::default() };
        assert!(matches!(
            RdConduit::bind(&fab, Addr::new(0, 311), zero_window),
            Err(NetError::Protocol(_))
        ));
        let zero_words = RdConfig { sack_words: Some(0), ..RdConfig::default() };
        assert!(matches!(
            RdConduit::bind(&fab, Addr::new(0, 312), zero_words),
            Err(NetError::Protocol(_))
        ));
        let too_wide = RdConfig {
            window: 60_000,
            ..RdConfig::default()
        };
        assert!(matches!(
            RdConduit::bind(&fab, Addr::new(0, 313), too_wide),
            Err(NetError::Protocol(_))
        ));
        // Derivation: window 100 needs 2 words; explicit wider is fine.
        assert_eq!(
            RdConfig { window: 100, ..RdConfig::default() }.resolve_sack_words().unwrap(),
            2
        );
        let wider = RdConfig {
            window: 10,
            sack_words: Some(3),
            ..RdConfig::default()
        };
        assert_eq!(wider.resolve_sack_words().unwrap(), 3);
        drop(RdConduit::bind(&fab, Addr::new(0, 314), wider).unwrap());
    }

    #[test]
    fn retry_exhaustion_surfaces_reset() {
        // A peer that never answers: the sender must give up after
        // max_retries and surface Reset instead of retrying forever.
        let fab = Fabric::loopback();
        let cfg = RdConfig {
            rto: Duration::from_millis(2),
            max_retries: 4,
            ..RdConfig::default()
        };
        let a = RdConduit::bind(&fab, Addr::new(0, 320), cfg).unwrap();
        // No conduit at the destination: data vanishes, no ACKs come.
        a.send_to(Addr::new(9, 9), Bytes::from_static(b"void")).unwrap();
        let err = a.flush(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, NetError::Reset);
        // Subsequent operations observe the reset too.
        assert_eq!(
            a.send_to(Addr::new(9, 9), Bytes::from_static(b"x")).unwrap_err(),
            NetError::Reset
        );
    }

    #[test]
    fn flush_waits_for_acks() {
        let fab = Fabric::new(WireConfig::with_loss(0.05, 5));
        let (a, b) = pair(&fab);
        for i in 0..50u8 {
            a.send_to(b.local_addr(), Bytes::from(vec![i])).unwrap();
        }
        a.flush(Duration::from_secs(10)).unwrap();
        // All 50 must now be deliverable without further retransmission.
        for i in 0..50u8 {
            let (_, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
            assert_eq!(data[0], i);
        }
    }

    #[test]
    fn large_message_roundtrip() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 247) as u8).collect();
        a.send_to(b.local_addr(), Bytes::from(payload.clone())).unwrap();
        let (_, data) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(&data[..], &payload[..]);
    }

    #[test]
    fn oversized_rejected() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let too_big = vec![0u8; a.max_datagram() + 1];
        assert!(matches!(
            a.send_to(b.local_addr(), Bytes::from(too_big)),
            Err(NetError::TooBig { .. })
        ));
    }

    #[test]
    fn bidirectional_flows_independent() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        a.send_to(b.local_addr(), Bytes::from_static(b"a->b")).unwrap();
        b.send_to(a.local_addr(), Bytes::from_static(b"b->a")).unwrap();
        let (_, d1) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
        let (_, d2) = a.recv_from(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(&d1[..], b"a->b");
        assert_eq!(&d2[..], b"b->a");
    }

    #[test]
    fn recv_timeout() {
        let fab = Fabric::loopback();
        let (_a, b) = pair(&fab);
        assert_eq!(
            b.recv_from(Some(Duration::from_millis(20))).unwrap_err(),
            NetError::Timeout
        );
    }
}
