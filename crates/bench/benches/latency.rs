//! Criterion micro-benchmarks for Fig. 5: ping-pong latency per method.
//!
//! These sample representative points of the figure's grid; the full sweep
//! lives in the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwarp_bench::{latency, FabricKind, Method};

fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_latency");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    for method in Method::FIG56 {
        for size in [4usize, 1024, 16 * 1024] {
            g.bench_with_input(
                BenchmarkId::new(method.label(), size),
                &size,
                |b, &size| {
                    b.iter(|| latency(FabricKind::Fast, method, size, 1, 4));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
