#!/usr/bin/env sh
# Tier-1 gate plus lint, exactly what CI runs. Usage: scripts/ci.sh
#
# The build is fully offline: every external crate resolves to a vendored
# shim under shims/ (see ROADMAP.md), so no registry access is needed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root-package full-stack tests)"
cargo test -q

echo "==> cargo test --workspace -q (per-crate suites)"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
