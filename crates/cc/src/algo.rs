//! The [`CongestionControl`] trait and its three implementations.
//!
//! Controllers are deliberately *dumb*: they see a stream of events
//! (acks, SACK-detected gaps, timeouts, sends) from the
//! [`crate::engine::RecoveryEngine`] and maintain only a congestion
//! window and slow-start threshold. All scoreboard bookkeeping — which
//! sequences are outstanding, sacked, or lost, when to fire the RTO,
//! what to retransmit — lives in the engine, so every algorithm shares
//! one recovery discipline and differs only in how aggressively it
//! ramps the window.
//!
//! Everything is measured in abstract *units* (bytes for the byte
//! stream, messages for `rdgram`); `quantum` is the unit equivalent of
//! one MSS so window arithmetic is path-agnostic. Controllers hold no
//! RNG and no wall-clock reads — state is a pure function of the event
//! sequence fed in, which is what keeps seeded chaos runs replayable.

use std::fmt;
use std::time::Duration;

use iwarp_common::ccalgo::CcAlgo;

/// Sizing parameters shared by every controller.
#[derive(Clone, Copy, Debug)]
pub struct CcConfig {
    /// One MSS-equivalent in engine units (bytes for streams, 1 for
    /// message-sequenced paths).
    pub quantum: u64,
    /// Initial congestion window, in units (adaptive algorithms).
    pub init_cwnd: u64,
    /// The constant window [`Fixed`] holds forever, in units.
    pub fixed_window: u64,
    /// Hard upper bound on the congestion window, in units.
    pub max_cwnd: u64,
}

/// A congestion controller: consumes recovery events, produces a window.
///
/// `t` is time since the owning engine's epoch (a [`Duration`], not an
/// `Instant`, so unit tests can fabricate timelines without sleeping).
pub trait CongestionControl: Send + fmt::Debug {
    /// Short algorithm name for telemetry/bench labels.
    fn name(&self) -> &'static str;
    /// `acked` units left the network via cumulative ACK; `rtt` is a
    /// Karn-clean sample when one was available.
    fn on_ack(&mut self, t: Duration, acked: u64, rtt: Option<Duration>);
    /// Loss inferred from SACK gaps / duplicate ACKs (fast recovery —
    /// called once per recovery episode, not per lost segment).
    /// `in_flight` is the unsacked outstanding volume at detection time.
    fn on_sack_gap(&mut self, t: Duration, in_flight: u64);
    /// Retransmission timeout fired: collapse to one quantum.
    fn on_rto(&mut self, t: Duration);
    /// `units` were handed to the wire (new data, not retransmits).
    fn on_send(&mut self, t: Duration, units: u64);
    /// Current congestion window, in units.
    fn cwnd(&self) -> u64;
    /// Current slow-start threshold, in units (`u64::MAX` = uncapped).
    fn ssthresh(&self) -> u64;
    /// Minimum gap between consecutive quantum-sized sends that spreads
    /// `cwnd` over one SRTT, or `None` to leave sends unpaced. Only
    /// applied when the owning config opts into pacing.
    fn pacing_gap(&self, srtt: Option<Duration>) -> Option<Duration>;
}

/// Builds the controller for `algo`.
#[must_use]
pub fn build_cc(algo: CcAlgo, cfg: &CcConfig) -> Box<dyn CongestionControl> {
    match algo {
        CcAlgo::Fixed => Box::new(Fixed { window: cfg.fixed_window.max(cfg.quantum) }),
        CcAlgo::NewReno => Box::new(NewReno::new(cfg)),
        CcAlgo::Cubic => Box::new(Cubic::new(cfg)),
    }
}

/// The legacy baseline: a constant window, no reaction to loss.
#[derive(Debug)]
pub struct Fixed {
    window: u64,
}

impl CongestionControl for Fixed {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn on_ack(&mut self, _t: Duration, _acked: u64, _rtt: Option<Duration>) {}
    fn on_sack_gap(&mut self, _t: Duration, _in_flight: u64) {}
    fn on_rto(&mut self, _t: Duration) {}
    fn on_send(&mut self, _t: Duration, _units: u64) {}
    fn cwnd(&self) -> u64 {
        self.window
    }
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }
    fn pacing_gap(&self, _srtt: Option<Duration>) -> Option<Duration> {
        None
    }
}

/// NewReno: exponential slow start below `ssthresh`, additive increase
/// above it, multiplicative decrease on loss (halve on a SACK gap,
/// collapse to one quantum on RTO).
#[derive(Debug)]
pub struct NewReno {
    q: f64,
    cwnd: f64,
    ssthresh: f64,
    max: f64,
}

impl NewReno {
    fn new(cfg: &CcConfig) -> Self {
        let q = cfg.quantum.max(1) as f64;
        Self {
            q,
            cwnd: (cfg.init_cwnd.max(cfg.quantum)) as f64,
            ssthresh: f64::INFINITY,
            max: cfg.max_cwnd.max(cfg.quantum) as f64,
        }
    }

    fn clamp(&mut self) {
        self.cwnd = self.cwnd.clamp(self.q, self.max);
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_ack(&mut self, _t: Duration, acked: u64, _rtt: Option<Duration>) {
        let acked = acked as f64;
        if self.cwnd < self.ssthresh {
            // Slow start: grow by the acked volume (capped at 2 quanta
            // per ACK, RFC 3465 L=2, so stretch ACKs don't burst).
            self.cwnd += acked.min(2.0 * self.q);
        } else {
            // Congestion avoidance: ~one quantum per RTT.
            self.cwnd += self.q * acked / self.cwnd;
        }
        self.clamp();
    }

    fn on_sack_gap(&mut self, _t: Duration, in_flight: u64) {
        self.ssthresh = (in_flight as f64 / 2.0).max(2.0 * self.q);
        self.cwnd = self.ssthresh;
        self.clamp();
    }

    fn on_rto(&mut self, _t: Duration) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.q);
        self.cwnd = self.q;
        self.clamp();
    }

    fn on_send(&mut self, _t: Duration, _units: u64) {}

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn pacing_gap(&self, srtt: Option<Duration>) -> Option<Duration> {
        spread_over_srtt(self.cwnd, self.q, srtt)
    }
}

/// CUBIC (RFC 8312 shape): after a loss the window regrows along a cubic
/// curve centred on the pre-loss window `w_max` — fast while far below
/// it, flat near it, then convex probing beyond it. Slow start below
/// `ssthresh` is inherited from NewReno.
#[derive(Debug)]
pub struct Cubic {
    q: f64,
    cwnd: f64,
    ssthresh: f64,
    max: f64,
    /// Window (in quanta) at the last loss event.
    w_max: f64,
    /// Time (s) for the cubic to return to `w_max` from the post-loss
    /// window.
    k: f64,
    /// Start of the current growth epoch.
    epoch: Option<Duration>,
}

/// Cubic scaling constant, in quanta per second³.
const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    fn new(cfg: &CcConfig) -> Self {
        let q = cfg.quantum.max(1) as f64;
        Self {
            q,
            cwnd: (cfg.init_cwnd.max(cfg.quantum)) as f64,
            ssthresh: f64::INFINITY,
            max: cfg.max_cwnd.max(cfg.quantum) as f64,
            w_max: 0.0,
            k: 0.0,
            epoch: None,
        }
    }

    fn on_loss(&mut self, shrink_to: f64) {
        self.w_max = self.cwnd / self.q;
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * self.q);
        self.cwnd = shrink_to.clamp(self.q, self.max);
        self.epoch = None;
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, t: Duration, acked: u64, _rtt: Option<Duration>) {
        let acked = acked as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += acked.min(2.0 * self.q);
            self.cwnd = self.cwnd.clamp(self.q, self.max);
            return;
        }
        let epoch = *self.epoch.get_or_insert_with(|| {
            // New epoch: aim the cubic at the pre-loss plateau.
            let w_start = self.cwnd / self.q;
            self.w_max = self.w_max.max(w_start);
            self.k = ((self.w_max - w_start).max(0.0) / CUBIC_C).cbrt();
            t
        });
        let dt = t.saturating_sub(epoch).as_secs_f64();
        let target_q = CUBIC_C * (dt - self.k).powi(3) + self.w_max;
        let target = (target_q * self.q).clamp(self.q, self.max);
        let cwnd_q = (self.cwnd / self.q).max(1.0);
        // Per acked quantum move (target-cwnd)/cwnd_q toward the target:
        // one RTT of ACKs closes the full gap. Below target, creep at the
        // TCP-friendly floor of 1% of a quantum per quantum acked.
        let per_quantum = if target > self.cwnd {
            (target - self.cwnd) / cwnd_q
        } else {
            self.q * 0.01 / cwnd_q
        };
        self.cwnd += per_quantum * (acked / self.q);
        self.cwnd = self.cwnd.clamp(self.q, self.max);
    }

    fn on_sack_gap(&mut self, _t: Duration, in_flight: u64) {
        let floor = 2.0 * self.q;
        let shrink = ((in_flight as f64).min(self.cwnd) * CUBIC_BETA).max(floor);
        self.on_loss(shrink);
    }

    fn on_rto(&mut self, _t: Duration) {
        self.on_loss(self.q);
    }

    fn on_send(&mut self, _t: Duration, _units: u64) {}

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn pacing_gap(&self, srtt: Option<Duration>) -> Option<Duration> {
        spread_over_srtt(self.cwnd, self.q, srtt)
    }
}

/// One SRTT divided into `cwnd / quantum` send slots.
fn spread_over_srtt(cwnd: f64, q: f64, srtt: Option<Duration>) -> Option<Duration> {
    let srtt = srtt?;
    let quanta = (cwnd / q).max(1.0);
    Some(srtt.div_f64(quanta))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn cfg() -> CcConfig {
        CcConfig { quantum: 1, init_cwnd: 2, fixed_window: 64, max_cwnd: 1 << 20 }
    }

    #[test]
    fn fixed_ignores_everything() {
        let mut cc = build_cc(CcAlgo::Fixed, &cfg());
        assert_eq!(cc.cwnd(), 64);
        cc.on_rto(MS);
        cc.on_sack_gap(MS, 32);
        cc.on_ack(MS, 16, Some(MS));
        assert_eq!(cc.cwnd(), 64);
        assert!(cc.pacing_gap(Some(MS)).is_none());
    }

    #[test]
    fn newreno_slow_start_doubles_then_halves_on_gap() {
        let mut cc = build_cc(CcAlgo::NewReno, &cfg());
        let start = cc.cwnd();
        // One window acked in quantum-sized ACKs ≈ doubles cwnd.
        for _ in 0..start {
            cc.on_ack(MS, 1, None);
        }
        assert_eq!(cc.cwnd(), 2 * start);
        let before = cc.cwnd();
        cc.on_sack_gap(MS, before);
        assert_eq!(cc.cwnd(), (before / 2).max(2));
        assert_eq!(cc.ssthresh(), cc.cwnd());
        // Congestion avoidance: a full window of ACKs adds ~1 quantum.
        let ca = cc.cwnd();
        for _ in 0..ca {
            cc.on_ack(MS, 1, None);
        }
        assert!(cc.cwnd() >= ca && cc.cwnd() <= ca + 2, "cwnd={}", cc.cwnd());
    }

    #[test]
    fn newreno_rto_collapses_to_one_quantum() {
        let mut cc = build_cc(CcAlgo::NewReno, &cfg());
        for _ in 0..100 {
            cc.on_ack(MS, 4, None);
        }
        assert!(cc.cwnd() > 8);
        cc.on_rto(MS);
        assert_eq!(cc.cwnd(), 1);
        assert!(cc.ssthresh() >= 2);
    }

    #[test]
    fn cubic_regrows_toward_wmax_then_probes_past_it() {
        let mut cc = build_cc(CcAlgo::Cubic, &cfg());
        // Grow to a plateau, then lose.
        for _ in 0..200 {
            cc.on_ack(MS, 4, None);
        }
        let plateau = cc.cwnd();
        cc.on_sack_gap(MS, plateau);
        let post_loss = cc.cwnd();
        assert!(post_loss < plateau);
        // Feed ACKs across a simulated timeline longer than the cubic's
        // K (≈6.7 s here): cwnd should recover past the old plateau and
        // keep probing convexly beyond it.
        let mut t = 10 * MS;
        for _ in 0..12_000 {
            cc.on_ack(t, 1, None);
            t += MS;
        }
        assert!(
            cc.cwnd() > plateau,
            "cubic failed to probe past w_max: {} <= {}",
            cc.cwnd(),
            plateau
        );
    }

    #[test]
    fn pacing_gap_spreads_window_over_srtt() {
        let mut cc = build_cc(CcAlgo::NewReno, &cfg());
        for _ in 0..30 {
            cc.on_ack(MS, 1, None);
        }
        let cwnd = cc.cwnd();
        let gap = cc.pacing_gap(Some(10 * MS)).unwrap();
        let expect = (10 * MS).div_f64(cwnd as f64);
        let diff = gap.abs_diff(expect);
        assert!(diff < Duration::from_micros(50), "gap={gap:?} expect={expect:?}");
        assert!(cc.pacing_gap(None).is_none());
    }
}
