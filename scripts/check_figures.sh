#!/usr/bin/env sh
# Sanity-checks the fig5/fig6 CSVs a `figures` run produced.
# Usage: scripts/check_figures.sh RESULTS_DIR
#
# "Sane" here is deliberately coarse — absolute numbers vary by host and
# quick-mode runs are noisy — but the *shape* must hold on any machine:
# every cell is a positive finite number, and each series is monotone
# between its extremes (latency grows from the smallest to the largest
# message; bandwidth at the largest message beats the smallest).
set -eu

dir="${1:?usage: check_figures.sh RESULTS_DIR}"

check() {
    file="$1" mode="$2"
    [ -f "$file" ] || { echo "missing $file" >&2; exit 1; }
    awk -F, -v mode="$mode" -v fname="$file" '
        NR == 1 { cols = NF; next }
        {
            if (NF != cols) { printf "%s:%d: ragged row\n", fname, NR; bad = 1; exit 1 }
            for (i = 2; i <= NF; i++) {
                if ($i + 0 <= 0) {
                    printf "%s:%d: non-positive value %s\n", fname, NR, $i
                    bad = 1; exit 1
                }
                if (NR == 2) first[i] = $i + 0
                last[i] = $i + 0
            }
            rows++
        }
        END {
            if (bad) exit 1
            if (rows < 2) { printf "%s: too few rows (%d)\n", fname, rows; exit 1 }
            for (i = 2; i <= cols; i++) {
                if (mode == "latency" && last[i] <= first[i]) {
                    printf "%s: col %d latency not increasing (%.3f -> %.3f)\n", \
                        fname, i, first[i], last[i]
                    exit 1
                }
                if (mode == "bandwidth" && last[i] <= first[i]) {
                    printf "%s: col %d bandwidth not increasing (%.3f -> %.3f)\n", \
                        fname, i, first[i], last[i]
                    exit 1
                }
            }
        }
    ' "$file"
}

check "$dir/fig5_latency.csv" latency
check "$dir/fig6_bandwidth.csv" bandwidth
echo "figures CSVs in $dir look sane"
