//! Property-based tests for the SIP codec.

use proptest::prelude::*;

use iwarp_apps::sip::codec::{SipMessage, SipMethod, StartLine};

fn arb_method() -> impl Strategy<Value = SipMethod> {
    prop_oneof![
        Just(SipMethod::Invite),
        Just(SipMethod::Ack),
        Just(SipMethod::Bye),
        Just(SipMethod::Options),
        Just(SipMethod::Register),
    ]
}

/// Header-safe tokens: no CR/LF/colon, non-empty, no surrounding space.
fn token() -> impl Strategy<Value = String> {
    "[A-Za-z0-9@._-]{1,24}"
}

prop_compose! {
    fn arb_message()(is_request in any::<bool>(),
                     method in arb_method(),
                     uri in token(),
                     code in 100u16..700,
                     reason in "[A-Za-z ]{1,16}",
                     headers in proptest::collection::vec((token(), token()), 0..8),
                     body in proptest::collection::vec(any::<u8>(), 0..256)) -> SipMessage {
        let mut msg = if is_request {
            SipMessage::request(method, &format!("sip:{uri}"))
        } else {
            SipMessage::response(code, reason.trim())
        };
        for (n, v) in headers {
            msg.push_header(&n, &v);
        }
        msg.body = body;
        msg
    }
}

proptest! {
    /// Every generated message encodes and re-parses identically
    /// (modulo the recomputed Content-Length header).
    #[test]
    fn encode_parse_roundtrip(msg in arb_message()) {
        let enc = msg.encode();
        let parsed = SipMessage::parse(&enc).unwrap();
        prop_assert_eq!(&parsed.start, &msg.start);
        prop_assert_eq!(&parsed.body, &msg.body);
        // The full ordered header list survives (Content-Length is
        // recomputed/appended by the encoder, so exclude it on both sides;
        // duplicate header names must be preserved in order).
        let strip = |hs: &[(String, String)]| -> Vec<(String, String)> {
            hs.iter()
                .filter(|(n, _)| !n.eq_ignore_ascii_case("Content-Length"))
                .cloned()
                .collect()
        };
        prop_assert_eq!(strip(&parsed.headers), strip(&msg.headers));
    }

    /// Pipelined messages are framed correctly from a byte stream at any
    /// chunk boundary — the RC transport case.
    #[test]
    fn stream_framing_at_any_boundary(msgs in proptest::collection::vec(arb_message(), 1..4),
                                      cut in any::<usize>()) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode());
        }
        // Feed in two pieces split at an arbitrary point; the parser must
        // report "incomplete" rather than mis-framing.
        let cut = cut % (stream.len() + 1);
        let mut buf = stream[..cut].to_vec();
        let mut parsed = Vec::new();
        loop {
            match SipMessage::parse_prefix(&buf) {
                Ok((m, used)) => {
                    buf.drain(..used);
                    parsed.push(m);
                }
                Err(e) if SipMessage::is_incomplete(&e) => break,
                Err(e) => return Err(TestCaseError::fail(format!("mis-framed: {e}"))),
            }
        }
        buf.extend_from_slice(&stream[cut..]);
        loop {
            match SipMessage::parse_prefix(&buf) {
                Ok((m, used)) => {
                    buf.drain(..used);
                    parsed.push(m);
                }
                Err(e) if SipMessage::is_incomplete(&e) => break,
                Err(e) => return Err(TestCaseError::fail(format!("mis-framed: {e}"))),
            }
        }
        prop_assert!(buf.is_empty());
        prop_assert_eq!(parsed.len(), msgs.len());
        for (got, want) in parsed.iter().zip(&msgs) {
            prop_assert_eq!(&got.start, &want.start);
            prop_assert_eq!(&got.body, &want.body);
        }
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SipMessage::parse(&junk);
        let _ = SipMessage::parse_prefix(&junk);
    }

    /// Status lines preserve their code; request lines their method.
    #[test]
    fn start_line_fields(msg in arb_message()) {
        let parsed = SipMessage::parse(&msg.encode()).unwrap();
        match (&msg.start, &parsed.start) {
            (StartLine::Request { method: a, .. }, StartLine::Request { method: b, .. }) => {
                prop_assert_eq!(a, b);
            }
            (StartLine::Status { code: a, .. }, StartLine::Status { code: b, .. }) => {
                prop_assert_eq!(a, b);
            }
            _ => prop_assert!(false, "start line kind changed"),
        }
    }
}
