//! Control messages of the socket shim: the slot-ring advertisement.
//!
//! Write-Record needs the sender to know the target's STag and ring
//! geometry. A full SDP-like protocol would carry this in its connection
//! setup; the shim bootstraps it with a one-time request/reply exchanged
//! as ordinary (send/recv) datagrams, after which all data moves one-sided.

use bytes::{BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"IWSA";

/// Advertisement request/reply payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// "Send me your ring advertisement."
    AdvRequest,
    /// Ring advertisement: where Write-Records may land.
    AdvReply {
        /// STag of the remote-writable ring region.
        stag: u32,
        /// Number of slots in the ring.
        slots: u32,
        /// Bytes per slot.
        slot_size: u32,
    },
}

impl Control {
    /// Serializes the control message.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(17);
        b.extend_from_slice(MAGIC);
        match self {
            Control::AdvRequest => b.put_u8(1),
            Control::AdvReply {
                stag,
                slots,
                slot_size,
            } => {
                b.put_u8(2);
                b.put_u32(*stag);
                b.put_u32(*slots);
                b.put_u32(*slot_size);
            }
        }
        b.freeze()
    }

    /// Parses a control message; `None` if `raw` is application data.
    #[must_use]
    pub fn decode(raw: &[u8]) -> Option<Control> {
        if raw.len() < 5 || &raw[..4] != MAGIC {
            return None;
        }
        match raw[4] {
            1 => Some(Control::AdvRequest),
            2 if raw.len() >= 17 => Some(Control::AdvReply {
                stag: u32::from_be_bytes(raw[5..9].try_into().ok()?),
                slots: u32::from_be_bytes(raw[9..13].try_into().ok()?),
                slot_size: u32::from_be_bytes(raw[13..17].try_into().ok()?),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request() {
        let enc = Control::AdvRequest.encode();
        assert_eq!(Control::decode(&enc), Some(Control::AdvRequest));
    }

    #[test]
    fn roundtrip_reply() {
        let c = Control::AdvReply {
            stag: 0x555,
            slots: 16,
            slot_size: 4096,
        };
        assert_eq!(Control::decode(&c.encode()), Some(c));
    }

    #[test]
    fn app_data_is_not_control() {
        assert_eq!(Control::decode(b"hello world"), None);
        assert_eq!(Control::decode(b""), None);
        assert_eq!(Control::decode(b"IWS"), None);
        // Magic but bad type.
        assert_eq!(Control::decode(b"IWSA\x09"), None);
    }
}
