//! Process-wide default for which congestion-control algorithm the
//! reliable paths run.
//!
//! The loss-recovery subsystem (`iwarp-cc`) gives `simnet::stream` and
//! `simnet::rdgram` a shared selective-repeat engine with a pluggable
//! congestion controller. Which controller a conduit uses is a per-config
//! knob (`StreamConfig::cc`, `RdConfig::cc`); like [`crate::copypath`]
//! and [`crate::burstpath`], this module only stores the *default* those
//! configs pick up at construction time. The default is
//! [`CcAlgo::Fixed`] — a fixed window with the legacy fixed retransmit
//! timer — so chaos/determinism baselines are untouched unless a run
//! opts in (`--cc newreno` / `--cc cubic`).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which congestion-control algorithm a reliable path runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CcAlgo {
    /// Fixed window, fixed (non-adaptive) retransmission timer. The
    /// legacy behavior and the default.
    Fixed,
    /// NewReno-style slow start / congestion avoidance / fast recovery
    /// with an RFC-6298 adaptive RTO.
    NewReno,
    /// CUBIC window growth (concave/convex probing around the last loss
    /// window) with an RFC-6298 adaptive RTO.
    Cubic,
}

impl CcAlgo {
    /// Every algorithm, in sweep order.
    pub const ALL: [CcAlgo; 3] = [CcAlgo::Fixed, CcAlgo::NewReno, CcAlgo::Cubic];

    /// Parses the `--cc` CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(Self::Fixed),
            "newreno" => Some(Self::NewReno),
            "cubic" => Some(Self::Cubic),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Fixed => "fixed",
            Self::NewReno => "newreno",
            Self::Cubic => "cubic",
        }
    }
}

impl std::fmt::Display for CcAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

static DEFAULT: AtomicU8 = AtomicU8::new(0); // 0 = Fixed

/// Sets the process-wide default algorithm picked up by reliable-path
/// configs at construction time (e.g. from `recovery --cc newreno`).
pub fn set_default(algo: CcAlgo) {
    DEFAULT.store(
        match algo {
            CcAlgo::Fixed => 0,
            CcAlgo::NewReno => 1,
            CcAlgo::Cubic => 2,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide default algorithm.
#[must_use]
pub fn default_algo() -> CcAlgo {
    match DEFAULT.load(Ordering::Relaxed) {
        1 => CcAlgo::NewReno,
        2 => CcAlgo::Cubic,
        _ => CcAlgo::Fixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for algo in CcAlgo::ALL {
            assert_eq!(CcAlgo::parse(algo.as_str()), Some(algo));
            assert_eq!(algo.to_string(), algo.as_str());
        }
        assert_eq!(CcAlgo::parse("reno"), None);
    }
}
