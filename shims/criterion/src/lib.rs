//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the criterion API its benches use: groups, `BenchmarkId`,
//! `Throughput`, `Bencher::{iter, iter_batched}`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! wall-clock sampler (median of `sample_size` samples after a warm-up),
//! with no statistical regression analysis or HTML reports — numbers print
//! to stdout, one line per benchmark.
//!
//! `--test` (passed by `cargo test --benches`) runs every benchmark body
//! once without timing; a positional argument filters benchmarks by
//! substring, like upstream.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// computation whose result is unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a benchmark's work scales, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many elements per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (the shim times each
/// batch of one regardless; the variants exist for API parity).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: function label plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function label and a parameter value.
    pub fn new(label: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = label.into();
        let _ = write!(id, "/{parameter}");
        Self { id }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Sampling settings shared by [`Criterion`] and its groups.
#[derive(Clone, Copy, Debug)]
struct Sampling {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Sampling {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    sampling: Sampling,
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Applies the subset of upstream CLI flags the shim understands.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Cargo/criterion plumbing flags with no shim meaning.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                a if a.starts_with("--") => {}
                a => self.filter = Some(a.to_owned()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sampling: Sampling::default(),
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sampling = self.sampling;
        self.run_one(None, &id.into(), sampling, None, &mut f);
        self
    }

    fn run_one(
        &mut self,
        group: Option<&str>,
        id: &BenchmarkId,
        sampling: Sampling,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let full = match group {
            Some(g) => format!("{g}/{}", id.id),
            None => id.id.clone(),
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sampling,
            test_mode: self.test_mode,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{full}: test passed");
            return;
        }
        let ns = bencher.ns_per_iter;
        let mut line = format!("{full}: {} /iter", fmt_ns(ns));
        if let Some(tp) = throughput {
            let per_sec = |units: u64| units as f64 / (ns / 1e9);
            match tp {
                Throughput::Bytes(b) => {
                    let _ = write!(line, ", {:.1} MiB/s", per_sec(b) / (1024.0 * 1024.0));
                }
                Throughput::Elements(e) => {
                    let _ = write!(line, ", {:.0} elem/s", per_sec(e));
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sampling: Sampling,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sampling.sample_size = n.max(1);
        self
    }

    /// Wall-clock spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.sampling.warm_up_time = d;
        self
    }

    /// Wall-clock budget for the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.sampling.measurement_time = d;
        self
    }

    /// Declares this group's per-iteration work for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sampling, throughput) = (self.sampling, self.throughput);
        self.criterion
            .run_one(Some(&self.name), &id.into(), sampling, throughput, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (sampling, throughput) = (self.sampling, self.throughput);
        self.criterion
            .run_one(Some(&self.name), &id, sampling, throughput, &mut |b| {
                f(b, input);
            });
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// Drives the measured routine.
pub struct Bencher {
    sampling: Sampling,
    test_mode: bool,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up doubles as rate estimation.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.sampling.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = self.sampling.warm_up_time.as_nanos() as f64 / warm_iters as f64;
        let budget_ns = self.sampling.measurement_time.as_nanos() as f64;
        let per_sample =
            ((budget_ns / self.sampling.sample_size as f64 / est_ns.max(1.0)) as u64).max(1);
        let mut samples = Vec::with_capacity(self.sampling.sample_size);
        for _ in 0..self.sampling.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine` over fresh inputs from `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.sampling.warm_up_time || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let est_ns = self.sampling.warm_up_time.as_nanos() as f64 / warm_iters as f64;
        let budget_ns = self.sampling.measurement_time.as_nanos() as f64;
        let per_sample =
            ((budget_ns / self.sampling.sample_size as f64 / est_ns.max(1.0)) as u64).max(1);
        let mut samples = Vec::with_capacity(self.sampling.sample_size);
        for _ in 0..self.sampling.sample_size {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(t0.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_sampling(c: &mut Criterion) {
        c.sampling = Sampling {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
    }

    #[test]
    fn times_a_trivial_routine() {
        let mut c = Criterion::default();
        fast_sampling(&mut c);
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Bytes(8));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &x| {
            ran = true;
            b.iter(|| x + 1);
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut count = 0;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }
}
