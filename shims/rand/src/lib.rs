//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *subset* of `rand` 0.8 it actually uses: `SmallRng`, `SeedableRng::
//! seed_from_u64`, and `Rng::{gen, gen_bool}`. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than
//! upstream `SmallRng`, which is fine because every consumer in this repo
//! only relies on determinism-under-seed, never on specific values.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the tiny stand-in for
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..256 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
