//! Write-Record accounting reconciliation under seeded loss.
//!
//! Runs a lossy UD Write-Record workload and checks that the telemetry
//! counters agree with what the application observes on its completion
//! queue: every `Partial` CQE is one `core.qp.wr_record.partial_placements`
//! tick, every Write-Record CQE one `core.qp.wr_record.completions` tick,
//! and every record still awaiting its lost final segment is eventually one
//! `core.qp.wr_record.stale_gc_reaped` tick. Deterministic: fixed seed,
//! fixed traffic.

use std::time::Duration;

use iwarp::{Access, Cq, CqeOpcode, CqeStatus, Device, QpConfig};
use simnet::{Fabric, NodeId, WireConfig};

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 251) as u8).collect()
}

#[test]
fn write_record_counters_reconcile_with_validity_maps() {
    // 5% i.i.d. loss, fixed seed: the exact same drops every run.
    let fab = Fabric::new(WireConfig::with_loss(0.05, 4242));
    let a = Device::new(&fab, NodeId(0));
    let b = Device::new(&fab, NodeId(1));
    let (a_send, a_recv) = (Cq::new(1024), Cq::new(1024));
    let (b_send, b_recv) = (Cq::new(1024), Cq::new(1024));
    let cfg = QpConfig {
        record_ttl: Duration::from_millis(200),
        ..QpConfig::default()
    };
    let qa = a.create_ud_qp(None, &a_send, &a_recv, cfg.clone()).unwrap();
    let qb = b.create_ud_qp(None, &b_send, &b_recv, cfg).unwrap();

    // Multi-segment messages (4 × 64 KiB DDP segments): loss can strike
    // before the final segment (→ Partial CQE) or the final segment itself
    // (→ no CQE, record reaped on TTL).
    let data = pattern(256 * 1024);
    let sink = b.register(256 * 1024, Access::RemoteWrite);
    let attempts = 40u64;
    for i in 0..attempts {
        qa.post_write_record(i, data.clone(), qb.dest(), sink.stag(), 0)
            .unwrap();
    }
    while a_send.poll().is_some() {}

    let mut success = 0u64;
    let mut partial = 0u64;
    let mut valid_bytes_seen = 0u64;
    while let Ok(cqe) = b_recv.poll_timeout(Duration::from_millis(500)) {
        assert_eq!(cqe.opcode, CqeOpcode::WriteRecord);
        let info = cqe.write_record.expect("write-record info");
        match cqe.status {
            CqeStatus::Success => {
                assert!(info.is_complete());
                success += 1;
            }
            CqeStatus::Partial => {
                assert!(!info.is_complete());
                partial += 1;
            }
            other => panic!("unexpected status {other:?}"),
        }
        // The CQE's byte_len restates the validity map's coverage.
        assert_eq!(u64::from(cqe.byte_len), info.valid_bytes());
        valid_bytes_seen += info.valid_bytes();
    }
    assert!(
        success + partial > 0,
        "no completions at all under 5% loss (seed drift?)"
    );
    assert!(partial > 0, "expected partial placements at 5% loss");
    assert!(valid_bytes_seen > 0);

    // Records whose final segment was lost are still pending; wait out the
    // TTL so the receive engine's sweep reaps every one of them.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let pending_before = qb.records_pending() as u64;
    while qb.records_pending() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(qb.records_pending(), 0, "stale records never reaped");

    let snap = fab.telemetry().snapshot();
    let tel_partial = snap.get("core.qp.wr_record.partial_placements").unwrap_or(0);
    let tel_completions = snap.get("core.qp.wr_record.completions").unwrap_or(0);
    let tel_reaped = snap.get("core.qp.wr_record.stale_gc_reaped").unwrap_or(0);

    // Telemetry must restate exactly what the CQ delivered.
    assert_eq!(tel_partial, partial, "partial_placements vs Partial CQEs");
    assert_eq!(
        tel_completions,
        success + partial,
        "wr_record.completions vs Write-Record CQEs"
    );
    // Everything that was pending after the drain got reaped (no record
    // leaks, no double-reaps).
    assert!(tel_reaped >= pending_before, "reaped fewer than were pending");
    // Every message is accounted for at most once: completed or reaped;
    // the remainder lost every segment on the wire.
    assert!(
        tel_completions + tel_reaped <= attempts,
        "a message completed AND was reaped"
    );

    // The CQ-layer counters saw the same partials (only Write-Record
    // traffic can produce Partial status in this run).
    assert_eq!(snap.get("core.cq.cqe_partial").unwrap_or(0), partial);
}
