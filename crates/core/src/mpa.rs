//! MPA — Marker PDU Aligned framing for the stream (RC) path.
//!
//! TCP is stream-oriented: intermediate devices may resegment, so a
//! receiver cannot know where a DDP segment begins without help. MPA
//! (RFC 5044) solves this by framing each ULPDU into an FPDU
//! (`length | ULPDU | pad | CRC32`) and inserting a 4-byte **marker** at
//! every 512-byte position of the TCP stream, pointing back to the start
//! of the FPDU it falls inside.
//!
//! Both marker insertion and removal require a full extra pass over the
//! payload with a copy — "packet marking ... is a high overhead activity
//! and is very expensive to implement in hardware" (paper §IV.A). This is
//! precisely the layer datagram-iWARP deletes (paper §IV.B item 5), and
//! the ablation benchmarks measure this module to quantify that saving.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use iwarp_common::crc32::crc32c;

use crate::error::{IwarpError, IwarpResult};

/// Marker spacing in stream bytes (RFC 5044 value).
pub const MARKER_INTERVAL: u64 = 512;

/// Marker size in bytes.
pub const MARKER_LEN: usize = 4;

/// Per-FPDU framing overhead without markers: 2-byte length prefix plus
/// the 4-byte CRC (padding varies).
pub const FPDU_OVERHEAD: usize = 6;

/// Negotiated MPA parameters (exchanged by the connection manager).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MpaConfig {
    /// Insert/strip stream markers.
    pub markers: bool,
    /// Compute/verify the per-FPDU CRC32.
    pub crc: bool,
}

impl Default for MpaConfig {
    fn default() -> Self {
        Self {
            markers: true,
            crc: true,
        }
    }
}

fn pad_len(ulpdu_len: usize) -> usize {
    (4 - (2 + ulpdu_len) % 4) % 4
}

/// Transmit-side framer: turns ULPDUs into a marker-studded byte stream.
#[derive(Debug)]
pub struct MpaTx {
    cfg: MpaConfig,
    /// Current stream position (markers included).
    pos: u64,
}

impl MpaTx {
    /// Creates a framer at stream position 0.
    #[must_use]
    pub fn new(cfg: MpaConfig) -> Self {
        Self { cfg, pos: 0 }
    }

    /// Frames one ULPDU, returning the exact bytes to write to the stream.
    ///
    /// # Panics
    ///
    /// ULPDUs are bounded by the FPDU's 16-bit length field (the standard
    /// bounds MULPDU by the TCP EMSS, far below this); framing a larger
    /// one is a caller bug and panics rather than truncating silently.
    #[must_use]
    pub fn frame(&mut self, ulpdu: &[u8]) -> Bytes {
        assert!(
            ulpdu.len() <= usize::from(u16::MAX),
            "ULPDU of {} bytes exceeds the FPDU length field",
            ulpdu.len()
        );
        let pad = pad_len(ulpdu.len());
        let crc_len = if self.cfg.crc { 4 } else { 0 };
        let fpdu_len = 2 + ulpdu.len() + pad + crc_len;
        let mut fpdu = BytesMut::with_capacity(fpdu_len);
        fpdu.put_u16(ulpdu.len() as u16);
        fpdu.extend_from_slice(ulpdu);
        fpdu.put_bytes(0, pad);
        if self.cfg.crc {
            let crc = crc32c(&fpdu);
            fpdu.put_u32(crc);
        }
        if !self.cfg.markers {
            self.pos += fpdu.len() as u64;
            return fpdu.freeze();
        }

        // Marker insertion: a full pass copying the FPDU into the stream
        // image with a 4-byte marker at every 512-byte stream position —
        // the overhead the datagram path avoids.
        let fpdu_start = self.pos;
        let mut out = BytesMut::with_capacity(fpdu.len() + fpdu.len() / 128 + MARKER_LEN);
        let mut i = 0usize;
        while i < fpdu.len() {
            if self.pos.is_multiple_of(MARKER_INTERVAL) {
                out.put_u32((self.pos - fpdu_start) as u32);
                self.pos += MARKER_LEN as u64;
                continue;
            }
            let until_marker = (MARKER_INTERVAL - self.pos % MARKER_INTERVAL) as usize;
            let take = until_marker.min(fpdu.len() - i);
            out.extend_from_slice(&fpdu[i..i + take]);
            i += take;
            self.pos += take as u64;
        }
        out.freeze()
    }

    /// Current stream position.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.pos
    }
}

/// Receive-side deframer: strips markers, verifies CRCs, yields ULPDUs.
#[derive(Debug)]
pub struct MpaRx {
    cfg: MpaConfig,
    pos: u64,
    /// Bytes of the current marker still to skip (markers can straddle
    /// `feed` calls).
    in_marker: usize,
    /// De-marked stream bytes awaiting FPDU parsing.
    clean: BytesMut,
}

impl MpaRx {
    /// Creates a deframer at stream position 0.
    #[must_use]
    pub fn new(cfg: MpaConfig) -> Self {
        Self {
            cfg,
            pos: 0,
            in_marker: 0,
            clean: BytesMut::new(),
        }
    }

    /// Feeds raw stream bytes; complete ULPDUs are appended to `out`.
    /// Fails with [`IwarpError::CrcMismatch`] on FPDU corruption — fatal on
    /// the RC path, per the unrelaxed standard.
    pub fn feed(&mut self, data: &[u8], out: &mut Vec<Bytes>) -> IwarpResult<()> {
        // Pass 1: strip markers.
        if self.cfg.markers {
            let mut i = 0usize;
            while i < data.len() {
                if self.in_marker > 0 {
                    let skip = self.in_marker.min(data.len() - i);
                    i += skip;
                    self.pos += skip as u64;
                    self.in_marker -= skip;
                    continue;
                }
                if self.pos.is_multiple_of(MARKER_INTERVAL) {
                    self.in_marker = MARKER_LEN;
                    continue;
                }
                let until_marker = (MARKER_INTERVAL - self.pos % MARKER_INTERVAL) as usize;
                let take = until_marker.min(data.len() - i);
                self.clean.extend_from_slice(&data[i..i + take]);
                i += take;
                self.pos += take as u64;
            }
        } else {
            self.clean.extend_from_slice(data);
            self.pos += data.len() as u64;
        }

        // Pass 2: parse FPDUs from the de-marked stream.
        let crc_len = if self.cfg.crc { 4 } else { 0 };
        loop {
            if self.clean.len() < 2 {
                return Ok(());
            }
            let ulp_len = usize::from(u16::from_be_bytes([self.clean[0], self.clean[1]]));
            let pad = pad_len(ulp_len);
            let need = 2 + ulp_len + pad + crc_len;
            if self.clean.len() < need {
                return Ok(());
            }
            if self.cfg.crc {
                let body = &self.clean[..2 + ulp_len + pad];
                let expect = u32::from_be_bytes(
                    self.clean[2 + ulp_len + pad..need]
                        .try_into()
                        .expect("4 bytes"),
                );
                if crc32c(body) != expect {
                    return Err(IwarpError::CrcMismatch);
                }
            }
            out.push(Bytes::copy_from_slice(&self.clean[2..2 + ulp_len]));
            self.clean.advance(need);
        }
    }

    /// Current stream position (markers included).
    #[must_use]
    pub fn position(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cfg: MpaConfig, msgs: &[Vec<u8>], chunk: usize) -> Vec<Bytes> {
        let mut tx = MpaTx::new(cfg);
        let mut stream = Vec::new();
        for m in msgs {
            stream.extend_from_slice(&tx.frame(m));
        }
        let mut rx = MpaRx::new(cfg);
        let mut out = Vec::new();
        for c in stream.chunks(chunk.max(1)) {
            rx.feed(c, &mut out).unwrap();
        }
        out
    }

    fn msg(n: usize, seed: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn roundtrip_with_markers_and_crc() {
        let msgs = vec![msg(1, 1), msg(100, 2), msg(511, 3), msg(512, 4), msg(4096, 5)];
        for chunk in [1, 3, 7, 512, 1448, 100_000] {
            let got = roundtrip(MpaConfig::default(), &msgs, chunk);
            assert_eq!(got.len(), msgs.len(), "chunk={chunk}");
            for (g, m) in got.iter().zip(&msgs) {
                assert_eq!(&g[..], &m[..], "chunk={chunk}");
            }
        }
    }

    #[test]
    fn roundtrip_without_markers() {
        let cfg = MpaConfig {
            markers: false,
            crc: true,
        };
        let msgs = vec![msg(1500, 1), msg(2, 9)];
        let got = roundtrip(cfg, &msgs, 13);
        assert_eq!(got.len(), 2);
        assert_eq!(&got[0][..], &msgs[0][..]);
    }

    #[test]
    fn roundtrip_without_crc() {
        let cfg = MpaConfig {
            markers: true,
            crc: false,
        };
        let msgs = vec![msg(777, 1)];
        let got = roundtrip(cfg, &msgs, 64);
        assert_eq!(&got[0][..], &msgs[0][..]);
    }

    #[test]
    fn empty_ulpdu() {
        let got = roundtrip(MpaConfig::default(), &[vec![]], 4);
        assert_eq!(got.len(), 1);
        assert!(got[0].is_empty());
    }

    #[test]
    fn marker_overhead_on_wire() {
        // 512 bytes of stream gains one 4-byte marker: ≈ 0.78% plus FPDU
        // framing; total wire bytes must exceed payload accordingly.
        let mut tx = MpaTx::new(MpaConfig::default());
        let payload = msg(32 * 1024, 0);
        let framed = tx.frame(&payload);
        let expected_markers = framed.len() / MARKER_INTERVAL as usize;
        assert!(framed.len() >= payload.len() + FPDU_OVERHEAD + expected_markers * MARKER_LEN - MARKER_LEN);
        assert!(framed.len() > payload.len() + 250, "markers missing");
    }

    #[test]
    #[should_panic(expected = "exceeds the FPDU length field")]
    fn oversized_ulpdu_panics() {
        let mut tx = MpaTx::new(MpaConfig::default());
        let _ = tx.frame(&vec![0u8; 65_536]);
    }

    #[test]
    fn positions_stay_in_sync() {
        let cfg = MpaConfig::default();
        let mut tx = MpaTx::new(cfg);
        let mut rx = MpaRx::new(cfg);
        let mut out = Vec::new();
        for i in 0..50 {
            let m = msg(i * 37 + 1, i as u8);
            let framed = tx.frame(&m);
            rx.feed(&framed, &mut out).unwrap();
            assert_eq!(tx.position(), rx.position(), "iteration {i}");
        }
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn crc_corruption_detected() {
        let mut tx = MpaTx::new(MpaConfig::default());
        let framed = tx.frame(&msg(300, 1));
        let mut bad = framed.to_vec();
        // Flip a byte beyond the leading marker + length prefix.
        bad[20] ^= 0x01;
        let mut rx = MpaRx::new(MpaConfig::default());
        let mut out = Vec::new();
        assert_eq!(
            rx.feed(&bad, &mut out).unwrap_err(),
            IwarpError::CrcMismatch
        );
    }

    #[test]
    fn pad_lengths() {
        assert_eq!(pad_len(0), 2);
        assert_eq!(pad_len(1), 1);
        assert_eq!(pad_len(2), 0);
        assert_eq!(pad_len(3), 3);
        assert_eq!(pad_len(6), 0);
    }

    #[test]
    fn interleaved_large_small() {
        let msgs: Vec<Vec<u8>> = (0..20)
            .map(|i| msg(if i % 2 == 0 { 9000 } else { 3 }, i as u8))
            .collect();
        let got = roundtrip(MpaConfig::default(), &msgs, 1000);
        assert_eq!(got.len(), msgs.len());
        for (g, m) in got.iter().zip(&msgs) {
            assert_eq!(&g[..], &m[..]);
        }
    }
}
