#!/usr/bin/env sh
# Tier-1 gate plus lint, exactly what CI runs. Usage: scripts/ci.sh
#
# The build is fully offline: every external crate resolves to a vendored
# shim under shims/ (see ROADMAP.md), so no registry access is needed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root-package full-stack tests)"
cargo test -q

echo "==> cargo test --workspace -q (per-crate suites)"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke: copypath kernels run once (--test mode)"
cargo bench -p iwarp-bench --bench copypath -- --test

echo "==> figures smoke: fig5/fig6 CSVs sane under both copy paths"
for path in legacy sg; do
    out="target/ci-figures-$path"
    rm -rf "$out"
    cargo run --release -p iwarp-bench --bin figures -- \
        --fig5 --fig6 --quick --copy-path "$path" --out "$out" >/dev/null
    sh scripts/check_figures.sh "$out"
done

echo "CI green."
