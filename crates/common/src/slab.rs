//! Typed slab/arena allocator for per-connection state compaction.
//!
//! The memory-scaling argument of the paper (Fig. 11) lives or dies on how
//! many bytes of host state each concurrent call costs. Boxing every
//! per-call / per-QP object individually scatters small allocations across
//! the heap, costs allocator metadata per object, and makes "how much state
//! do N calls hold?" unanswerable without walking the world. A [`Slab`]
//! packs same-typed entries into one contiguous `Vec`, hands out stable
//! integer keys, reuses freed slots through an intrusive free list, and
//! catches use-after-free through generation-checked [`Handle`]s — the
//! shared, slab-backed resource-pool design RDMAvisor argues is what lets
//! RDMA endpoints scale to datacenter connection counts.
//!
//! Accounting hooks:
//!
//! * a slab built with [`Slab::with_mem`] reports `capacity × entry size`
//!   to a [`MemScope`], so [`crate::memacct::MemRegistry`] totals include
//!   the backing storage (occupied *and* free-listed slots — the bytes are
//!   resident either way, and honest accounting must say so);
//! * a shared [`SlabStats`] handle (attachable to `iwarp-telemetry`, which
//!   folds it into snapshots under `mem.slab.*`) counts allocations, frees,
//!   free-slot reuses, generation-check rejections, and gauges live entries
//!   vs reserved slots across every slab wired to it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::memacct::MemScope;

/// Sentinel index terminating the intrusive free list.
const NIL: u32 = u32::MAX;

/// A generation-checked key into a [`Slab`].
///
/// The index is stable for the lifetime of the entry; the generation is
/// bumped every time the slot is freed, so a stale handle held across a
/// free/reuse cycle is detected (lookups return `None`) instead of silently
/// aliasing the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    index: u32,
    gen: u32,
}

impl Handle {
    /// Slot index of this handle (stable while the entry is live).
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }

    /// Generation of this handle (matches the slot only while live).
    #[must_use]
    pub fn gen(self) -> u32 {
        self.gen
    }

    /// Packs the handle into a `u64` (`index` in the high word) for storage
    /// in contexts that only carry an integer, e.g. completion tokens.
    #[must_use]
    pub fn to_u64(self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.gen)
    }

    /// Inverse of [`Handle::to_u64`].
    #[must_use]
    pub fn from_u64(raw: u64) -> Self {
        Self {
            index: (raw >> 32) as u32,
            gen: raw as u32,
        }
    }
}

/// Shared counters for slab activity, folded into telemetry snapshots as
/// `mem.slab.*`. Clone-cheap; several slabs may share one handle so the
/// gauges aggregate (e.g. one per device).
#[derive(Clone, Debug, Default)]
pub struct SlabStats {
    inner: Arc<SlabStatsInner>,
}

#[derive(Debug, Default)]
struct SlabStatsInner {
    allocs: AtomicU64,
    frees: AtomicU64,
    reuses: AtomicU64,
    stale_rejected: AtomicU64,
    live: AtomicU64,
    slots: AtomicU64,
}

impl SlabStats {
    /// Creates a fresh stats handle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total successful insertions across attached slabs.
    #[must_use]
    pub fn allocs(&self) -> u64 {
        self.inner.allocs.load(Ordering::Relaxed)
    }

    /// Total removals across attached slabs.
    #[must_use]
    pub fn frees(&self) -> u64 {
        self.inner.frees.load(Ordering::Relaxed)
    }

    /// Insertions that reused a free-listed slot instead of growing.
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.inner.reuses.load(Ordering::Relaxed)
    }

    /// Lookups/removals rejected by the generation check (stale handles).
    #[must_use]
    pub fn stale_rejected(&self) -> u64 {
        self.inner.stale_rejected.load(Ordering::Relaxed)
    }

    /// Gauge: entries currently live across attached slabs.
    #[must_use]
    pub fn live(&self) -> u64 {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// Gauge: slots currently reserved (live + free-listed) across
    /// attached slabs.
    #[must_use]
    pub fn slots(&self) -> u64 {
        self.inner.slots.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum Slot<T> {
    /// Freed slot; `next` chains the intrusive free list ([`NIL`] ends it).
    Free { next: u32 },
    Occupied(T),
}

#[derive(Debug)]
struct Entry<T> {
    gen: u32,
    slot: Slot<T>,
}

/// A typed slab: contiguous storage, stable keys, free-list reuse,
/// generation-checked access.
///
/// Not a concurrent structure — callers wrap it in whatever lock already
/// guards the state it replaces (the point is compaction, not new
/// synchronization).
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    live: usize,
    mem: Option<MemScope>,
    stats: Option<SlabStats>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab with no accounting hooks. Allocates nothing
    /// until the first insert.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            free_head: NIL,
            live: 0,
            mem: None,
            stats: None,
        }
    }

    /// Attaches a [`MemScope`]; the slab grows/shrinks it to mirror
    /// `capacity × size_of::<entry>()` as the backing vector resizes.
    #[must_use]
    pub fn with_mem(mut self, mem: MemScope) -> Self {
        self.mem = Some(mem);
        self.sync_mem();
        self
    }

    /// Attaches a [`SlabStats`] handle (shared counters/gauges).
    #[must_use]
    pub fn with_stats(mut self, stats: SlabStats) -> Self {
        if let Some(s) = &self.stats {
            // Re-attaching: move our gauge contribution off the old handle.
            s.inner.live.fetch_sub(self.live as u64, Ordering::Relaxed);
            s.inner
                .slots
                .fetch_sub(self.entries.len() as u64, Ordering::Relaxed);
        }
        stats
            .inner
            .live
            .fetch_add(self.live as u64, Ordering::Relaxed);
        stats
            .inner
            .slots
            .fetch_add(self.entries.len() as u64, Ordering::Relaxed);
        self.stats = Some(stats);
        self
    }

    fn entry_bytes() -> u64 {
        std::mem::size_of::<Entry<T>>() as u64
    }

    /// Re-points the attached [`MemScope`] at the current backing capacity.
    fn sync_mem(&mut self) {
        if let Some(mem) = &mut self.mem {
            let want = self.entries.capacity() as u64 * Self::entry_bytes();
            let have = mem.bytes();
            if want > have {
                mem.grow(want - have);
            } else {
                mem.shrink(have - want);
            }
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots currently reserved (live + free-listed). `occupancy ==
    /// len() / slots()` is the slab-health ratio the scale bench reports.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Bytes held by the backing vector (what [`Slab::with_mem`] reports).
    #[must_use]
    pub fn backing_bytes(&self) -> u64 {
        self.entries.capacity() as u64 * Self::entry_bytes()
    }

    /// Inserts `value`, reusing a free-listed slot when one exists.
    ///
    /// # Panics
    /// If the slab would exceed `u32::MAX - 1` slots.
    pub fn insert(&mut self, value: T) -> Handle {
        let index = if self.free_head != NIL {
            let i = self.free_head;
            let entry = &mut self.entries[i as usize];
            let Slot::Free { next } = entry.slot else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next;
            entry.slot = Slot::Occupied(value);
            if let Some(s) = &self.stats {
                s.inner.reuses.fetch_add(1, Ordering::Relaxed);
            }
            i
        } else {
            let i = u32::try_from(self.entries.len()).expect("slab index overflow");
            assert!(i < NIL, "slab full");
            self.entries.push(Entry {
                gen: 0,
                slot: Slot::Occupied(value),
            });
            self.sync_mem();
            if let Some(s) = &self.stats {
                s.inner.slots.fetch_add(1, Ordering::Relaxed);
            }
            i
        };
        self.live += 1;
        if let Some(s) = &self.stats {
            s.inner.allocs.fetch_add(1, Ordering::Relaxed);
            s.inner.live.fetch_add(1, Ordering::Relaxed);
        }
        Handle {
            index,
            gen: self.entries[index as usize].gen,
        }
    }

    fn check(&self, h: Handle) -> bool {
        let ok = self
            .entries
            .get(h.index as usize)
            .is_some_and(|e| e.gen == h.gen && matches!(e.slot, Slot::Occupied(_)));
        if !ok {
            if let Some(s) = &self.stats {
                s.inner.stale_rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        ok
    }

    /// Shared access; `None` if the handle is stale or out of range.
    #[must_use]
    pub fn get(&self, h: Handle) -> Option<&T> {
        if !self.check(h) {
            return None;
        }
        match &self.entries[h.index as usize].slot {
            Slot::Occupied(v) => Some(v),
            Slot::Free { .. } => None,
        }
    }

    /// Exclusive access; `None` if the handle is stale or out of range.
    #[must_use]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        if !self.check(h) {
            return None;
        }
        match &mut self.entries[h.index as usize].slot {
            Slot::Occupied(v) => Some(v),
            Slot::Free { .. } => None,
        }
    }

    /// Removes and returns the entry; `None` (and a `stale_rejected` tick)
    /// if the handle is stale. The slot's generation is bumped so every
    /// outstanding handle to it goes stale, then the slot joins the free
    /// list for reuse.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        if !self.check(h) {
            return None;
        }
        let entry = &mut self.entries[h.index as usize];
        let old = std::mem::replace(
            &mut entry.slot,
            Slot::Free {
                next: self.free_head,
            },
        );
        entry.gen = entry.gen.wrapping_add(1);
        self.free_head = h.index;
        self.live -= 1;
        if let Some(s) = &self.stats {
            s.inner.frees.fetch_add(1, Ordering::Relaxed);
            s.inner.live.fetch_sub(1, Ordering::Relaxed);
        }
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Free { .. } => unreachable!("check() verified occupancy"),
        }
    }

    /// Iterates live entries as `(Handle, &T)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            if let Slot::Occupied(v) = &e.slot {
                Some((
                    Handle {
                        index: i as u32,
                        gen: e.gen,
                    },
                    v,
                ))
            } else {
                None
            }
        })
    }

    /// Iterates live entries as `(Handle, &mut T)` in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle, &mut T)> {
        self.entries.iter_mut().enumerate().filter_map(|(i, e)| {
            if let Slot::Occupied(v) = &mut e.slot {
                Some((
                    Handle {
                        index: i as u32,
                        gen: e.gen,
                    },
                    v,
                ))
            } else {
                None
            }
        })
    }

    /// Drops every live entry and rebuilds the free list over the existing
    /// slots (capacity — and the accounted bytes — are retained for reuse).
    pub fn clear(&mut self) {
        let freed = self.live;
        let n = self.entries.len();
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if matches!(entry.slot, Slot::Occupied(_)) {
                entry.gen = entry.gen.wrapping_add(1);
            }
            entry.slot = Slot::Free {
                next: if i + 1 < n { (i + 1) as u32 } else { NIL },
            };
        }
        self.free_head = if self.entries.is_empty() { NIL } else { 0 };
        self.live = 0;
        if let Some(s) = &self.stats {
            s.inner.frees.fetch_add(freed as u64, Ordering::Relaxed);
            s.inner.live.fetch_sub(freed as u64, Ordering::Relaxed);
        }
    }
}

impl<T> Drop for Slab<T> {
    fn drop(&mut self) {
        if let Some(s) = &self.stats {
            s.inner.live.fetch_sub(self.live as u64, Ordering::Relaxed);
            s.inner
                .slots
                .fetch_sub(self.entries.len() as u64, Ordering::Relaxed);
        }
        // `mem` (a MemScope) releases the backing bytes on its own drop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memacct::MemRegistry;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("alpha");
        let b = slab.insert("beta");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"alpha"));
        assert_eq!(slab.get(b), Some(&"beta"));
        assert_eq!(slab.remove(a), Some("alpha"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&"beta"));
    }

    #[test]
    fn freed_slot_is_reused_and_old_handle_goes_stale() {
        let mut slab = Slab::new().with_stats(SlabStats::new());
        let a = slab.insert(1u32);
        slab.remove(a);
        let b = slab.insert(2u32);
        // Same slot, new generation.
        assert_eq!(a.index(), b.index());
        assert_ne!(a.gen(), b.gen());
        assert_eq!(slab.get(a), None, "stale handle must not alias");
        assert_eq!(slab.get(b), Some(&2));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(b), Some(&2), "stale remove must not evict");
    }

    #[test]
    fn stats_track_activity() {
        let stats = SlabStats::new();
        let mut slab = Slab::new().with_stats(stats.clone());
        let a = slab.insert(10u8);
        let _b = slab.insert(20u8);
        slab.remove(a);
        let _c = slab.insert(30u8); // reuses a's slot
        assert_eq!(stats.allocs(), 3);
        assert_eq!(stats.frees(), 1);
        assert_eq!(stats.reuses(), 1);
        assert_eq!(stats.live(), 2);
        assert_eq!(stats.slots(), 2);
        let _ = slab.get(a); // stale
        assert_eq!(stats.stale_rejected(), 1);
        drop(slab);
        assert_eq!(stats.live(), 0);
        assert_eq!(stats.slots(), 0);
    }

    #[test]
    fn mem_scope_mirrors_backing_capacity() {
        let reg = MemRegistry::new();
        let mut slab = Slab::new().with_mem(reg.track("slab_test", 0));
        assert_eq!(reg.current("slab_test"), 0, "empty slab costs nothing");
        let handles: Vec<_> = (0..64).map(|i| slab.insert([i as u8; 32])).collect();
        assert_eq!(reg.current("slab_test"), slab.backing_bytes());
        assert!(reg.current("slab_test") > 0);
        for h in handles {
            slab.remove(h);
        }
        // Capacity (and therefore accounted bytes) is retained for reuse.
        assert_eq!(reg.current("slab_test"), slab.backing_bytes());
        drop(slab);
        assert_eq!(reg.current("slab_test"), 0);
    }

    #[test]
    fn handle_u64_roundtrip() {
        let h = Handle {
            index: 0xDEAD_BEEF,
            gen: 0x1234_5678,
        };
        assert_eq!(Handle::from_u64(h.to_u64()), h);
    }

    #[test]
    fn iter_visits_only_live() {
        let mut slab = Slab::new();
        let a = slab.insert('a');
        let b = slab.insert('b');
        let c = slab.insert('c');
        slab.remove(b);
        let seen: Vec<_> = slab.iter().map(|(h, v)| (h, *v)).collect();
        assert_eq!(seen, vec![(a, 'a'), (c, 'c')]);
    }

    #[test]
    fn clear_frees_everything_but_keeps_slots() {
        let stats = SlabStats::new();
        let mut slab = Slab::new().with_stats(stats.clone());
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.slots(), 2);
        assert_eq!(slab.get(a), None);
        assert_eq!(stats.live(), 0);
        assert_eq!(stats.slots(), 2);
        let c = slab.insert(3);
        assert_eq!(slab.get(c), Some(&3));
        assert_eq!(slab.slots(), 2, "cleared slots are reused");
    }
}
