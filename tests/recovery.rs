//! Tier-1 loss-recovery gate: the congestion-control knob must never
//! change *what* the reliable conduits deliver, and must be invisible to
//! the layers that don't use it.
//!
//! Two contracts (see DESIGN.md "Loss recovery & congestion control"):
//!
//! * **Exact delivery under every algorithm.** The same seeded lossy
//!   wire run under `fixed`, `newreno` and `cubic` yields byte-identical
//!   in-order delivery for both the byte stream and the reliable
//!   datagram conduit — the controller shapes *when* packets move, never
//!   *what* arrives.
//! * **Cross-algorithm chaos determinism.** The chaos harness's verbs
//!   and socket phases run on the unreliable paths, which the controller
//!   does not touch: their fault traces must be bit-identical whatever
//!   `ChaosOpts::cc` says, and stable across repeat runs (replay).

use std::time::Duration;

use bytes::Bytes;
use datagram_iwarp::chaos::{run_plan, ChaosOpts};
use datagram_iwarp::common::ccalgo::CcAlgo;
use datagram_iwarp::common::rng::derive_seed;
use datagram_iwarp::net::rdgram::RdConfig;
use datagram_iwarp::net::stream::StreamConfig;
use datagram_iwarp::net::{
    Addr, Fabric, NodeId, RdConduit, StreamConduit, StreamListener, WireConfig,
};

const ALGOS: [CcAlgo; 3] = [CcAlgo::Fixed, CcAlgo::NewReno, CcAlgo::Cubic];
const SEED: u64 = 0xCC_1055;

fn pattern(len: usize, salt: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(salt) % 251) as u8)
        .collect()
}

/// A seeded 5%-loss stream transfer delivers the same bytes, in order,
/// under every congestion-control algorithm.
#[test]
fn stream_delivery_is_byte_identical_across_algos() {
    let data = pattern(96 * 1024, 7);
    for algo in ALGOS {
        let fab = Fabric::new(WireConfig::with_loss(0.05, SEED));
        let cfg = StreamConfig {
            rto_initial: Duration::from_millis(5),
            rto_max: Duration::from_millis(30),
            cc: algo,
            ..StreamConfig::default()
        };
        let listener = StreamListener::bind(&fab, Addr::new(1, 800), cfg.clone()).unwrap();
        let data = &data;
        std::thread::scope(|sc| {
            let srv = sc.spawn(|| {
                let server = listener.accept(Some(Duration::from_secs(10))).unwrap();
                let mut got = vec![0u8; data.len()];
                server
                    .read_exact(&mut got, Some(Duration::from_secs(30)))
                    .unwrap();
                got
            });
            let client =
                StreamConduit::connect(&fab, NodeId(0), Addr::new(1, 800), cfg.clone()).unwrap();
            client.write_all(data).unwrap();
            let got = srv.join().unwrap();
            assert_eq!(got, *data, "[{algo}] stream corrupted delivery");
            client.close();
        });
    }
}

/// The same seeded lossy rdgram run delivers every message exactly once,
/// intact and in send order, under every algorithm.
#[test]
fn rdgram_delivery_is_identical_across_algos() {
    let msgs: Vec<Vec<u8>> = (0..48).map(|i| pattern(64 + i * 29, i as u64)).collect();
    for algo in ALGOS {
        let fab = Fabric::new(WireConfig::with_loss(0.05, SEED));
        let cfg = RdConfig {
            window: 16,
            rto: Duration::from_millis(5),
            max_rto: Duration::from_millis(30),
            cc: algo,
            ..RdConfig::default()
        };
        let tx = RdConduit::bind(&fab, Addr::new(2, 801), cfg.clone()).unwrap();
        let rx = RdConduit::bind(&fab, Addr::new(3, 801), cfg).unwrap();
        let msgs = &msgs;
        std::thread::scope(|sc| {
            let rxh = sc.spawn(|| {
                let mut got = Vec::new();
                for _ in 0..msgs.len() {
                    let (_, d) = rx.recv_from(Some(Duration::from_secs(30))).unwrap();
                    got.push(d.to_vec());
                }
                got
            });
            for m in msgs {
                tx.send_to(rx.local_addr(), Bytes::from(m.clone())).unwrap();
            }
            tx.flush(Duration::from_secs(30)).unwrap();
            let got = rxh.join().unwrap();
            assert_eq!(got, *msgs, "[{algo}] rdgram reordered or corrupted delivery");
        });
    }
}

/// The chaos verbs/socket fault traces are a pure function of the plan
/// seed — switching `ChaosOpts::cc` (which only steers the reliable
/// phase) must leave them bit-identical, and repeat runs must replay
/// exactly.
#[test]
fn chaos_traces_are_cc_invariant_and_replay_stable() {
    let opts = |cc| ChaosOpts {
        send_msgs: 4,
        write_msgs: 4,
        read_msgs: 2,
        dgrams: 16,
        cc,
        ..ChaosOpts::default()
    };
    for i in 0..2u64 {
        let seed = derive_seed(SEED, i);
        let baseline = run_plan(seed, &opts(CcAlgo::Fixed));
        assert!(
            baseline.ok(),
            "plan seed={seed:#018x} under fixed:\n{}",
            baseline.render_failure()
        );
        for algo in [CcAlgo::Fixed, CcAlgo::NewReno, CcAlgo::Cubic] {
            let report = run_plan(seed, &opts(algo));
            assert!(
                report.ok(),
                "plan seed={seed:#018x} under {algo}:\n{}",
                report.render_failure()
            );
            assert_eq!(
                report.fault_trace, baseline.fault_trace,
                "[{algo}] verbs fault trace diverged from fixed (seed {seed:#x})"
            );
            assert_eq!(
                report.socket_fault_trace, baseline.socket_fault_trace,
                "[{algo}] socket fault trace diverged from fixed (seed {seed:#x})"
            );
        }
    }
}
