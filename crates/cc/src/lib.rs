//! `iwarp-cc`: unified loss recovery and congestion control for the
//! reliable paths.
//!
//! Before this crate, `simnet::stream` and `simnet::rdgram` each carried
//! their own ad-hoc retransmission logic — hard-coded timers, a fixed
//! 64-sequence SACK horizon, go-back-nothing window accounting — and
//! neither adapted to path conditions. This crate factors the common
//! machinery into one place:
//!
//! * [`engine::RecoveryEngine`] — a selective-repeat sender scoreboard
//!   (in-flight / SACKed / lost ranges partitioning the outstanding
//!   window), BDP-bounded send window, fast retransmit on duplicate-ACK
//!   and SACK-gap evidence, and a bounded retransmit queue. Both
//!   reliable conduits are refactored onto it.
//! * [`rtt::RttEstimator`] — RFC-6298 SRTT/RTTVAR with Karn filtering
//!   and exponential RTO backoff, replacing the fixed retransmit timers.
//! * [`algo`] — the [`algo::CongestionControl`] trait
//!   (`on_ack` / `on_sack_gap` / `on_rto` / `on_send` → cwnd + pacing)
//!   with three implementations: [`algo::Fixed`] (the legacy
//!   fixed-window baseline, the default), [`algo::NewReno`], and
//!   [`algo::Cubic`]. Selection rides the
//!   [`iwarp_common::ccalgo::CcAlgo`] knob.
//!
//! Everything here is deterministic and RNG-free: engine state is a pure
//! function of the event sequence, so seeded chaos replays stay
//! byte-identical (DESIGN.md §8 documents the boundary). Telemetry is
//! exported under `cc.*` when a [`iwarp_telemetry::Telemetry`] domain is
//! attached.

#![warn(missing_docs)]

pub mod algo;
pub mod engine;
pub mod rtt;

pub use algo::{build_cc, CcConfig, CongestionControl};
pub use engine::{AckEvent, RecoveryConfig, RecoveryEngine, SegState, SweepEvent};
pub use rtt::RttEstimator;
