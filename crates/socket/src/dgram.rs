//! Datagram sockets over UD queue pairs.
//!
//! Two data paths, selected by [`DgramMode`]:
//!
//! * **SendRecv** — classic two-sided verbs behind the socket API. The
//!   socket pre-posts `recv_slots` receives over a slot region; incoming
//!   messages complete them and `recv_from` copies the data out (the
//!   buffered-copy semantics of the paper's shim).
//! * **WriteRecord** — the paper's one-sided path. The socket registers a
//!   remote-writable *slot ring*; a sender obtains the ring's STag once
//!   via the advertisement handshake ([`crate::control`]) and then places
//!   data with RDMA Write-Record directly. The receiver learns of arrivals
//!   from unsolicited Write-Record completions — no receives consumed.
//!
//! Either way the application sees plain `send_to`/`recv_from`; through
//! this copying interface the two modes perform almost identically, as the
//! paper observes for VLC (§VI.B.1).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use iwarp_telemetry::Counter;
use parking_lot::Mutex;
use simnet::Addr;

use iwarp::wr::RecvWr;
use iwarp::{
    Access, Cq, Cqe, CqeOpcode, CqeStatus, IwarpError, IwarpResult, MemoryRegion, SendWr, UdDest,
    UdQp,
};

use crate::control::Control;
use crate::stack::{DgramProfile, FdKind, FdSlot, StackInner};

/// Datagram data path through the shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DgramMode {
    /// Two-sided send/recv verbs.
    SendRecv,
    /// One-sided RDMA Write-Record into an advertised slot ring.
    WriteRecord,
}

/// Sender-side knowledge of a peer's slot ring.
struct PeerRing {
    stag: u32,
    slots: u32,
    slot_size: u32,
    next_slot: u32,
    /// Peer answered with `slots == 0` (or never answered): use send/recv.
    fallback: bool,
}

/// Counters exposed for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DgramSocketStats {
    /// Partially placed Write-Record messages dropped (or truncated).
    pub partial_messages: u64,
    /// Messages dropped because they exceeded the receive slot size.
    pub oversized_dropped: u64,
    /// Receives recovered after expiry (loss of part of a message).
    pub expired: u64,
}

/// Fabric-domain telemetry handles for one datagram socket.
struct SockTel {
    tx_msgs: Counter,
    rx_msgs: Counter,
    ring_sends: Counter,
    fallback_sends: Counter,
    partial_messages: Counter,
    oversized_dropped: Counter,
    expired: Counter,
}

impl SockTel {
    fn new(tel: &iwarp_telemetry::Telemetry) -> Self {
        Self {
            tx_msgs: tel.counter("socket.dgram.tx_msgs"),
            rx_msgs: tel.counter("socket.dgram.rx_msgs"),
            ring_sends: tel.counter("socket.dgram.ring_sends"),
            fallback_sends: tel.counter("socket.dgram.fallback_sends"),
            partial_messages: tel.counter("socket.dgram.partial_messages"),
            oversized_dropped: tel.counter("socket.dgram.oversized_dropped"),
            expired: tel.counter("socket.dgram.expired"),
        }
    }
}

struct DgramInner {
    fd: FdSlot,
    stack: Arc<StackInner>,
    tel: SockTel,
    qp: UdQp,
    send_cq: Cq,
    recv_cq: Cq,
    /// Receive slots for send/recv traffic (and control messages).
    slot_mr: MemoryRegion,
    /// Remote-writable ring for Write-Record mode.
    ring_mr: Option<MemoryRegion>,
    slot_size: usize,
    slots: usize,
    state: Mutex<DgState>,
    /// Accounting for this socket's buffer pool (drives Fig. 11).
    _mem: Option<iwarp_common::memacct::MemScope>,
}

struct DgState {
    /// User datagrams drained while waiting for control traffic.
    ready: VecDeque<(Addr, Bytes)>,
    peers: HashMap<Addr, PeerRing>,
    stats: DgramSocketStats,
}

/// A UDP-like socket whose data path is datagram-iWARP.
pub struct DgramSocket {
    inner: Arc<DgramInner>,
}

impl DgramSocket {
    pub(crate) fn open(
        stack: Arc<StackInner>,
        port: Option<u16>,
        profile: Option<DgramProfile>,
    ) -> IwarpResult<Self> {
        let cfg = &stack.cfg;
        let profile = profile.unwrap_or_else(|| DgramProfile::from_config(cfg));
        let depth = profile.recv_slots * 2 + 32;
        let send_cq = Cq::new(depth);
        let recv_cq = Cq::new(depth);
        let qp = stack
            .device
            .create_ud_qp(port, &send_cq, &recv_cq, cfg.qp.clone())?;
        let slot_mr = stack
            .device
            .register(profile.recv_slots * profile.slot_size, Access::Local);
        for i in 0..profile.recv_slots {
            qp.post_recv(RecvWr {
                wr_id: i as u64,
                mr: slot_mr.clone(),
                offset: (i * profile.slot_size) as u64,
                len: profile.slot_size as u32,
            })?;
        }
        let ring_mr = match cfg.mode {
            DgramMode::SendRecv => None,
            DgramMode::WriteRecord => Some(
                stack
                    .device
                    .register(profile.recv_slots * profile.slot_size, Access::RemoteWrite),
            ),
        };
        let fd = stack.alloc_fd(FdKind::Dgram);
        // Event path: receive completions mark this socket's fd ready on
        // the stack channel, so one thread can wait_ready() across every
        // socket. Poll-mode QPs stay unsubscribed — their CQs only fill
        // when the caller pumps, so a parked waiter would never wake.
        if stack.cfg.notify == iwarp_common::notifypath::NotifyPath::Event
            && !stack.cfg.qp.poll_mode
        {
            recv_cq.attach_channel(&stack.chan, u64::from(fd.fd));
        }
        let buffer_bytes =
            (slot_mr.len() + ring_mr.as_ref().map_or(0, iwarp::MemoryRegion::len)) as u64;
        let mem = stack
            .device
            .mem()
            .map(|r| r.track("socket_buffers", buffer_bytes));
        let tel = SockTel::new(stack.device.telemetry());
        Ok(Self {
            inner: Arc::new(DgramInner {
                fd,
                slot_size: profile.slot_size,
                slots: profile.recv_slots,
                stack,
                tel,
                qp,
                send_cq,
                recv_cq,
                slot_mr,
                ring_mr,
                state: Mutex::new(DgState {
                    ready: VecDeque::new(),
                    peers: HashMap::new(),
                    stats: DgramSocketStats::default(),
                }),
                _mem: mem,
            }),
        })
    }

    /// The shim's file-descriptor number for this socket.
    #[must_use]
    pub fn fd(&self) -> u32 {
        self.inner.fd.fd
    }

    /// The socket's bound address (what peers `send_to`).
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.inner.qp.local_addr()
    }

    /// Largest datagram this socket can deliver.
    #[must_use]
    pub fn max_datagram(&self) -> usize {
        self.inner.slot_size
    }

    /// Diagnostics counters.
    #[must_use]
    pub fn stats(&self) -> DgramSocketStats {
        self.inner.state.lock().stats
    }

    /// Re-subscribes this socket's receive CQ to `chan` under `token`,
    /// replacing the stack-default subscription — for event loops that
    /// partition sockets across several channels (one per worker).
    pub fn subscribe(&self, chan: &iwarp::CompletionChannel, token: u64) {
        self.inner.recv_cq.attach_channel(chan, token);
    }

    /// Joins a multicast group (UD sockets only): datagrams sent to the
    /// group address arrive on this socket like unicast ones.
    pub fn join_multicast(&self, group: Addr) -> IwarpResult<()> {
        self.inner.qp.join_multicast(group)
    }

    /// Leaves a multicast group.
    pub fn leave_multicast(&self, group: Addr) {
        self.inner.qp.leave_multicast(group);
    }

    /// Sends `buf` to `dst`. In Write-Record mode this performs the
    /// one-time ring-advertisement handshake with new peers, then places
    /// data one-sided; oversized or unadvertised traffic falls back to
    /// send/recv transparently.
    pub fn send_to(&self, buf: &[u8], dst: Addr) -> IwarpResult<()> {
        let inner = &self.inner;
        let dest = UdDest { addr: dst, qpn: 0 };
        let use_ring = match inner.stack.cfg.mode {
            DgramMode::SendRecv => false,
            DgramMode::WriteRecord => {
                self.ensure_adv(dst)?;
                let mut st = inner.state.lock();
                let ring = st.peers.get_mut(&dst).expect("ensure_adv populated");
                if ring.fallback || buf.len() > ring.slot_size as usize {
                    false
                } else {
                    let slot = ring.next_slot % ring.slots.max(1);
                    ring.next_slot = ring.next_slot.wrapping_add(1);
                    let stag = ring.stag;
                    let to = u64::from(slot) * u64::from(ring.slot_size);
                    drop(st);
                    inner
                        .qp
                        .post_write_record(0, buf, dest, stag, to)?;
                    inner.tel.ring_sends.inc();
                    true
                }
            }
        };
        if !use_ring {
            if inner.stack.cfg.mode == DgramMode::WriteRecord {
                inner.tel.fallback_sends.inc();
            }
            inner.qp.post_send(0, buf, dest)?;
        }
        inner.tel.tx_msgs.inc();
        // Source-side completions are immediate (datagram semantics);
        // drain them so the CQ never overflows.
        while inner.send_cq.poll().is_some() {}
        Ok(())
    }

    /// `sendmmsg` analog: transmits a batch of datagrams with one verbs
    /// doorbell. In SendRecv mode the batch maps to
    /// [`UdQp::post_send_batch`] — under
    /// [`BurstPath::Burst`](iwarp_common::burstpath::BurstPath::Burst)
    /// the whole batch leaves as one fabric burst per destination — and
    /// the immediate source-side completions are reaped with batched
    /// [`Cq::poll_into`] rounds. Write-Record mode keeps its stateful
    /// per-peer ring placement and loops [`Self::send_to`]. Returns the
    /// number of datagrams sent.
    pub fn send_many(&self, msgs: &[(&[u8], Addr)]) -> IwarpResult<usize> {
        if msgs.is_empty() {
            return Ok(0);
        }
        let inner = &self.inner;
        if inner.stack.cfg.mode == DgramMode::WriteRecord {
            for (buf, dst) in msgs {
                self.send_to(buf, *dst)?;
            }
            return Ok(msgs.len());
        }
        let wrs: Vec<SendWr> = msgs
            .iter()
            .map(|(buf, dst)| SendWr::new(0, *buf, UdDest { addr: *dst, qpn: 0 }))
            .collect();
        inner.qp.post_send_batch(&wrs)?;
        inner.tel.tx_msgs.add(wrs.len() as u64);
        // Source-side completions are immediate (datagram semantics);
        // reap them in scratch-buffer loads so the CQ never overflows.
        let mut scratch = vec![Cqe::default(); wrs.len().min(64)];
        while inner.send_cq.poll_into(&mut scratch) == scratch.len() {}
        Ok(msgs.len())
    }

    /// `recvmmsg` analog: appends up to `max` ready datagrams to `out` as
    /// `(payload, source)` pairs and returns how many were added. Like
    /// [`Self::recv_from`] this waits up to `timeout`, but only when
    /// *nothing* is deliverable — one completed datagram returns
    /// immediately with whatever else drained alongside it.
    pub fn recv_many(
        &self,
        out: &mut Vec<(Bytes, Addr)>,
        max: usize,
        timeout: Duration,
    ) -> IwarpResult<usize> {
        if max == 0 {
            return Ok(0);
        }
        let deadline = Instant::now() + timeout;
        loop {
            self.pump_batch(max)?;
            let mut n = 0;
            {
                let mut st = self.inner.state.lock();
                while n < max {
                    match st.ready.pop_front() {
                        Some((src, data)) => {
                            out.push((data, src));
                            n += 1;
                        }
                        None => break,
                    }
                }
            }
            if n > 0 {
                return Ok(n);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(IwarpError::PollTimeout);
            }
            // Block for the first arrival, then loop to batch-drain
            // whatever came with it.
            self.pump(deadline - now)?;
        }
    }

    /// Receives one datagram into `buf`, returning the byte count and the
    /// sender's address. Timeout-based, as datagram-iWARP requires.
    pub fn recv_from(&self, buf: &mut [u8], timeout: Duration) -> IwarpResult<(usize, Addr)> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((src, data)) = self.inner.state.lock().ready.pop_front() {
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                return Ok((n, src));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(IwarpError::PollTimeout);
            }
            self.pump(deadline - now)?;
        }
    }

    /// Non-blocking receive: drains any completed work (driving the QP
    /// engine in poll mode) and returns one datagram if available. The
    /// building block for event loops over many sockets.
    pub fn try_recv_from(&self, buf: &mut [u8]) -> IwarpResult<Option<(usize, Addr)>> {
        Ok(self.try_recv_bytes()?.map(|(src, data)| {
            let n = data.len().min(buf.len());
            buf[..n].copy_from_slice(&data[..n]);
            (n, src)
        }))
    }

    /// Zero-copy flavour of [`Self::try_recv_from`]: hands out the ready
    /// datagram as the [`Bytes`] the receive path already produced,
    /// avoiding the copy into a caller buffer. Steady-state consumers
    /// that parse in place (the SIP hot path) use this so a transaction
    /// touches no fresh heap on receive.
    pub fn try_recv_bytes(&self) -> IwarpResult<Option<(Addr, Bytes)>> {
        if let Some(hit) = self.inner.state.lock().ready.pop_front() {
            return Ok(Some(hit));
        }
        self.pump(Duration::ZERO)?;
        Ok(self.inner.state.lock().ready.pop_front())
    }

    /// Ensures we hold a ring advertisement (or fallback verdict) for `dst`.
    fn ensure_adv(&self, dst: Addr) -> IwarpResult<()> {
        let inner = &self.inner;
        if inner.state.lock().peers.contains_key(&dst) {
            return Ok(());
        }
        let dest = UdDest { addr: dst, qpn: 0 };
        let deadline = Instant::now() + inner.stack.cfg.adv_timeout;
        let mut next_request = Instant::now();
        loop {
            {
                let st = inner.state.lock();
                if st.peers.contains_key(&dst) {
                    return Ok(());
                }
            }
            let now = Instant::now();
            if now >= deadline {
                // Peer never advertised (likely SendRecv mode there):
                // remember to use two-sided sends.
                inner.state.lock().peers.insert(
                    dst,
                    PeerRing {
                        stag: 0,
                        slots: 0,
                        slot_size: 0,
                        next_slot: 0,
                        fallback: true,
                    },
                );
                return Ok(());
            }
            if now >= next_request {
                inner.qp.post_send(0, Control::AdvRequest.encode(), dest)?;
                while inner.send_cq.poll().is_some() {}
                next_request = now + Duration::from_millis(100);
            }
            // Pump CQEs while waiting; user data is stashed in `ready`.
            self.pump(Duration::from_millis(20))?;
        }
    }

    /// Processes completions (waiting up to `timeout` for one); any user
    /// datagram is appended to the ready queue. In poll mode this also
    /// drives the QP's receive engine.
    fn pump(&self, timeout: Duration) -> IwarpResult<()> {
        let inner = &self.inner;
        if inner.stack.cfg.qp.poll_mode {
            // Serve anything already completed, then run the engine.
            if let Some(cqe) = inner.recv_cq.poll() {
                return self.on_cqe(cqe);
            }
            inner.qp.progress(timeout);
            while let Some(cqe) = inner.recv_cq.poll() {
                self.on_cqe(cqe)?;
            }
            return Ok(());
        }
        let cqe = match inner.recv_cq.poll_timeout(timeout) {
            Ok(c) => c,
            Err(IwarpError::PollTimeout) => return Ok(()),
            Err(e) => return Err(e),
        };
        self.on_cqe(cqe)
    }

    /// Non-blocking batch pump: drives the poll-mode engine with a burst
    /// budget, then reaps the receive CQ in scratch-buffer loads (one CQ
    /// lock round per load instead of one per completion).
    ///
    /// Each engine drain is capped at the recv-slot ring depth: slots are
    /// only reposted by `on_cqe` below, so a single drain larger than the
    /// ring would land the overflow on an empty RQ and drop it
    /// (`dropped_no_rq`) — something the per-packet path, which reposts
    /// after every datagram, never does.
    fn pump_batch(&self, budget: usize) -> IwarpResult<()> {
        let inner = &self.inner;
        let budget = budget.max(1);
        let mut scratch = vec![Cqe::default(); budget.min(64)];
        let mut remaining = budget;
        loop {
            if inner.stack.cfg.qp.poll_mode {
                let chunk = remaining.min(inner.slots.max(1));
                inner.qp.progress_burst(chunk, Duration::ZERO);
            }
            let mut reaped = 0usize;
            loop {
                let n = inner.recv_cq.poll_into(&mut scratch);
                for cqe in &scratch[..n] {
                    self.on_cqe(cqe.clone())?;
                }
                reaped += n;
                if n < scratch.len() {
                    break;
                }
            }
            if !inner.stack.cfg.qp.poll_mode || reaped == 0 {
                return Ok(());
            }
            remaining = remaining.saturating_sub(reaped);
            if remaining == 0 {
                return Ok(());
            }
        }
    }

    fn on_cqe(&self, cqe: Cqe) -> IwarpResult<()> {
        let inner = &self.inner;
        match (cqe.opcode, cqe.status) {
            (CqeOpcode::Recv, CqeStatus::Success) => {
                let slot = cqe.wr_id as usize;
                let off = (slot * inner.slot_size) as u64;
                let data = inner.slot_mr.read_vec(off, cqe.byte_len as usize)?;
                self.repost(slot)?;
                let src = cqe.src.expect("UD recv carries source").addr;
                match Control::decode(&data) {
                    Some(Control::AdvRequest) => {
                        let reply = match (&inner.ring_mr, inner.stack.cfg.mode) {
                            (Some(ring), DgramMode::WriteRecord) => Control::AdvReply {
                                stag: ring.stag(),
                                slots: inner.slots as u32,
                                slot_size: inner.slot_size as u32,
                            },
                            _ => Control::AdvReply {
                                stag: 0,
                                slots: 0,
                                slot_size: 0,
                            },
                        };
                        inner
                            .qp
                            .post_send(0, reply.encode(), UdDest { addr: src, qpn: 0 })?;
                        while inner.send_cq.poll().is_some() {}
                    }
                    Some(Control::AdvReply {
                        stag,
                        slots,
                        slot_size,
                    }) => {
                        inner.state.lock().peers.insert(
                            src,
                            PeerRing {
                                stag,
                                slots,
                                slot_size,
                                next_slot: 0,
                                fallback: slots == 0,
                            },
                        );
                    }
                    None => {
                        inner.tel.rx_msgs.inc();
                        inner
                            .state
                            .lock()
                            .ready
                            .push_back((src, Bytes::from(data)));
                    }
                }
            }
            (CqeOpcode::Recv, CqeStatus::RecvTooSmall) => {
                let slot = cqe.wr_id as usize;
                self.repost(slot)?;
                inner.state.lock().stats.oversized_dropped += 1;
                inner.tel.oversized_dropped.inc();
            }
            (CqeOpcode::Recv, CqeStatus::Expired) => {
                let slot = cqe.wr_id as usize;
                self.repost(slot)?;
                inner.state.lock().stats.expired += 1;
                inner.tel.expired.inc();
            }
            (CqeOpcode::WriteRecord, status) => {
                let info = cqe.write_record.expect("write-record info");
                let src = cqe.src.expect("source").addr;
                let ring = inner.ring_mr.as_ref().expect("ring registered");
                let mut st = inner.state.lock();
                match status {
                    CqeStatus::Success => {
                        let data =
                            ring.read_vec(info.base_to, info.total_len as usize)?;
                        inner.tel.rx_msgs.inc();
                        st.ready.push_back((src, Bytes::from(data)));
                    }
                    CqeStatus::Partial => {
                        st.stats.partial_messages += 1;
                        inner.tel.partial_messages.inc();
                        if inner.stack.cfg.deliver_partial {
                            // Deliver the longest valid prefix.
                            let prefix = info
                                .validity
                                .runs()
                                .first()
                                .filter(|r| r.start == 0)
                                .map_or(0, |r| r.end);
                            if prefix > 0 {
                                let data = ring.read_vec(info.base_to, prefix as usize)?;
                                st.ready.push_back((src, Bytes::from(data)));
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn repost(&self, slot: usize) -> IwarpResult<()> {
        let inner = &self.inner;
        inner.qp.post_recv(RecvWr {
            wr_id: slot as u64,
            mr: inner.slot_mr.clone(),
            offset: (slot * inner.slot_size) as u64,
            len: inner.slot_size as u32,
        })
    }
}

impl Drop for DgramSocket {
    fn drop(&mut self) {
        self.inner.stack.release_fd(self.inner.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{SocketConfig, SocketStack};
    use simnet::{Fabric, NodeId};

    const TO: Duration = Duration::from_secs(5);

    fn stacks(fab: &Fabric, cfg: SocketConfig) -> (SocketStack, SocketStack) {
        (
            SocketStack::with_config(fab, NodeId(0), Default::default(), cfg.clone()),
            SocketStack::with_config(fab, NodeId(1), Default::default(), cfg),
        )
    }

    #[test]
    fn sendrecv_mode_roundtrip() {
        let fab = Fabric::loopback();
        let (sa, sb) = stacks(&fab, SocketConfig::default());
        let a = sa.dgram().unwrap();
        let b = sb.dgram_bound(7000).unwrap();
        a.send_to(b"datagram via shim", b.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        let (n, src) = b.recv_from(&mut buf, TO).unwrap();
        assert_eq!(&buf[..n], b"datagram via shim");
        assert_eq!(src, a.local_addr());
    }

    #[test]
    fn bidirectional_exchange() {
        let fab = Fabric::loopback();
        let (sa, sb) = stacks(&fab, SocketConfig::default());
        let a = sa.dgram().unwrap();
        let b = sb.dgram().unwrap();
        a.send_to(b"ping", b.local_addr()).unwrap();
        let mut buf = [0u8; 16];
        let (n, src) = b.recv_from(&mut buf, TO).unwrap();
        assert_eq!(&buf[..n], b"ping");
        b.send_to(b"pong", src).unwrap();
        let (n, _) = a.recv_from(&mut buf, TO).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }

    #[test]
    fn write_record_mode_roundtrip() {
        let fab = Fabric::loopback();
        let cfg = SocketConfig {
            mode: DgramMode::WriteRecord,
            ..SocketConfig::default()
        };
        let (sa, sb) = stacks(&fab, cfg);
        let a = sa.dgram().unwrap();
        let b = sb.dgram_bound(7001).unwrap();
        // Receiver must be pumping for the adv handshake to resolve; spawn
        // the receive first.
        std::thread::scope(|s| {
            let recv = s.spawn(|| {
                let mut buf = [0u8; 128];
                b.recv_from(&mut buf, TO).map(|(n, src)| (buf[..n].to_vec(), src))
            });
            std::thread::sleep(Duration::from_millis(20));
            a.send_to(b"one-sided datagram", b.local_addr()).unwrap();
            let (data, src) = recv.join().unwrap().unwrap();
            assert_eq!(&data[..], b"one-sided datagram");
            assert_eq!(src, a.local_addr());
        });
        // Second send reuses the cached advertisement (no handshake).
        a.send_to(b"again", b.local_addr()).unwrap();
        let mut buf = [0u8; 16];
        let (n, _) = b.recv_from(&mut buf, TO).unwrap();
        assert_eq!(&buf[..n], b"again");
    }

    #[test]
    fn write_record_sender_to_sendrecv_receiver_falls_back() {
        let fab = Fabric::loopback();
        let wr_cfg = SocketConfig {
            mode: DgramMode::WriteRecord,
            adv_timeout: Duration::from_millis(300),
            ..SocketConfig::default()
        };
        let sa = SocketStack::with_config(&fab, NodeId(0), Default::default(), wr_cfg);
        let sb = SocketStack::new(&fab, NodeId(1));
        let a = sa.dgram().unwrap();
        let b = sb.dgram().unwrap();
        std::thread::scope(|s| {
            let recv = s.spawn(|| {
                let mut buf = [0u8; 64];
                b.recv_from(&mut buf, TO).map(|(n, _)| buf[..n].to_vec())
            });
            a.send_to(b"fallback works", b.local_addr()).unwrap();
            assert_eq!(recv.join().unwrap().unwrap(), b"fallback works");
        });
    }

    #[test]
    fn recv_timeout_expires() {
        let fab = Fabric::loopback();
        let (sa, _sb) = stacks(&fab, SocketConfig::default());
        let a = sa.dgram().unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(
            a.recv_from(&mut buf, Duration::from_millis(30)).unwrap_err(),
            IwarpError::PollTimeout
        );
    }

    #[test]
    fn oversized_datagram_dropped_at_receiver() {
        let fab = Fabric::loopback();
        let (sa, sb) = stacks(&fab, SocketConfig::default());
        let a = sa.dgram().unwrap();
        let b = sb.dgram().unwrap();
        let big = vec![1u8; 20 * 1024]; // > 8 KiB slot
        a.send_to(&big, b.local_addr()).unwrap();
        a.send_to(b"small follows", b.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        let (n, _) = b.recv_from(&mut buf, TO).unwrap();
        assert_eq!(&buf[..n], b"small follows");
        assert_eq!(b.stats().oversized_dropped, 1);
    }

    #[test]
    fn poll_mode_sockets_roundtrip() {
        // Poll-mode sockets spawn no engine threads at all.
        let fab = Fabric::loopback();
        let cfg = SocketConfig {
            qp: iwarp::QpConfig {
                poll_mode: true,
                ..iwarp::QpConfig::default()
            },
            ..SocketConfig::default()
        };
        let (sa, sb) = stacks(&fab, cfg);
        let a = sa.dgram().unwrap();
        let b = sb.dgram().unwrap();
        a.send_to(b"poll mode", b.local_addr()).unwrap();
        let mut buf = [0u8; 16];
        let (n, src) = b.recv_from(&mut buf, TO).unwrap();
        assert_eq!(&buf[..n], b"poll mode");
        b.send_to(b"echo", src).unwrap();
        let (n, _) = a.recv_from(&mut buf, TO).unwrap();
        assert_eq!(&buf[..n], b"echo");
    }

    #[test]
    fn poll_mode_write_record_roundtrip() {
        let fab = Fabric::loopback();
        let cfg = SocketConfig {
            mode: DgramMode::WriteRecord,
            qp: iwarp::QpConfig {
                poll_mode: true,
                ..iwarp::QpConfig::default()
            },
            ..SocketConfig::default()
        };
        let (sa, sb) = stacks(&fab, cfg);
        let a = sa.dgram().unwrap();
        let b = sb.dgram().unwrap();
        std::thread::scope(|s| {
            let recv = s.spawn(|| {
                let mut buf = [0u8; 64];
                b.recv_from(&mut buf, TO).map(|(n, _)| buf[..n].to_vec())
            });
            std::thread::sleep(Duration::from_millis(20));
            a.send_to(b"one-sided poll", b.local_addr()).unwrap();
            // The sender must keep pumping its own socket so the adv
            // handshake resolves (send_to does this internally).
            assert_eq!(recv.join().unwrap().unwrap(), b"one-sided poll");
        });
    }

    #[test]
    fn many_senders_one_socket() {
        let fab = Fabric::loopback();
        let server_stack = SocketStack::new(&fab, NodeId(0));
        let server = server_stack.dgram_bound(9100).unwrap();
        let dst = server.local_addr();
        let mut clients = Vec::new();
        for i in 1..=8u16 {
            let st = SocketStack::new(&fab, NodeId(i));
            let c = st.dgram().unwrap();
            c.send_to(format!("client-{i}").as_bytes(), dst).unwrap();
            clients.push((st, c));
        }
        let mut seen = std::collections::HashSet::new();
        let mut buf = [0u8; 64];
        for _ in 0..8 {
            let (n, src) = server.recv_from(&mut buf, TO).unwrap();
            assert!(std::str::from_utf8(&buf[..n]).unwrap().starts_with("client-"));
            assert!(seen.insert(src));
        }
    }
}
