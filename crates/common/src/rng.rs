//! Deterministic RNG construction.
//!
//! Loss injection, workload generation and the figure harness all draw
//! randomness through here so every experiment is reproducible from a seed.
//! Derived seeds use SplitMix64 so that independent components (e.g. the
//! two directions of a link) get decorrelated streams from one master seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Advances a SplitMix64 state and returns the next 64-bit output.
///
/// Used to derive independent child seeds from a master seed; SplitMix64 is
/// the standard seeding-quality mixer (also used by `rand` internally).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*state)
}

/// Mixes `state` into a well-distributed 64-bit value.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `index`-th child seed from `master`.
#[must_use]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut state = master ^ mix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

/// Builds a fast non-cryptographic RNG from a 64-bit seed.
#[must_use]
pub fn small_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Builds a seeded RNG for test/bench code, announcing the seed on
/// stderr so a failing run always shows how to reproduce it (libtest
/// captures stderr and replays it only for failing tests).
///
/// Entropy-seeded RNG constructors are banned in test code (enforced
/// by a grep in `scripts/ci.sh`); route every test RNG through here or
/// [`small_rng`] with the seed carried in the assertion message.
#[must_use]
pub fn test_rng(seed: u64) -> SmallRng {
    eprintln!("rng seed: {seed:#x} ({seed})");
    small_rng(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = small_rng(42);
        let mut b = small_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = small_rng(1);
        let mut b = small_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_distinct() {
        let s: Vec<u64> = (0..64).map(|i| derive_seed(7, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn mix64_nonlinear() {
        // mix64 is a bijection with 0 as its (only trivial) fixed point.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn splitmix_stream_advances() {
        let mut s = 42u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
    }
}
