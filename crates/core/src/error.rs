//! Error types for the iWARP stack.

use std::fmt;

use simnet::NetError;

/// Errors surfaced by the verbs interface and protocol engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IwarpError {
    /// Error from the lower-layer protocol (fabric / conduit).
    Net(NetError),
    /// The referenced STag is not registered (or was invalidated).
    InvalidStag(u32),
    /// An access outside a registered region, or with insufficient rights.
    ///
    /// The DDP spec requires "the requested memory location must be
    /// registered with the device as a valid memory region" before
    /// placement; violations surface here (and terminate RC connections).
    AccessViolation {
        /// STag the operation referenced.
        stag: u32,
        /// Requested start offset.
        offset: u64,
        /// Requested length.
        len: u32,
    },
    /// Operation posted on a QP in the wrong state.
    QpState(&'static str),
    /// Per-segment CRC32 check failed; the segment was discarded.
    ///
    /// For UD this is *not* fatal (paper §IV.B item 2: a datagram QP is not
    /// forced into the error state on data loss); the error appears only in
    /// diagnostics counters unless explicitly polled.
    CrcMismatch,
    /// Message exceeds what the QP/LLP combination can carry.
    MessageTooLong {
        /// Requested message length.
        len: usize,
        /// Maximum supported by this QP type.
        max: usize,
    },
    /// The posted receive buffer is smaller than the arriving message.
    RecvBufferTooSmall {
        /// Posted buffer capacity.
        posted: u32,
        /// Incoming message length.
        incoming: u32,
    },
    /// A completion-queue poll timed out.
    PollTimeout,
    /// The send queue / receive queue is full.
    QueueFull,
    /// Connection management failure (MPA negotiation).
    Connection(&'static str),
}

impl fmt::Display for IwarpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IwarpError::Net(e) => write!(f, "lower layer: {e}"),
            IwarpError::InvalidStag(s) => write!(f, "invalid STag {s:#x}"),
            IwarpError::AccessViolation { stag, offset, len } => write!(
                f,
                "access violation: stag={stag:#x} offset={offset} len={len}"
            ),
            IwarpError::QpState(s) => write!(f, "invalid QP state: {s}"),
            IwarpError::CrcMismatch => write!(f, "DDP segment CRC mismatch"),
            IwarpError::MessageTooLong { len, max } => {
                write!(f, "message of {len} bytes exceeds QP maximum {max}")
            }
            IwarpError::RecvBufferTooSmall { posted, incoming } => write!(
                f,
                "posted receive of {posted} bytes cannot hold {incoming}-byte message"
            ),
            IwarpError::PollTimeout => write!(f, "completion poll timed out"),
            IwarpError::QueueFull => write!(f, "work queue full"),
            IwarpError::Connection(s) => write!(f, "connection management: {s}"),
        }
    }
}

impl std::error::Error for IwarpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IwarpError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for IwarpError {
    fn from(e: NetError) -> Self {
        match e {
            NetError::Timeout => IwarpError::PollTimeout,
            other => IwarpError::Net(other),
        }
    }
}

/// Convenience alias.
pub type IwarpResult<T> = Result<T, IwarpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_timeout_becomes_poll_timeout() {
        assert_eq!(
            IwarpError::from(NetError::Timeout),
            IwarpError::PollTimeout
        );
    }

    #[test]
    fn other_net_errors_wrap() {
        assert_eq!(
            IwarpError::from(NetError::Closed),
            IwarpError::Net(NetError::Closed)
        );
    }

    #[test]
    fn display_is_informative() {
        let e = IwarpError::AccessViolation {
            stag: 0x10,
            offset: 4,
            len: 8,
        };
        let s = e.to_string();
        assert!(s.contains("0x10") && s.contains('4') && s.contains('8'));
    }
}
