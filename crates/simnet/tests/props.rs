//! Property-based tests for the network substrate.

use std::time::Duration;

use bytes::Bytes;
use iwarp_common::copypath::CopyPath;
use proptest::prelude::*;

use simnet::dgram::{FRAG_HEADER, MAX_DATAGRAM, PROTO_DGRAM};
use simnet::{Addr, DgramConduit, Fabric, NodeId, StreamConduit, StreamListener, WireConfig};

/// Builds the wire frame of one datagram fragment by hand, so tests can
/// inject duplicates, reorderings and metadata conflicts that no
/// well-behaved sender produces.
fn frag_frame(id: u32, idx: u16, cnt: u16, total_len: u32, body: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAG_HEADER + body.len());
    f.push(PROTO_DGRAM);
    f.extend_from_slice(&id.to_be_bytes());
    f.extend_from_slice(&idx.to_be_bytes());
    f.extend_from_slice(&cnt.to_be_bytes());
    f.extend_from_slice(&total_len.to_be_bytes());
    f.extend_from_slice(body);
    f
}

/// Splits `payload` into the fragment frames a conforming sender would emit.
fn fragments_of(id: u32, payload: &[u8], frag_payload: usize) -> Vec<Vec<u8>> {
    let cnt = payload.len().div_ceil(frag_payload).max(1) as u16;
    (0..cnt)
        .map(|idx| {
            let start = usize::from(idx) * frag_payload;
            let end = (start + frag_payload).min(payload.len());
            frag_frame(id, idx, cnt, payload.len() as u32, &payload[start..end])
        })
        .collect()
}

/// Deterministic Fisher–Yates driven by a caller-supplied seed (proptest
/// picks the seed, so failures shrink and replay).
fn shuffle<T>(v: &mut [T], mut seed: u64) {
    for i in (1..v.len()).rev() {
        seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let j = (seed >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any datagram ≤ 64 KiB round-trips intact through fragmentation and
    /// reassembly, regardless of size or content.
    #[test]
    fn dgram_roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..8192),
                                   pad in 0usize..4) {
        // Stretch some payloads across the MTU boundary.
        let mut data = payload;
        if pad > 0 {
            data.extend(std::iter::repeat_n(0xEE, pad * 1490));
        }
        let fab = Fabric::loopback();
        let a = DgramConduit::bind(&fab, Addr::new(0, 1)).unwrap();
        let b = DgramConduit::bind(&fab, Addr::new(1, 1)).unwrap();
        a.send_to(b.local_addr(), Bytes::from(data.clone())).unwrap();
        let (_, got) = b.recv_from(Some(Duration::from_secs(2))).unwrap();
        prop_assert_eq!(&got[..], &data[..]);
    }

    /// The stream delivers exactly the bytes written, in order, for any
    /// write pattern (sizes, counts) — the TCP contract.
    #[test]
    fn stream_delivers_exact_bytes(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..2000), 1..6)) {
        let fab = Fabric::loopback();
        let cfg = simnet::stream::StreamConfig::default();
        let listener = StreamListener::bind(&fab, Addr::new(1, 900), cfg.clone()).unwrap();
        let expected: Vec<u8> = chunks.concat();
        std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(Some(Duration::from_secs(5))).unwrap());
            let client = StreamConduit::connect(&fab, NodeId(0), Addr::new(1, 900), cfg).unwrap();
            let server = srv.join().unwrap();
            s.spawn(move || {
                for c in &chunks {
                    client.write_all(c).unwrap();
                }
            });
            let mut got = vec![0u8; expected.len()];
            if !got.is_empty() {
                server.read_exact(&mut got, Some(Duration::from_secs(10))).unwrap();
            }
            prop_assert_eq!(got, expected);
            Ok(())
        })?;
    }

    /// Under loss, the stream still delivers the exact byte sequence
    /// (retransmission correctness) for arbitrary payloads.
    #[test]
    fn stream_exact_under_loss(data in proptest::collection::vec(any::<u8>(), 1..20_000),
                               seed in any::<u64>()) {
        let cfg = WireConfig::with_loss(0.03, seed);
        let fab = Fabric::new(cfg);
        let scfg = simnet::stream::StreamConfig {
            rto_initial: Duration::from_millis(5),
            ..simnet::stream::StreamConfig::default()
        };
        let listener = StreamListener::bind(&fab, Addr::new(1, 901), scfg.clone()).unwrap();
        std::thread::scope(|s| {
            let srv = s.spawn(|| listener.accept(Some(Duration::from_secs(5))).unwrap());
            let client = StreamConduit::connect(&fab, NodeId(0), Addr::new(1, 901), scfg).unwrap();
            let server = srv.join().unwrap();
            let expected = data.clone();
            s.spawn(move || client.write_all(&data).unwrap());
            let mut got = vec![0u8; expected.len()];
            server.read_exact(&mut got, Some(Duration::from_secs(30))).unwrap();
            prop_assert_eq!(got, expected);
            Ok(())
        })?;
    }

    /// Reassembly is immune to duplicated and arbitrarily reordered
    /// fragments: every delivered datagram is byte-identical to the
    /// original, and a complete fragment set always delivers.
    #[test]
    fn reassembly_survives_duplicates_and_reordering(
        payload in proptest::collection::vec(any::<u8>(), 1..12_000),
        order_seed in any::<u64>(),
        dups in proptest::collection::vec(any::<usize>(), 0..4),
    ) {
        let fab = Fabric::loopback();
        let rx = DgramConduit::bind(&fab, Addr::new(1, 700)).unwrap();
        let raw = fab.bind(Addr::new(0, 700)).unwrap();
        let frag_payload = rx.mtu() - FRAG_HEADER;
        let mut frames = fragments_of(9, &payload, frag_payload);
        for &d in &dups {
            let copy = frames[d % frames.len()].clone();
            frames.push(copy);
        }
        shuffle(&mut frames, order_seed);
        for f in frames {
            raw.send_to(rx.local_addr(), Bytes::from(f)).unwrap();
        }
        let mut delivered = 0usize;
        while let Ok((_, got)) = rx.recv_from(Some(Duration::from_millis(20))) {
            prop_assert_eq!(&got[..], &payload[..], "corrupted delivery");
            delivered += 1;
        }
        prop_assert!(delivered >= 1, "complete fragment set never delivered");
    }

    /// A fragment whose metadata (fragment count) conflicts with the
    /// already-open partial must never corrupt a delivery: the partial is
    /// dropped, so either the datagram completed before the conflict
    /// arrived (delivered intact) or it is lost entirely — all-or-nothing,
    /// exactly like kernel IP fragment handling.
    #[test]
    fn conflicting_metadata_never_corrupts(
        payload in proptest::collection::vec(any::<u8>(), 3100..12_000),
        pos in any::<usize>(),
        bump in 1u16..5,
    ) {
        let fab = Fabric::loopback();
        let rx = DgramConduit::bind(&fab, Addr::new(1, 701)).unwrap();
        let raw = fab.bind(Addr::new(0, 701)).unwrap();
        let frag_payload = rx.mtu() - FRAG_HEADER;
        let frames = fragments_of(4, &payload, frag_payload);
        let cnt = frames.len();
        prop_assert!(cnt >= 2);
        // Same datagram id, same total length, different fragment count.
        let conflict = frag_frame(
            4,
            0,
            cnt as u16 + bump,
            payload.len() as u32,
            &payload[..frag_payload],
        );
        let at = pos % (cnt + 1);
        for (i, f) in frames.into_iter().enumerate() {
            if i == at {
                raw.send_to(rx.local_addr(), Bytes::from(conflict.clone())).unwrap();
            }
            raw.send_to(rx.local_addr(), Bytes::from(f)).unwrap();
        }
        if at == cnt {
            raw.send_to(rx.local_addr(), Bytes::from(conflict.clone())).unwrap();
        }
        let mut delivered = 0usize;
        while let Ok((_, got)) = rx.recv_from(Some(Duration::from_millis(20))) {
            prop_assert_eq!(&got[..], &payload[..], "corrupted delivery");
            delivered += 1;
        }
        // Conflict before the last genuine fragment kills the datagram;
        // after completion it only opens a doomed new partial.
        let expected = usize::from(at == cnt);
        prop_assert_eq!(delivered, expected);
        prop_assert!(rx.pending_partials() >= 1, "conflict leftovers should be pending");
    }

    /// The scatter-gather and legacy transmit datapaths emit byte-identical
    /// wire packets, in the same order, for sizes spanning the MTU
    /// fragmentation boundary and the 64 KiB datagram limit.
    #[test]
    fn sg_and_legacy_wire_packets_identical(
        fill in any::<u8>(),
        size_sel in 0usize..8,
        jitter in 0usize..3,
    ) {
        let fab = Fabric::loopback();
        let frag_payload = fab.config().mtu - FRAG_HEADER;
        let bases = [
            1,
            frag_payload - 1,
            frag_payload,
            2 * frag_payload - 1,
            3 * frag_payload,
            32 * 1024,
            60_000,
            MAX_DATAGRAM - 2,
        ];
        let size = (bases[size_sel] + jitter).min(MAX_DATAGRAM);
        let payload: Vec<u8> = (0..size).map(|i| fill.wrapping_add(i as u8)).collect();

        let mut legacy_tx = DgramConduit::bind(&fab, Addr::new(0, 702)).unwrap();
        legacy_tx.set_copy_path(CopyPath::Legacy);
        let mut sg_tx = DgramConduit::bind(&fab, Addr::new(2, 702)).unwrap();
        sg_tx.set_copy_path(CopyPath::Sg);
        let legacy_rx = fab.bind(Addr::new(1, 702)).unwrap();
        let sg_rx = fab.bind(Addr::new(3, 702)).unwrap();

        // Fresh conduits allocate identical datagram ids, so the frames
        // must match byte-for-byte, fragment-for-fragment.
        legacy_tx.send_to(legacy_rx.local_addr(), Bytes::from(payload.clone())).unwrap();
        sg_tx.send_to(sg_rx.local_addr(), Bytes::from(payload.clone())).unwrap();
        let cnt = size.div_ceil(frag_payload).max(1);
        for _ in 0..cnt {
            let lp = legacy_rx.recv(Some(Duration::from_secs(2))).unwrap();
            let sp = sg_rx.recv(Some(Duration::from_secs(2))).unwrap();
            prop_assert_eq!(lp.wire_len(), sp.wire_len());
            prop_assert_eq!(&lp.frame().to_bytes()[..], &sp.frame().to_bytes()[..]);
        }
        prop_assert!(legacy_rx.try_recv().is_err(), "legacy sent extra packets");
        prop_assert!(sg_rx.try_recv().is_err(), "sg sent extra packets");
    }
}
