//! Receive-side protocol core shared by the datagram and RC engines.
//!
//! Both QP flavours do the same DDP work on arrival — match untagged
//! segments to posted receives, steer tagged segments into registered
//! memory, aggregate Write-Record validity, satisfy read requests — and
//! differ only in how bytes reach them (datagrams vs the MPA-framed
//! stream) and how responses leave. [`RxCore::handle`] performs all
//! placement and completion generation and returns the transport-specific
//! work (read responses) as [`RxAction`]s for the owning engine to send.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use iwarp_telemetry::{Counter, EndpointId, EventKind, Histogram, Telemetry};
use parking_lot::Mutex;
use simnet::Addr;

use iwarp_common::validity::ValidityMap;

use crate::buf::{MemoryRegion, MrTable};
use crate::cq::{Cq, Cqe, CqeOpcode, CqeSource, CqeStatus};
use crate::error::IwarpError;
use crate::hdr::{DdpSegment, PendingCrc, RdmapOpcode, ReadRequest, TaggedHdr, UntaggedHdr};
use crate::qp::QpConfig;
use crate::wr::RecvWr;
use crate::wr_record::RecordTable;

/// DDP queue numbers.
pub const QN_SEND: u32 = 0;
/// Queue number carrying RDMA Read Requests.
pub const QN_READ_REQUEST: u32 = 1;
/// Queue number carrying Terminate messages.
pub const QN_TERMINATE: u32 = 2;

/// Diagnostics counters for one QP (all relaxed atomics; cheap to keep on).
#[derive(Debug, Default)]
pub struct QpStats {
    /// Segments discarded due to CRC mismatch.
    pub crc_errors: AtomicU64,
    /// Segments discarded as malformed.
    pub malformed: AtomicU64,
    /// Untagged segments dropped because no receive was posted.
    pub dropped_no_rq: AtomicU64,
    /// Posted receives recovered after their message expired.
    pub expired_recvs: AtomicU64,
    /// Tagged segments refused by STag/bounds/permission checks.
    pub access_violations: AtomicU64,
    /// Read requests refused by permission checks.
    pub read_denied: AtomicU64,
    /// Write-Record messages reaped with the final segment missing.
    pub records_reaped: AtomicU64,
    /// Segments processed.
    pub rx_segments: AtomicU64,
    /// Messages completed (all opcodes).
    pub rx_messages: AtomicU64,
}

/// Telemetry handles the receive engine keeps resolved, mirroring
/// [`QpStats`] into the fabric's domain-wide counters plus the
/// Write-Record accounting the paper's loss experiments reconcile
/// against.
pub(crate) struct RxTel {
    tel: Telemetry,
    local: EndpointId,
    rx_segments: Counter,
    rx_messages: Counter,
    crc_errors: Counter,
    malformed: Counter,
    dropped_no_rq: Counter,
    recovery_expired: Counter,
    read_expired: Counter,
    access_violations: Counter,
    read_denied: Counter,
    partial_placements: Counter,
    wr_record_completions: Counter,
    stale_gc_reaped: Counter,
    msg_bytes: Histogram,
}

impl RxTel {
    pub fn new(tel: &Telemetry, local: Addr) -> Self {
        Self {
            local: EndpointId::new(local.node.0, local.port),
            rx_segments: tel.counter("core.rx.segments"),
            rx_messages: tel.counter("core.rx.messages"),
            crc_errors: tel.counter("core.rx.crc_errors"),
            malformed: tel.counter("core.rx.malformed"),
            dropped_no_rq: tel.counter("core.rx.dropped_no_rq"),
            recovery_expired: tel.counter("core.rx.recovery_expired"),
            read_expired: tel.counter("core.rx.read_expired"),
            access_violations: tel.counter("core.rx.access_violations"),
            read_denied: tel.counter("core.rx.read_denied"),
            partial_placements: tel.counter("core.qp.wr_record.partial_placements"),
            wr_record_completions: tel.counter("core.qp.wr_record.completions"),
            stale_gc_reaped: tel.counter("core.qp.wr_record.stale_gc_reaped"),
            msg_bytes: tel.histogram("core.rx.msg_bytes"),
            tel: tel.clone(),
        }
    }

    /// Records a packet event against this QP's endpoint when tracing is
    /// armed (one relaxed load otherwise).
    fn trace(&self, kind: EventKind, a: u64, b: u64) {
        if self.tel.tracer().armed() {
            self.tel
                .tracer()
                .record(self.tel.now_nanos(), self.local, kind, a, b);
        }
    }
}

/// Transport-specific follow-up work produced by [`RxCore::handle`].
#[derive(Debug)]
pub enum RxAction {
    /// Send an RDMA Read Response back to `dst`: `data` read from the
    /// local source region, to be placed at `(sink_stag, sink_to)` on the
    /// requester, tagged with the request's `msg_id`.
    SendReadResponse {
        /// Requester's address.
        dst: Addr,
        /// Requester's sink STag.
        sink_stag: u32,
        /// Requester's sink offset.
        sink_to: u64,
        /// The data read.
        data: Bytes,
        /// Read transaction id (echoed from the request).
        msg_id: u64,
    },
}

/// An untagged message in flight: a consumed receive WR being filled.
struct PendingRecv {
    wr: RecvWr,
    total: u32,
    src_qpn: u32,
    validity: ValidityMap,
    first_seen: Instant,
    /// Sender requested a solicited event on this message.
    solicited: bool,
    /// Set when the message was aborted (too big); remaining segments of
    /// the same message are ignored without consuming more receives.
    discard: bool,
}

/// A pending RDMA Read issued by this QP.
pub(crate) struct PendingRead {
    pub wr_id: u64,
    pub sink: MemoryRegion,
    pub sink_to: u64,
    pub len: u32,
    validity: ValidityMap,
    first_seen: Instant,
    /// Generate a CQE on successful completion (selective signaling).
    /// Expiry always produces a CQE regardless.
    signaled: bool,
}

/// Cold receive-side substructures: reassembly state for multi-segment
/// untagged messages, the Write-Record aggregation table, and the
/// pending-read scoreboard.
///
/// An idle QP — the common case at 100k concurrent mostly-quiet calls —
/// touches none of these: single-segment sends ride the fast path in
/// [`RxCore::place_untagged`], and reads/Write-Records simply never
/// happen. So the whole bundle lives behind one `Option<Box<..>>` and is
/// allocated on the first segment that actually needs it, not at QP
/// create. The consolidation also collapses what used to be three
/// separate mutexes into one; lock order where it nests is `cold` before
/// `rq`, matching the old `pending_recv` → `rq` order.
struct RxCold {
    /// Untagged messages in flight, keyed by `(src, src_qpn, msg_id)`.
    pending_recv: HashMap<(Addr, u32, u64), PendingRecv>,
    /// Write-Record aggregation / GC state.
    records: RecordTable,
    /// Outstanding RDMA Reads issued by this QP, keyed by transaction id.
    pending_reads: HashMap<u64, PendingRead>,
}

impl RxCold {
    fn new(cfg: &QpConfig) -> Box<Self> {
        Box::new(Self {
            pending_recv: HashMap::new(),
            records: RecordTable::new(cfg.record_ttl),
            pending_reads: HashMap::new(),
        })
    }
}

/// The shared receive-side engine state.
pub(crate) struct RxCore {
    pub mrs: std::sync::Arc<MrTable>,
    pub recv_cq: Cq,
    pub cfg: QpConfig,
    pub stats: QpStats,
    pub(crate) tel: RxTel,
    /// True when the LLP guarantees delivery (RC, RD): partial receives
    /// and pending reads must then never expire — every segment will
    /// arrive eventually, and recycling a receive mid-message would
    /// corrupt matching.
    reliable: bool,
    rq: Mutex<VecDeque<RecvWr>>,
    /// Lazily allocated cold state (see [`RxCold`]). `None` until the
    /// first multi-segment message, Write-Record notify, or issued read.
    cold: Mutex<Option<Box<RxCold>>>,
    /// `wr_id`s of completed *unsignaled* reads, in completion order,
    /// awaiting [`Self::take_retired_reads`]. Reads complete out of
    /// order, so suppressed completions are reported as a drainable list
    /// rather than a high-water mark.
    retired_reads: Mutex<Vec<u64>>,
    next_sweep: Mutex<Instant>,
    /// When set, completions are staged in `staged` instead of pushed
    /// individually; the burst drains flush them with one
    /// [`Cq::push_batch`] round per ingest batch. Toggled only by the
    /// single engine driving this QP.
    staging: AtomicBool,
    staged: Mutex<Vec<Cqe>>,
}

impl RxCore {
    pub fn new(
        mrs: std::sync::Arc<MrTable>,
        recv_cq: Cq,
        cfg: QpConfig,
        reliable: bool,
        tel: RxTel,
    ) -> Self {
        Self {
            mrs,
            recv_cq,
            cfg,
            stats: QpStats::default(),
            tel,
            reliable,
            rq: Mutex::new(VecDeque::new()),
            cold: Mutex::new(None),
            retired_reads: Mutex::new(Vec::new()),
            next_sweep: Mutex::new(Instant::now() + Duration::from_millis(50)),
            staging: AtomicBool::new(false),
            staged: Mutex::new(Vec::new()),
        }
    }

    /// Whether the cold bundle has been allocated (diagnostics/tests: an
    /// idle or fast-path-only QP must report `false`).
    pub fn cold_state_allocated(&self) -> bool {
        self.cold.lock().is_some()
    }

    /// Emits one receive-side completion: staged while a completion batch
    /// is open (burst ingest), pushed directly otherwise. Every CQE the
    /// core generates funnels through here so batching cannot reorder
    /// completions — the staging buffer preserves generation order.
    fn complete(&self, cqe: Cqe) {
        if self.staging.load(Ordering::Relaxed) {
            self.staged.lock().push(cqe);
        } else {
            self.recv_cq.push(cqe);
        }
    }

    /// Opens a completion batch: subsequent [`Self::complete`] calls are
    /// staged until [`Self::flush_completion_batch`]. Only the engine
    /// driving this QP may call this (one drain at a time).
    pub(crate) fn begin_completion_batch(&self) {
        self.staging.store(true, Ordering::Relaxed);
    }

    /// Closes the completion batch and pushes everything staged with one
    /// CQ lock/notify round.
    pub(crate) fn flush_completion_batch(&self) {
        self.staging.store(false, Ordering::Relaxed);
        let staged = std::mem::take(&mut *self.staged.lock());
        if !staged.is_empty() {
            self.recv_cq.push_batch(staged);
        }
    }

    /// Mirrors a CRC-discard observed by the owning engine (which decodes
    /// before handing segments to the core).
    pub(crate) fn note_crc_error(&self) {
        self.tel.crc_errors.inc();
    }

    /// Mirrors a decode failure observed by the owning engine.
    pub(crate) fn note_malformed(&self) {
        self.tel.malformed.inc();
    }

    /// Queues a receive work request.
    pub fn post_recv(&self, wr: RecvWr) {
        self.rq.lock().push_back(wr);
    }

    /// Queues a batch of receive work requests under one ring lock,
    /// preserving iteration order.
    pub fn post_recv_batch(&self, wrs: impl IntoIterator<Item = RecvWr>) {
        self.rq.lock().extend(wrs);
    }

    /// Number of receives currently posted (unconsumed).
    pub fn rq_len(&self) -> usize {
        self.rq.lock().len()
    }

    /// Registers a pending RDMA Read awaiting its response.
    pub fn register_read(&self, msg_id: u64, read: PendingRead) {
        self.cold
            .lock()
            .get_or_insert_with(|| RxCold::new(&self.cfg))
            .pending_reads
            .insert(msg_id, read);
    }

    pub fn new_pending_read(
        wr_id: u64,
        sink: MemoryRegion,
        sink_to: u64,
        len: u32,
        signaled: bool,
    ) -> PendingRead {
        PendingRead {
            wr_id,
            sink,
            sink_to,
            len,
            validity: ValidityMap::new(),
            first_seen: Instant::now(),
            signaled,
        }
    }

    /// Drains the `wr_id`s of unsignaled reads that completed since the
    /// last call, in completion order.
    pub fn take_retired_reads(&self) -> Vec<u64> {
        std::mem::take(&mut *self.retired_reads.lock())
    }

    /// True when handling this untagged segment right now would drop it
    /// for lack of a posted receive. On a *reliable* LLP the engine uses
    /// this to stall the stream instead (TCP backpressure), because a
    /// reliable connection must never silently lose a message.
    pub fn would_stall(&self, src: Addr, hdr: &UntaggedHdr) -> bool {
        if hdr.qn != QN_SEND {
            return false;
        }
        let key = (src, hdr.src_qpn, hdr.msg_id);
        if self
            .cold
            .lock()
            .as_deref()
            .is_some_and(|c| c.pending_recv.contains_key(&key))
        {
            return false; // continuation of an in-flight message
        }
        self.rq.lock().is_empty()
    }

    /// Processes one decoded DDP segment from `src` whose CRC has already
    /// been verified (or is not carried at all — the stream path).
    pub fn handle(&self, src: Addr, seg: DdpSegment) -> Option<RxAction> {
        self.handle_deferred(src, seg, None)
    }

    /// Processes one decoded DDP segment whose CRC check may still be
    /// pending ([`crate::hdr::decode_sg`]'s cut-through decode).
    ///
    /// Untagged segments settle the check up front: two-sided placement
    /// consumes a posted receive before any byte lands, and wire
    /// corruption must not eat receive WRs that the check-first legacy
    /// path preserves. Tagged segments carry the check into placement,
    /// where [`MemoryRegion::write_with_crc`] fuses it with the mandatory
    /// copy into the registered region.
    pub(crate) fn handle_deferred(
        &self,
        src: Addr,
        seg: DdpSegment,
        pending: Option<PendingCrc>,
    ) -> Option<RxAction> {
        self.stats.rx_segments.fetch_add(1, Ordering::Relaxed);
        self.tel.rx_segments.inc();
        match seg {
            DdpSegment::Untagged { hdr, payload } => {
                if !self.settle_crc(pending.as_ref(), &payload) {
                    return None;
                }
                self.handle_untagged(src, &hdr, &payload)
            }
            DdpSegment::Tagged { hdr, payload } => {
                self.handle_tagged(src, &hdr, &payload, pending);
                None
            }
        }
    }

    /// Resolves a deferred CRC at a non-placement exit. Returns true when
    /// the segment is good (or no check was pending); counts a CRC
    /// discard and returns false otherwise.
    fn settle_crc(&self, pending: Option<&PendingCrc>, payload: &[u8]) -> bool {
        match pending {
            None => true,
            Some(p) if p.verify(payload) => true,
            Some(_) => {
                self.stats.crc_errors.fetch_add(1, Ordering::Relaxed);
                self.tel.crc_errors.inc();
                false
            }
        }
    }

    /// Places `payload` at `to`, fusing a deferred CRC check with the
    /// copy when one is pending. Counts the appropriate discard
    /// (CRC or access violation, classified as the check-first legacy
    /// path would) and returns false on failure.
    fn place_checked(
        &self,
        mr: &MemoryRegion,
        to: u64,
        payload: &Bytes,
        pending: Option<&PendingCrc>,
    ) -> bool {
        let res = match pending {
            Some(p) => mr.write_with_crc(to, payload, p),
            None => mr.write(to, payload),
        };
        match res {
            Ok(()) => true,
            Err(IwarpError::CrcMismatch) => {
                self.stats.crc_errors.fetch_add(1, Ordering::Relaxed);
                self.tel.crc_errors.inc();
                false
            }
            Err(_) => {
                if self.settle_crc(pending, payload) {
                    self.stats.access_violations.fetch_add(1, Ordering::Relaxed);
                    self.tel.access_violations.inc();
                }
                false
            }
        }
    }

    fn handle_untagged(
        &self,
        src: Addr,
        hdr: &UntaggedHdr,
        payload: &Bytes,
    ) -> Option<RxAction> {
        match hdr.qn {
            QN_SEND => {
                self.place_untagged(src, hdr, payload);
                None
            }
            QN_READ_REQUEST => self.serve_read_request(src, hdr, payload),
            QN_TERMINATE => None,
            _ => {
                self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                self.tel.malformed.inc();
                None
            }
        }
    }

    /// Untagged (send/recv) placement: match a posted receive, place the
    /// segment, complete when the whole message has arrived.
    fn place_untagged(&self, src: Addr, hdr: &UntaggedHdr, payload: &Bytes) {
        let key = (src, hdr.src_qpn, hdr.msg_id);
        let mut cold = self.cold.lock();
        // Single-segment fast path: a message that arrives whole needs no
        // reassembly state, so skip the pending-map round-trip, validity
        // tracking, and expiry timestamping. Guarded on an empty pending
        // map (trivially true while the cold bundle is unallocated) so an
        // in-flight reassembly (or a lingering discard entry) for this key
        // falls through to the full path below, which is byte-for-byte
        // equivalent for this shape of segment.
        if hdr.mo == 0
            && hdr.last
            && payload.len() as u64 == u64::from(hdr.total_len)
            && cold.as_deref().is_none_or(|c| c.pending_recv.is_empty())
        {
            drop(cold);
            let Some(wr) = self.rq.lock().pop_front() else {
                self.stats.dropped_no_rq.fetch_add(1, Ordering::Relaxed);
                self.tel.dropped_no_rq.inc();
                return;
            };
            if hdr.total_len > wr.len {
                self.complete(Cqe {
                    wr_id: wr.wr_id,
                    opcode: CqeOpcode::Recv,
                    status: CqeStatus::RecvTooSmall,
                    byte_len: hdr.total_len,
                    src: Some(CqeSource {
                        addr: src,
                        qpn: hdr.src_qpn,
                    }),
                    write_record: None,
                    imm: None,
                    solicited: false,
                });
                return;
            }
            if wr.mr.write(wr.offset, payload).is_err() {
                self.stats.access_violations.fetch_add(1, Ordering::Relaxed);
                self.tel.access_violations.inc();
                return;
            }
            self.tel
                .trace(EventKind::Placement, payload.len() as u64, hdr.msg_id);
            self.stats.rx_messages.fetch_add(1, Ordering::Relaxed);
            self.tel.rx_messages.inc();
            self.tel.msg_bytes.record(u64::from(hdr.total_len));
            self.tel
                .trace(EventKind::Cqe, u64::from(hdr.total_len), hdr.msg_id);
            self.complete(Cqe {
                wr_id: wr.wr_id,
                opcode: CqeOpcode::Recv,
                status: CqeStatus::Success,
                byte_len: hdr.total_len,
                src: Some(CqeSource {
                    addr: src,
                    qpn: hdr.src_qpn,
                }),
                write_record: None,
                imm: None,
                solicited: hdr.solicited,
            });
            return;
        }
        // Multi-segment (or colliding) message: reassembly state is needed,
        // so the cold bundle allocates here — on first use, not QP create.
        let pending = &mut cold.get_or_insert_with(|| RxCold::new(&self.cfg)).pending_recv;
        let entry = match pending.get_mut(&key) {
            Some(e) => e,
            None => {
                // New message: consume the next posted receive.
                let Some(wr) = self.rq.lock().pop_front() else {
                    self.stats.dropped_no_rq.fetch_add(1, Ordering::Relaxed);
                    self.tel.dropped_no_rq.inc();
                    return;
                };
                let discard = hdr.total_len > wr.len;
                if discard {
                    // Buffer too small: complete with an error and mark the
                    // message so its other segments don't eat more WRs.
                    self.complete(Cqe {
                        wr_id: wr.wr_id,
                        opcode: CqeOpcode::Recv,
                        status: CqeStatus::RecvTooSmall,
                        byte_len: hdr.total_len,
                        src: Some(CqeSource {
                            addr: src,
                            qpn: hdr.src_qpn,
                        }),
                        write_record: None,
                    imm: None,
                    solicited: false,
                    });
                }
                pending.insert(
                    key,
                    PendingRecv {
                        wr,
                        total: hdr.total_len,
                        src_qpn: hdr.src_qpn,
                        validity: ValidityMap::new(),
                        first_seen: Instant::now(),
                        solicited: hdr.solicited,
                        discard,
                    },
                );
                pending.get_mut(&key).expect("just inserted")
            }
        };
        if entry.discard {
            if hdr.last {
                pending.remove(&key);
            }
            return;
        }
        let place_at = entry.wr.offset + u64::from(hdr.mo);
        if entry.wr.mr.write(place_at, payload).is_err() {
            self.stats.access_violations.fetch_add(1, Ordering::Relaxed);
            self.tel.access_violations.inc();
            return;
        }
        self.tel
            .trace(EventKind::Placement, payload.len() as u64, hdr.msg_id);
        entry.solicited |= hdr.solicited;
        entry.validity.record(u64::from(hdr.mo), payload.len() as u64);
        if entry.validity.covers(u64::from(entry.total)) {
            let done = pending.remove(&key).expect("present");
            self.stats.rx_messages.fetch_add(1, Ordering::Relaxed);
            self.tel.rx_messages.inc();
            self.tel.msg_bytes.record(u64::from(done.total));
            self.tel
                .trace(EventKind::Cqe, u64::from(done.total), hdr.msg_id);
            self.complete(Cqe {
                wr_id: done.wr.wr_id,
                opcode: CqeOpcode::Recv,
                status: CqeStatus::Success,
                byte_len: done.total,
                src: Some(CqeSource {
                    addr: src,
                    qpn: done.src_qpn,
                }),
                write_record: None,
                imm: None,
                solicited: done.solicited,
            });
        }
    }

    /// Responds to an incoming RDMA Read Request (we are the responder).
    fn serve_read_request(
        &self,
        src: Addr,
        hdr: &UntaggedHdr,
        payload: &Bytes,
    ) -> Option<RxAction> {
        let Ok(req) = ReadRequest::decode(payload) else {
            self.stats.malformed.fetch_add(1, Ordering::Relaxed);
            self.tel.malformed.inc();
            return None;
        };
        let mr = match self
            .mrs
            .lookup_remote_read(req.src_stag, req.src_to, req.len as usize)
        {
            Ok(mr) => mr,
            Err(_) => {
                self.stats.read_denied.fetch_add(1, Ordering::Relaxed);
                self.tel.read_denied.inc();
                return None;
            }
        };
        let data = match mr.read_bytes(req.src_to, req.len as usize) {
            Ok(d) => d,
            Err(_) => {
                self.stats.read_denied.fetch_add(1, Ordering::Relaxed);
                self.tel.read_denied.inc();
                return None;
            }
        };
        Some(RxAction::SendReadResponse {
            dst: src,
            sink_stag: req.sink_stag,
            sink_to: req.sink_to,
            data,
            msg_id: hdr.msg_id,
        })
    }

    fn handle_tagged(
        &self,
        src: Addr,
        hdr: &TaggedHdr,
        payload: &Bytes,
        pending: Option<PendingCrc>,
    ) {
        match hdr.opcode {
            RdmapOpcode::WriteRecord | RdmapOpcode::RdmaWrite | RdmapOpcode::RdmaWriteImm => {
                let mr = match self
                    .mrs
                    .lookup_remote_write(hdr.stag, hdr.to, payload.len())
                {
                    Ok(mr) => mr,
                    Err(_) => {
                        // Datagram semantics: report, do not kill the QP
                        // (paper §IV.B item 2). A segment that is in fact
                        // corrupt is counted as such, not as a violation.
                        if self.settle_crc(pending.as_ref(), payload) {
                            self.stats.access_violations.fetch_add(1, Ordering::Relaxed);
                            self.tel.access_violations.inc();
                        }
                        return;
                    }
                };
                if !self.place_checked(&mr, hdr.to, payload, pending.as_ref()) {
                    return;
                }
                self.tel
                    .trace(EventKind::Placement, payload.len() as u64, hdr.msg_id);
                if hdr.notify {
                    let mut cold = self.cold.lock();
                    let records = &cold.get_or_insert_with(|| RxCold::new(&self.cfg)).records;
                    if let Some(info) = records.ingest(src, hdr, payload.len()) {
                        let complete = info.is_complete();
                        let status = if complete {
                            CqeStatus::Success
                        } else {
                            CqeStatus::Partial
                        };
                        if !complete {
                            self.tel.partial_placements.inc();
                        }
                        if hdr.opcode == RdmapOpcode::RdmaWriteImm {
                            // InfiniBand semantics: the immediate consumes
                            // a posted receive. Without one, the data is
                            // placed but the notification is lost — the
                            // exact cost Write-Record avoids (§IV.B.3).
                            let Some(wr) = self.rq.lock().pop_front() else {
                                self.stats.dropped_no_rq.fetch_add(1, Ordering::Relaxed);
                                self.tel.dropped_no_rq.inc();
                                return;
                            };
                            self.stats.rx_messages.fetch_add(1, Ordering::Relaxed);
                            self.tel.rx_messages.inc();
                            self.tel.msg_bytes.record(info.valid_bytes());
                            self.tel
                                .trace(EventKind::Cqe, info.valid_bytes(), hdr.msg_id);
                            self.complete(Cqe {
                                wr_id: wr.wr_id,
                                opcode: CqeOpcode::Recv,
                                status,
                                byte_len: info.valid_bytes() as u32,
                                src: Some(CqeSource {
                                    addr: src,
                                    qpn: hdr.src_qpn,
                                }),
                                write_record: Some(info),
                                imm: Some(hdr.imm),
                                solicited: true,
                            });
                            return;
                        }
                        self.stats.rx_messages.fetch_add(1, Ordering::Relaxed);
                        self.tel.rx_messages.inc();
                        self.tel.wr_record_completions.inc();
                        self.tel.msg_bytes.record(info.valid_bytes());
                        self.tel
                            .trace(EventKind::Cqe, info.valid_bytes(), hdr.msg_id);
                        self.complete(Cqe {
                            // No WR was consumed: Write-Record is truly
                            // one-sided (paper §IV.B.3).
                            wr_id: 0,
                            opcode: CqeOpcode::WriteRecord,
                            status,
                            byte_len: info.valid_bytes() as u32,
                            src: Some(CqeSource {
                                addr: src,
                                qpn: hdr.src_qpn,
                            }),
                            write_record: Some(info),
                            imm: None,
                            solicited: false,
                        });
                    }
                }
            }
            RdmapOpcode::ReadResponse => self.place_read_response(hdr, payload, pending),
            _ => {
                if !self.settle_crc(pending.as_ref(), payload) {
                    return;
                }
                self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                self.tel.malformed.inc();
            }
        }
    }

    /// Places an RDMA Read Response segment into the pending read's sink.
    fn place_read_response(&self, hdr: &TaggedHdr, payload: &Bytes, pending: Option<PendingCrc>) {
        let mut cold = self.cold.lock();
        // No cold state means no read was ever issued: treat like any
        // other duplicate/late response below.
        let reads = match cold.as_deref_mut() {
            Some(c) => &mut c.pending_reads,
            None => {
                let _ = self.settle_crc(pending.as_ref(), payload);
                return;
            }
        };
        let Some(pr) = reads.get_mut(&hdr.msg_id) else {
            // Duplicate/late response; still settle a deferred check so
            // corrupt wire bytes are counted as corruption.
            let _ = self.settle_crc(pending.as_ref(), payload);
            return;
        };
        // The response must target the sink we registered for this read.
        if hdr.stag != pr.sink.stag()
            || hdr.to < pr.sink_to
            || hdr.to + payload.len() as u64 > pr.sink_to + u64::from(pr.len)
        {
            if self.settle_crc(pending.as_ref(), payload) {
                self.stats.access_violations.fetch_add(1, Ordering::Relaxed);
                self.tel.access_violations.inc();
            }
            return;
        }
        if !self.place_checked(&pr.sink.clone(), hdr.to, payload, pending.as_ref()) {
            return;
        }
        pr.validity.record(hdr.to - pr.sink_to, payload.len() as u64);
        if pr.validity.covers(u64::from(pr.len)) {
            let done = reads.remove(&hdr.msg_id).expect("present");
            self.stats.rx_messages.fetch_add(1, Ordering::Relaxed);
            self.tel.rx_messages.inc();
            self.tel.msg_bytes.record(u64::from(done.len));
            if done.signaled {
                self.tel
                    .trace(EventKind::Cqe, u64::from(done.len), hdr.msg_id);
                self.complete(Cqe {
                    wr_id: done.wr_id,
                    opcode: CqeOpcode::RdmaRead,
                    status: CqeStatus::Success,
                    byte_len: done.len,
                    src: None,
                    write_record: None,
                    imm: None,
                    solicited: false,
                });
            } else {
                // Selective signaling: success is reported through the
                // drainable retired list, never the CQ.
                self.retired_reads.lock().push(done.wr_id);
                self.recv_cq.retire_unsignaled(1);
            }
        }
    }

    /// Reaps expired partial receives (recovering their buffers with an
    /// `Expired` completion), expired pending reads, and stale
    /// Write-Record state. Self-throttled to one sweep per 50 ms, so it is
    /// cheap to call from every engine iteration.
    pub fn expire(&self) {
        let now = Instant::now();
        {
            let mut next = self.next_sweep.lock();
            if now < *next {
                return;
            }
            *next = now + Duration::from_millis(50);
        }
        let mut cold_guard = self.cold.lock();
        // Nothing cold has ever been allocated → nothing can be stale.
        // This keeps expire() at two mutex probes for idle QPs, which is
        // what lets 100k quiet calls share one sweeping engine.
        let Some(cold) = cold_guard.as_deref_mut() else {
            return;
        };
        if self.reliable {
            // Reliable LLP: everything in flight will complete; only the
            // Write-Record table (shared semantics) still GCs.
            let gc = cold.records.gc();
            if gc.reaped > 0 {
                self.stats
                    .records_reaped
                    .fetch_add(gc.reaped, Ordering::Relaxed);
                self.tel.stale_gc_reaped.add(gc.reaped);
            }
            return;
        }
        {
            let pending = &mut cold.pending_recv;
            let ttl = self.cfg.recv_ttl;
            let expired: Vec<_> = pending
                .iter()
                .filter(|(_, p)| now.duration_since(p.first_seen) > ttl)
                .map(|(k, _)| *k)
                .collect();
            for key in expired {
                let p = pending.remove(&key).expect("present");
                self.stats.expired_recvs.fetch_add(1, Ordering::Relaxed);
                self.tel.recovery_expired.inc();
                if !p.discard {
                    self.complete(Cqe {
                        wr_id: p.wr.wr_id,
                        opcode: CqeOpcode::Recv,
                        status: CqeStatus::Expired,
                        byte_len: p.validity.valid_bytes() as u32,
                        src: Some(CqeSource {
                            addr: key.0,
                            qpn: p.src_qpn,
                        }),
                        write_record: None,
                    imm: None,
                    solicited: false,
                    });
                }
            }
        }
        {
            let reads = &mut cold.pending_reads;
            let ttl = self.cfg.read_ttl;
            let expired: Vec<u64> = reads
                .iter()
                .filter(|(_, p)| now.duration_since(p.first_seen) > ttl)
                .map(|(k, _)| *k)
                .collect();
            for key in expired {
                let p = reads.remove(&key).expect("present");
                self.tel.read_expired.inc();
                self.complete(Cqe {
                    wr_id: p.wr_id,
                    opcode: CqeOpcode::RdmaRead,
                    status: CqeStatus::Expired,
                    byte_len: p.validity.valid_bytes() as u32,
                    src: None,
                    write_record: None,
                imm: None,
                solicited: false,
                });
            }
        }
        let gc = cold.records.gc();
        if gc.reaped > 0 {
            self.stats
                .records_reaped
                .fetch_add(gc.reaped, Ordering::Relaxed);
            self.tel.stale_gc_reaped.add(gc.reaped);
        }
    }

    /// Flushes all posted receives with `Flushed` status (QP teardown).
    pub fn flush(&self) {
        let mut rq = self.rq.lock();
        while let Some(wr) = rq.pop_front() {
            self.complete(Cqe {
                wr_id: wr.wr_id,
                opcode: CqeOpcode::Recv,
                status: CqeStatus::Flushed,
                byte_len: 0,
                src: None,
                write_record: None,
            imm: None,
            solicited: false,
            });
        }
    }

    /// Write-Record messages currently awaiting their final segment.
    pub fn records_pending(&self) -> usize {
        self.cold
            .lock()
            .as_deref()
            .map_or(0, |c| c.records.pending())
    }
}
