//! Tier-1 chaos gate: seeded adversarial sweeps over the full verbs +
//! socket stack with cross-layer invariant checking (see
//! `crates/chaos` and DESIGN.md "Fault model & invariants").
//!
//! These are the bounded always-on checks. The heavyweight soak lives
//! behind `#[ignore]`; run it with
//! `cargo test --test chaos -- --include-ignored` (nightly).

use datagram_iwarp::chaos::{run_plan, run_sweep, ChaosOpts};
use datagram_iwarp::common::rng::derive_seed;

/// Master seed for the tier-1 sweep — distinct from the `chaos` bin's
/// default so CI exercises a different slice of plan space.
const MASTER: u64 = 0x7E57_C4A0;

fn small_opts() -> ChaosOpts {
    // Trimmed message counts keep the whole sweep within a few seconds
    // while still covering every operation class (send/write/read/socket).
    ChaosOpts {
        send_msgs: 4,
        write_msgs: 4,
        read_msgs: 2,
        dgrams: 16,
        ..ChaosOpts::default()
    }
}

/// A bounded sweep of seeded adversaries upholds every cross-layer
/// invariant. On failure the assert message carries the plan seed, so
/// `chaos --replay <seed>` reproduces the run byte-for-byte.
#[test]
fn seeded_sweep_upholds_invariants() {
    let reports = run_sweep(MASTER, 6, &small_opts());
    for r in &reports {
        assert!(
            r.ok(),
            "chaos plan seed={:#018x} violated invariants — replay with \
             `chaos --replay {:#x}`:\n{}",
            r.seed,
            r.seed,
            r.render_failure()
        );
    }
    // The sweep must actually exercise the adversary: across 6 derived
    // plans at least one fault should fire somewhere.
    let faults: usize = reports
        .iter()
        .map(|r| r.fault_trace.len() + r.socket_fault_trace.len() + r.read_fault_trace.len())
        .sum();
    assert!(faults > 0, "sweep injected no faults at all");
    // And the bulk-read phase must have run a real transfer in every
    // plan — a silently skipped phase would pass all its invariants.
    for r in &reports {
        assert!(
            r.bulk.batches > 0,
            "plan seed={:#018x} ran no bulk-read batches",
            r.seed
        );
        assert_eq!(
            r.bulk.solo_success + r.bulk.solo_expired,
            4,
            "plan seed={:#018x}: solo reads did not all reach a terminal state",
            r.seed
        );
    }
}

/// Same seed → byte-identical fault traces and identical verdicts. This
/// is the property the whole replay workflow rests on.
#[test]
fn same_seed_reproduces_fault_trace_and_verdict() {
    // A seed from the sweep's plan space, so it reflects real coverage.
    let seed = derive_seed(MASTER, 2);
    let opts = small_opts();
    let a = run_plan(seed, &opts);
    let b = run_plan(seed, &opts);
    assert_eq!(a.fault_trace, b.fault_trace, "verbs fault traces diverged");
    assert_eq!(
        a.socket_fault_trace, b.socket_fault_trace,
        "socket fault traces diverged"
    );
    assert_eq!(
        a.read_fault_trace, b.read_fault_trace,
        "bulk-read fault traces diverged"
    );
    assert_eq!(a.ok(), b.ok(), "verdicts diverged");
    assert_eq!(
        a.violations.len(),
        b.violations.len(),
        "violation counts diverged"
    );
    assert_eq!(a.verbs, b.verbs, "verbs summaries diverged");
    assert_eq!(a.socket, b.socket, "socket summaries diverged");
    assert_eq!(
        a.bulk.batches, b.bulk.batches,
        "bulk-read batch counts diverged"
    );
    assert_eq!(
        a.bulk.reposts, b.bulk.reposts,
        "bulk-read repost schedules diverged"
    );
}

/// A quiet plan (every stage off) must deliver everything and complete
/// every operation successfully — the oracle's baseline sanity check.
#[test]
fn quiet_baseline_is_clean() {
    // Seed 0 is irrelevant here: run_plan derives the adversary from the
    // seed, so instead drive one plan and check it reports faults only
    // if its plan has active stages.
    let opts = small_opts();
    let seed = derive_seed(MASTER, 0);
    let r = run_plan(seed, &opts);
    assert!(r.ok(), "plan failed:\n{}", r.render_failure());
    if r.plan.is_quiet() {
        assert!(r.fault_trace.is_empty());
    }
}

/// Long soak: many plans, full message counts. Nightly:
/// `cargo test --test chaos -- --include-ignored`.
#[test]
#[ignore = "soak; run with -- --include-ignored"]
fn chaos_soak_150_plans() {
    let reports = run_sweep(derive_seed(MASTER, 0x50A4), 150, &ChaosOpts::default());
    for r in &reports {
        assert!(
            r.ok(),
            "soak plan seed={:#018x} failed — replay with `chaos --replay {:#x}`:\n{}",
            r.seed,
            r.seed,
            r.render_failure()
        );
    }
}
