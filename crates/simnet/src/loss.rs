//! Packet-loss models.
//!
//! The paper injects loss with Linux traffic control ("a FIFO queue ... was
//! configured to drop packets at a defined rate", §VI.A.2) at rates of
//! 0.1 %, 0.5 %, 1 % and 5 % — chosen to match observed intra-US, EU–US and
//! intercontinental WAN loss. [`LossModel::Bernoulli`] reproduces that
//! i.i.d. drop behaviour. [`LossModel::GilbertElliott`] adds the bursty
//! two-state model real WANs exhibit, used by the extension benchmarks.

use rand::Rng;
use rand::rngs::SmallRng;

/// A packet-loss process. Stateless variants are `Copy`-cheap; the
/// Gilbert–Elliott model carries its current state in [`LossState`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossModel {
    /// No loss (the paper's baseline LAN conditions).
    None,
    /// Independent drop with probability `rate` per wire packet.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) burst-loss model.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_gb: f64,
        /// P(bad → good) per packet.
        p_bg: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Bernoulli model with the given drop rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn bernoulli(rate: f64) -> Self {
        LossModel::Bernoulli {
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// A bursty model with the given average loss rate and mean burst
    /// length (in packets). `loss_good` is 0; the bad state always drops.
    #[must_use]
    pub fn bursty(avg_rate: f64, mean_burst: f64) -> Self {
        let mean_burst = mean_burst.max(1.0);
        let p_bg = 1.0 / mean_burst;
        // Stationary P(bad) = p_gb / (p_gb + p_bg); avg loss = P(bad)·1.
        let p_bad = avg_rate.clamp(0.0, 0.99);
        let p_gb = p_bad * p_bg / (1.0 - p_bad);
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// The long-run average drop probability of this model.
    #[must_use]
    pub fn average_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { rate } => rate,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                if p_gb + p_bg == 0.0 {
                    loss_good
                } else {
                    let p_bad = p_gb / (p_gb + p_bg);
                    (1.0 - p_bad) * loss_good + p_bad * loss_bad
                }
            }
        }
    }
}

/// Mutable state accompanying a [`LossModel`] (Markov state).
#[derive(Clone, Copy, Debug, Default)]
pub struct LossState {
    in_bad: bool,
}

impl LossState {
    /// Decides whether the next packet is dropped.
    pub fn should_drop(&mut self, model: &LossModel, rng: &mut SmallRng) -> bool {
        match *model {
            LossModel::None => false,
            LossModel::Bernoulli { rate } => rate > 0.0 && rng.gen_bool(rate),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                // Transition first, then sample the (possibly new) state.
                if self.in_bad {
                    if p_bg > 0.0 && rng.gen_bool(p_bg.min(1.0)) {
                        self.in_bad = false;
                    }
                } else if p_gb > 0.0 && rng.gen_bool(p_gb.min(1.0)) {
                    self.in_bad = true;
                }
                let p = if self.in_bad { loss_bad } else { loss_good };
                p > 0.0 && rng.gen_bool(p.min(1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwarp_common::rng::{small_rng, test_rng};

    #[test]
    fn none_never_drops() {
        let mut rng = small_rng(1);
        let mut st = LossState::default();
        assert!((0..10_000).all(|_| !st.should_drop(&LossModel::None, &mut rng)));
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = small_rng(2);
        let mut st = LossState::default();
        let model = LossModel::bernoulli(0.05);
        let n = 200_000;
        let drops = (0..n)
            .filter(|_| st.should_drop(&model, &mut rng))
            .count();
        let rate = drops as f64 / f64::from(n);
        assert!((rate - 0.05).abs() < 0.005, "rate={rate}");
    }

    #[test]
    fn bernoulli_clamps() {
        assert_eq!(LossModel::bernoulli(2.0).average_rate(), 1.0);
        assert_eq!(LossModel::bernoulli(-1.0).average_rate(), 0.0);
    }

    #[test]
    fn bursty_average_rate() {
        let model = LossModel::bursty(0.01, 5.0);
        assert!((model.average_rate() - 0.01).abs() < 1e-9);
        let mut rng = small_rng(3);
        let mut st = LossState::default();
        let n = 500_000;
        let drops = (0..n)
            .filter(|_| st.should_drop(&model, &mut rng))
            .count();
        let rate = drops as f64 / f64::from(n);
        assert!((rate - 0.01).abs() < 0.003, "rate={rate}");
    }

    #[test]
    fn bursty_produces_bursts() {
        // With mean burst 10, consecutive drops should be common relative
        // to a Bernoulli process of the same average rate.
        let model = LossModel::bursty(0.02, 10.0);
        let mut rng = small_rng(4);
        let mut st = LossState::default();
        let seq: Vec<bool> = (0..200_000)
            .map(|_| st.should_drop(&model, &mut rng))
            .collect();
        let drops = seq.iter().filter(|&&d| d).count().max(1);
        let pairs = seq.windows(2).filter(|w| w[0] && w[1]).count();
        // P(drop | previous drop) should be far above the 2% base rate.
        let cond = pairs as f64 / drops as f64;
        assert!(cond > 0.5, "conditional drop rate {cond}");
    }

    /// 10⁶-packet statistical audit of [`LossModel::bursty`]: the
    /// empirical drop rate must land within ±10% of
    /// [`LossModel::average_rate`], and the mean observed burst length
    /// within ±15% of the requested mean (burst lengths are geometric
    /// with mean `mean_burst` because the bad state always drops and
    /// exits with probability `1/mean_burst`).
    #[test]
    fn bursty_million_packet_statistics() {
        for (avg_rate, mean_burst, seed) in
            [(0.01, 5.0, 0xB0A1u64), (0.05, 8.0, 0xB0A2), (0.02, 3.0, 0xB0A3)]
        {
            let model = LossModel::bursty(avg_rate, mean_burst);
            assert!(
                (model.average_rate() - avg_rate).abs() < 1e-9,
                "closed-form average_rate off for avg={avg_rate}"
            );
            let mut rng = test_rng(seed);
            let mut st = LossState::default();
            let n = 1_000_000u32;
            let mut drops = 0u64;
            let mut bursts = 0u64;
            let mut prev = false;
            for _ in 0..n {
                let d = st.should_drop(&model, &mut rng);
                if d {
                    drops += 1;
                    if !prev {
                        bursts += 1;
                    }
                }
                prev = d;
            }
            let rate = drops as f64 / f64::from(n);
            assert!(
                (rate - avg_rate).abs() <= 0.10 * avg_rate,
                "seed {seed:#x}: empirical rate {rate} vs nominal {avg_rate} (±10%)"
            );
            let mean = drops as f64 / bursts.max(1) as f64;
            assert!(
                (mean - mean_burst).abs() <= 0.15 * mean_burst,
                "seed {seed:#x}: mean burst {mean} vs nominal {mean_burst} (±15%)"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let model = LossModel::bernoulli(0.3);
        let run = |seed| -> Vec<bool> {
            let mut rng = small_rng(seed);
            let mut st = LossState::default();
            (0..64).map(|_| st.should_drop(&model, &mut rng)).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
