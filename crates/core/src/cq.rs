//! Completion queues.
//!
//! Every verbs operation reports through a [`Cq`]. Datagram-iWARP adds two
//! requirements over the connected standard (paper §IV.B):
//!
//! * polling must support a **timeout** — a lost datagram means an awaited
//!   completion may never materialize ("it is essential that the completion
//!   queue be polled with a defined timeout period", §IV.B.1);
//! * completion entries are **extended with the source address and port**
//!   of incoming data, since a UD QP has no single peer.
//!
//! Write-Record target completions additionally carry a
//! [`WriteRecordInfo`] describing which sink bytes are valid.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use iwarp_telemetry::{Counter, Histogram, Telemetry};
use parking_lot::{Condvar, Mutex};
use simnet::Addr;

use crate::chan::CompletionChannel;
use crate::error::{IwarpError, IwarpResult};
use crate::wr_record::WriteRecordInfo;

/// What kind of operation a completion describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqeOpcode {
    /// A posted send finished (handed to the LLP).
    Send,
    /// A posted receive was consumed by an incoming send.
    Recv,
    /// A source-side RDMA Write (or Write-Record) finished.
    RdmaWrite,
    /// A target-side RDMA Write-Record completion — no posted WR consumed;
    /// this is the paper's one-sided notification mechanism.
    WriteRecord,
    /// An RDMA Read completed at the requester.
    RdmaRead,
}

/// Completion status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqeStatus {
    /// The operation completed in full.
    Success,
    /// A Write-Record message completed with gaps: some segments were lost
    /// but the final segment arrived, so the valid ranges are declared via
    /// the validity map (partial placement, paper §IV.B.4).
    Partial,
    /// A posted receive expired: the message it was matched to never
    /// completed (datagram loss) and the buffer was recovered
    /// ("detect failed operations and recover buffers", paper Fig. 2).
    Expired,
    /// The incoming message did not fit the posted buffer.
    RecvTooSmall,
    /// The QP was torn down with this WR outstanding.
    Flushed,
    /// A local or protocol error; details in diagnostics counters.
    Error,
}

/// Identity of the remote sender, reported on datagram completions
/// (paper §IV.B item 4: "completion queue elements need to be altered to
/// include information concerning the source address and port").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CqeSource {
    /// Fabric address (node:port) of the sending conduit.
    pub addr: Addr,
    /// Sender's QP number.
    pub qpn: u32,
}

/// One completion-queue entry.
#[derive(Clone, Debug)]
pub struct Cqe {
    /// Application token from the work request (0 for unsolicited
    /// target-side Write-Record completions).
    pub wr_id: u64,
    /// Operation kind.
    pub opcode: CqeOpcode,
    /// Outcome.
    pub status: CqeStatus,
    /// Bytes transferred (for `Partial`: bytes actually valid).
    pub byte_len: u32,
    /// Sender identity on datagram receives.
    pub src: Option<CqeSource>,
    /// Validity details for target-side Write-Record completions.
    pub write_record: Option<WriteRecordInfo>,
    /// Immediate data delivered by an RDMA Write with Immediate.
    pub imm: Option<u32>,
    /// True when the sender requested a solicited event (send with
    /// solicited event / write-with-immediate); see
    /// [`Cq::wait_solicited`].
    pub solicited: bool,
}

/// A blank entry for pre-sizing [`Cq::poll_into`] scratch buffers; never
/// produced by the stack itself.
impl Default for Cqe {
    fn default() -> Self {
        Self {
            wr_id: 0,
            opcode: CqeOpcode::Send,
            status: CqeStatus::Success,
            byte_len: 0,
            src: None,
            write_record: None,
            imm: None,
            solicited: false,
        }
    }
}

/// Telemetry handles bound by [`Cq::attach_telemetry`]. Counter names are
/// domain-wide (`core.cq.*`), so every CQ of a fabric aggregates into the
/// same metrics.
struct CqTel {
    pushed: Counter,
    success: Counter,
    partial: Counter,
    expired: Counter,
    too_small: Counter,
    flushed: Counter,
    error: Counter,
    overflow: Counter,
    unsignaled_retired: Counter,
    poll_wait_nanos: Histogram,
}

struct CqInner {
    queue: Mutex<VecDeque<Cqe>>,
    cv: Condvar,
    /// Woken only by solicited completions (the solicited-event channel).
    solicited_cv: Condvar,
    solicited_seq: AtomicU64,
    capacity: usize,
    overflows: AtomicU64,
    /// Completions retired without a CQE because the WR was unsignaled.
    unsignaled_retired: AtomicU64,
    tel: OnceLock<CqTel>,
    /// Event subscription: every push notifies the channel under the
    /// token (see [`Cq::attach_channel`]).
    chan: Mutex<Option<(CompletionChannel, u64)>>,
}

/// A completion queue. Clones share the same queue.
#[derive(Clone)]
pub struct Cq {
    inner: Arc<CqInner>,
}

impl Cq {
    /// Creates a CQ holding at most `capacity` outstanding entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(CqInner {
                // Deliberately unsized: a CQ on an idle connection costs no
                // heap until its first completion, which is what keeps
                // per-call bytes flat at 100k mostly-quiet calls (Fig. 11).
                // `VecDeque` grows amortized toward `capacity` on busy CQs.
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                solicited_cv: Condvar::new(),
                solicited_seq: AtomicU64::new(0),
                capacity: capacity.max(1),
                overflows: AtomicU64::new(0),
                unsignaled_retired: AtomicU64::new(0),
                tel: OnceLock::new(),
                chan: Mutex::new(None),
            }),
        }
    }

    /// Binds this CQ into a telemetry domain: every push is counted under
    /// `core.cq.*` by outcome, overflows are exported, and timed polls
    /// record their wait in the `core.cq.poll_wait_nanos` histogram.
    /// Called automatically when a QP is created over the CQ; idempotent
    /// (the first domain wins).
    pub fn attach_telemetry(&self, tel: &Telemetry) {
        self.inner.tel.get_or_init(|| CqTel {
            pushed: tel.counter("core.cq.cqes"),
            success: tel.counter("core.cq.cqe_success"),
            partial: tel.counter("core.cq.cqe_partial"),
            expired: tel.counter("core.cq.cqe_expired"),
            too_small: tel.counter("core.cq.cqe_recv_too_small"),
            flushed: tel.counter("core.cq.cqe_flushed"),
            error: tel.counter("core.cq.cqe_error"),
            overflow: tel.counter("core.cq.overflows"),
            unsignaled_retired: tel.counter("core.cq.unsignaled_retired"),
            poll_wait_nanos: tel.histogram("core.cq.poll_wait_nanos"),
        });
    }

    /// Enqueues a completion. On overflow the entry is dropped and counted
    /// (a real RNIC would transition to a catastrophic error; benchmarks
    /// size their CQs to make this unreachable).
    pub fn push(&self, cqe: Cqe) {
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            self.inner.overflows.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.inner.tel.get() {
                t.overflow.inc();
            }
            return;
        }
        if let Some(t) = self.inner.tel.get() {
            t.pushed.inc();
            match cqe.status {
                CqeStatus::Success => t.success.inc(),
                CqeStatus::Partial => t.partial.inc(),
                CqeStatus::Expired => t.expired.inc(),
                CqeStatus::RecvTooSmall => t.too_small.inc(),
                CqeStatus::Flushed => t.flushed.inc(),
                CqeStatus::Error => t.error.inc(),
            }
        }
        let solicited = cqe.solicited;
        q.push_back(cqe);
        drop(q);
        self.inner.cv.notify_one();
        if solicited {
            self.inner.solicited_seq.fetch_add(1, Ordering::Relaxed);
            self.inner.solicited_cv.notify_all();
        }
        // Event subscription last, after the CQE is visible to poll():
        // a waiter woken by the channel must find the entry.
        let sub = self.inner.chan.lock().clone();
        if let Some((chan, token)) = sub {
            chan.notify(token);
        }
    }

    /// Enqueues a batch of completions under one queue lock with one
    /// wakeup. Per-entry bookkeeping (overflow accounting, per-status
    /// counters, solicited tracking) is identical to N [`push`](Cq::push)
    /// calls, but pollers, the solicited channel and any attached
    /// [`CompletionChannel`] are notified once per batch — the burst
    /// datapath's completion coalescing.
    pub fn push_batch(&self, cqes: Vec<Cqe>) {
        if cqes.is_empty() {
            return;
        }
        let mut solicited = false;
        let mut pushed = 0usize;
        {
            let mut q = self.inner.queue.lock();
            for cqe in cqes {
                if q.len() >= self.inner.capacity {
                    self.inner.overflows.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = self.inner.tel.get() {
                        t.overflow.inc();
                    }
                    continue;
                }
                if let Some(t) = self.inner.tel.get() {
                    t.pushed.inc();
                    match cqe.status {
                        CqeStatus::Success => t.success.inc(),
                        CqeStatus::Partial => t.partial.inc(),
                        CqeStatus::Expired => t.expired.inc(),
                        CqeStatus::RecvTooSmall => t.too_small.inc(),
                        CqeStatus::Flushed => t.flushed.inc(),
                        CqeStatus::Error => t.error.inc(),
                    }
                }
                solicited |= cqe.solicited;
                q.push_back(cqe);
                pushed += 1;
            }
        }
        if pushed == 0 {
            return;
        }
        if pushed == 1 {
            self.inner.cv.notify_one();
        } else {
            self.inner.cv.notify_all();
        }
        if solicited {
            self.inner.solicited_seq.fetch_add(1, Ordering::Relaxed);
            self.inner.solicited_cv.notify_all();
        }
        let sub = self.inner.chan.lock().clone();
        if let Some((chan, token)) = sub {
            chan.notify(token);
        }
    }

    /// Subscribes this CQ to a [`CompletionChannel`] under `token`:
    /// every subsequent push notifies the channel, waking
    /// [`CompletionChannel::wait_any`] waiters. If completions are
    /// *already* queued the channel is notified immediately, so a
    /// subscriber that attaches after a burst cannot miss it. Replaces
    /// any previous subscription; `detach_channel` removes it.
    pub fn attach_channel(&self, chan: &CompletionChannel, token: u64) {
        *self.inner.chan.lock() = Some((chan.clone(), token));
        if !self.is_empty() {
            chan.notify(token);
        }
    }

    /// Removes the channel subscription, if any.
    pub fn detach_channel(&self) {
        *self.inner.chan.lock() = None;
    }

    /// Blocks until a *solicited* completion has been enqueued since this
    /// call started (the solicited-event mechanism: an application can
    /// sleep here instead of burning CPU polling, and be woken only for
    /// completions the sender marked important). Entries are NOT consumed;
    /// follow up with [`Cq::poll`].
    pub fn wait_solicited(&self, timeout: Duration) -> IwarpResult<()> {
        let deadline = Instant::now() + timeout;
        let start_seq = self.inner.solicited_seq.load(Ordering::Relaxed);
        // Fast path: a solicited completion may already be queued.
        if self.inner.queue.lock().iter().any(|c| c.solicited) {
            return Ok(());
        }
        let mut q = self.inner.queue.lock();
        loop {
            if self.inner.solicited_seq.load(Ordering::Relaxed) != start_seq
                || q.iter().any(|c| c.solicited)
            {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(IwarpError::PollTimeout);
            }
            self.inner.solicited_cv.wait_for(&mut q, deadline - now);
        }
    }

    /// Non-blocking poll.
    #[must_use]
    pub fn poll(&self) -> Option<Cqe> {
        self.inner.queue.lock().pop_front()
    }

    /// Polls with a timeout — the mandatory datagram-iWARP polling mode.
    pub fn poll_timeout(&self, timeout: Duration) -> IwarpResult<Cqe> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut q = self.inner.queue.lock();
        loop {
            if let Some(cqe) = q.pop_front() {
                drop(q);
                if let Some(t) = self.inner.tel.get() {
                    t.poll_wait_nanos.record(start.elapsed().as_nanos() as u64);
                }
                return Ok(cqe);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(IwarpError::PollTimeout);
            }
            self.inner.cv.wait_for(&mut q, deadline - now);
        }
    }

    /// Drains up to `out.len()` queued completions into `out` under one
    /// queue lock, without blocking and without allocating. Returns how
    /// many entries were written: `out[..n]` is overwritten, the rest is
    /// left untouched. The amortized reaping primitive of the burst
    /// datapath — callers keep one scratch `[Cqe]` alive across reaps
    /// instead of paying a `Vec` per poll round.
    pub fn poll_into(&self, out: &mut [Cqe]) -> usize {
        if out.is_empty() {
            return 0;
        }
        let mut q = self.inner.queue.lock();
        let mut n = 0;
        while n < out.len() {
            match q.pop_front() {
                Some(cqe) => {
                    out[n] = cqe;
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Polls until `n` completions arrive or `timeout` elapses. As
    /// before, entries consumed before a timeout are dropped with the
    /// error. Implemented over [`poll_into`](Cq::poll_into): queued
    /// entries drain in one lock round, and only the waits in between
    /// block (and record `poll_wait_nanos`).
    pub fn poll_n(&self, n: usize, timeout: Duration) -> IwarpResult<Vec<Cqe>> {
        if n == 0 {
            // An empty Vec never allocates; return it without taking the
            // queue lock or reading the clock.
            return Ok(Vec::new());
        }
        let deadline = Instant::now() + timeout;
        let mut out = vec![Cqe::default(); n];
        let mut filled = self.poll_into(&mut out);
        while filled < n {
            let now = Instant::now();
            if now >= deadline {
                return Err(IwarpError::PollTimeout);
            }
            out[filled] = self.poll_timeout(deadline - now)?;
            filled += 1;
            filled += self.poll_into(&mut out[filled..]);
        }
        Ok(out)
    }

    /// Entries currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// True when no completions are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of completions dropped to overflow since creation.
    #[must_use]
    pub fn overflows(&self) -> u64 {
        self.inner.overflows.load(Ordering::Relaxed)
    }

    /// Maximum number of outstanding entries this CQ can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Entries that could be pushed right now without overflowing.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.inner.capacity.saturating_sub(self.len())
    }

    /// Records `n` work completions retired *without* a CQE because their
    /// WR was posted unsignaled (selective signaling, `sq_sig_all=0`).
    /// Exported as `core.cq.unsignaled_retired`.
    pub fn retire_unsignaled(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.inner.unsignaled_retired.fetch_add(n, Ordering::Relaxed);
        if let Some(t) = self.inner.tel.get() {
            t.unsignaled_retired.add(n);
        }
    }

    /// Completions retired without a CQE since creation (unsignaled WRs).
    #[must_use]
    pub fn unsignaled_retired(&self) -> u64 {
        self.inner.unsignaled_retired.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Cq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cq")
            .field("len", &self.len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cqe(wr_id: u64) -> Cqe {
        Cqe {
            wr_id,
            opcode: CqeOpcode::Send,
            status: CqeStatus::Success,
            byte_len: 0,
            src: None,
            write_record: None,
            imm: None,
            solicited: false,
        }
    }

    #[test]
    fn fifo_order() {
        let cq = Cq::new(16);
        for i in 0..5 {
            cq.push(cqe(i));
        }
        for i in 0..5 {
            assert_eq!(cq.poll().unwrap().wr_id, i);
        }
        assert!(cq.poll().is_none());
    }

    #[test]
    fn poll_timeout_expires() {
        let cq = Cq::new(4);
        let t0 = Instant::now();
        let err = cq.poll_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, IwarpError::PollTimeout);
        assert!(t0.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn poll_wakes_on_push() {
        let cq = Cq::new(4);
        std::thread::scope(|s| {
            let cq2 = cq.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                cq2.push(cqe(42));
            });
            let got = cq.poll_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(got.wr_id, 42);
        });
    }

    #[test]
    fn overflow_counts_and_drops() {
        let cq = Cq::new(2);
        cq.push(cqe(0));
        cq.push(cqe(1));
        cq.push(cqe(2));
        assert_eq!(cq.len(), 2);
        assert_eq!(cq.overflows(), 1);
    }

    #[test]
    fn poll_n_collects() {
        let cq = Cq::new(16);
        for i in 0..3 {
            cq.push(cqe(i));
        }
        let got = cq.poll_n(3, Duration::from_millis(100)).unwrap();
        assert_eq!(got.len(), 3);
        assert!(cq
            .poll_n(1, Duration::from_millis(10))
            .is_err());
    }

    #[test]
    fn poll_n_zero_is_instant_and_empty() {
        let cq = Cq::new(4);
        cq.push(cqe(7));
        let got = cq.poll_n(0, Duration::ZERO).unwrap();
        assert!(got.is_empty());
        // The queued entry was not consumed.
        assert_eq!(cq.len(), 1);
    }

    #[test]
    fn poll_into_drains_without_blocking() {
        let cq = Cq::new(16);
        for i in 0..3 {
            cq.push(cqe(i));
        }
        let mut buf = vec![Cqe::default(); 8];
        assert_eq!(cq.poll_into(&mut buf), 3);
        assert_eq!(buf[0].wr_id, 0);
        assert_eq!(buf[2].wr_id, 2);
        // Empty queue: immediate zero, buffer untouched.
        buf[0].wr_id = 99;
        assert_eq!(cq.poll_into(&mut buf), 0);
        assert_eq!(buf[0].wr_id, 99);
        assert_eq!(cq.poll_into(&mut []), 0);
    }

    #[test]
    fn push_batch_matches_push_bookkeeping() {
        let cq = Cq::new(2);
        cq.push_batch((0..4).map(cqe).collect());
        assert_eq!(cq.len(), 2, "capacity still enforced per entry");
        assert_eq!(cq.overflows(), 2);
        assert_eq!(cq.poll().unwrap().wr_id, 0);
        assert_eq!(cq.poll().unwrap().wr_id, 1);
        // An empty batch is a no-op.
        cq.push_batch(Vec::new());
        assert!(cq.poll().is_none());
    }

    #[test]
    fn push_batch_wakes_blocked_poller() {
        let cq = Cq::new(16);
        std::thread::scope(|s| {
            let cq2 = cq.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                cq2.push_batch(vec![cqe(1), cqe(2)]);
            });
            let got = cq.poll_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(got.wr_id, 1);
        });
    }

    #[test]
    fn push_batch_solicited_wakes_waiter() {
        let cq = Cq::new(16);
        let mut batch: Vec<Cqe> = vec![cqe(1), cqe(2)];
        batch[1].solicited = true;
        cq.push_batch(batch);
        cq.wait_solicited(Duration::from_millis(100)).unwrap();
    }
}
