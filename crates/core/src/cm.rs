//! Connection management for RC queue pairs: the MPA start-up handshake.
//!
//! After the stream (TCP) connection is established, iWARP peers exchange
//! MPA Request/Reply frames to negotiate marker use, CRC use, and — in this
//! implementation — their QP numbers (carried as MPA private data). Only
//! then does the connection enter RDMA mode.
//!
//! Datagram QPs need none of this: "there is no initial set up of operating
//! conditions exchanged when the QP is created; the operation conditions
//! are set locally" (paper §IV.B item 6). The absence of this round-trip is
//! part of datagram-iWARP's connection-economy.

use std::time::Duration;

use bytes::{BufMut, BytesMut};
use simnet::StreamConduit;

use crate::error::{IwarpError, IwarpResult};
use crate::mpa::MpaConfig;

const REQ_MAGIC: &[u8; 8] = b"MPAIDReq";
const REP_MAGIC: &[u8; 8] = b"MPAIDRep";
const FLAG_MARKERS: u8 = 0x01;
const FLAG_CRC: u8 = 0x02;

/// Encoded handshake frame length: magic(8) + flags(1) + qpn(4).
const FRAME_LEN: usize = 13;

fn encode(magic: &[u8; 8], cfg: MpaConfig, qpn: u32) -> BytesMut {
    let mut b = BytesMut::with_capacity(FRAME_LEN);
    b.extend_from_slice(magic);
    let mut flags = 0u8;
    if cfg.markers {
        flags |= FLAG_MARKERS;
    }
    if cfg.crc {
        flags |= FLAG_CRC;
    }
    b.put_u8(flags);
    b.put_u32(qpn);
    b
}

fn decode(raw: &[u8; FRAME_LEN], magic: &[u8; 8]) -> IwarpResult<(MpaConfig, u32)> {
    if &raw[..8] != magic {
        return Err(IwarpError::Connection("bad MPA magic"));
    }
    let flags = raw[8];
    let qpn = u32::from_be_bytes(raw[9..13].try_into().expect("sized"));
    Ok((
        MpaConfig {
            markers: flags & FLAG_MARKERS != 0,
            crc: flags & FLAG_CRC != 0,
        },
        qpn,
    ))
}

/// Active side of the MPA handshake. Sends a Request with the desired
/// `cfg` and our `qpn`; returns the peer's QP number and the negotiated
/// configuration (the responder echoes our requested flags).
pub fn mpa_connect(
    stream: &StreamConduit,
    qpn: u32,
    cfg: MpaConfig,
    timeout: Duration,
) -> IwarpResult<(u32, MpaConfig)> {
    stream.write_all(&encode(REQ_MAGIC, cfg, qpn))?;
    let mut buf = [0u8; FRAME_LEN];
    stream.read_exact(&mut buf, Some(timeout))?;
    let (negotiated, peer_qpn) = decode(&buf, REP_MAGIC)?;
    Ok((peer_qpn, negotiated))
}

/// Passive side of the MPA handshake. Reads the Request, intersects the
/// requester's flags with our `local` preferences (a feature is used only
/// when both sides enable it), replies with the result and our `qpn`, and
/// returns the peer's QP number plus the negotiated configuration.
pub fn mpa_accept(
    stream: &StreamConduit,
    qpn: u32,
    local: MpaConfig,
    timeout: Duration,
) -> IwarpResult<(u32, MpaConfig)> {
    let mut buf = [0u8; FRAME_LEN];
    stream.read_exact(&mut buf, Some(timeout))?;
    let (requested, peer_qpn) = decode(&buf, REQ_MAGIC)?;
    let negotiated = MpaConfig {
        markers: requested.markers && local.markers,
        crc: requested.crc && local.crc,
    };
    stream.write_all(&encode(REP_MAGIC, negotiated, qpn))?;
    Ok((peer_qpn, negotiated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Addr, Fabric, NodeId, StreamListener};

    #[test]
    fn handshake_negotiates() {
        let fab = Fabric::loopback();
        let listener =
            StreamListener::bind(&fab, Addr::new(1, 40), simnet::stream::StreamConfig::default())
                .unwrap();
        std::thread::scope(|s| {
            let srv = s.spawn(|| {
                let stream = listener.accept(Some(Duration::from_secs(2))).unwrap();
                let (peer_qpn, cfg) =
                    mpa_accept(&stream, 7, MpaConfig::default(), Duration::from_secs(2)).unwrap();
                assert_eq!(peer_qpn, 3);
                assert!(cfg.markers);
                assert!(cfg.crc);
                stream
            });
            let stream = StreamConduit::connect(
                &fab,
                NodeId(0),
                Addr::new(1, 40),
                simnet::stream::StreamConfig::default(),
            )
            .unwrap();
            let (peer_qpn, cfg) =
                mpa_connect(&stream, 3, MpaConfig::default(), Duration::from_secs(2)).unwrap();
            assert_eq!(peer_qpn, 7);
            assert_eq!(cfg, MpaConfig::default());
            drop(srv.join().unwrap());
        });
    }

    #[test]
    fn markerless_request_echoed() {
        let fab = Fabric::loopback();
        let listener =
            StreamListener::bind(&fab, Addr::new(1, 41), simnet::stream::StreamConfig::default())
                .unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                let stream = listener.accept(Some(Duration::from_secs(2))).unwrap();
                let (_, cfg) =
                    mpa_accept(&stream, 1, MpaConfig::default(), Duration::from_secs(2)).unwrap();
                assert!(!cfg.markers);
            });
            let stream = StreamConduit::connect(
                &fab,
                NodeId(0),
                Addr::new(1, 41),
                simnet::stream::StreamConfig::default(),
            )
            .unwrap();
            let req = MpaConfig {
                markers: false,
                crc: true,
            };
            let (_, cfg) = mpa_connect(&stream, 2, req, Duration::from_secs(2)).unwrap();
            assert_eq!(cfg, req);
        });
    }

    #[test]
    fn bad_magic_rejected() {
        let raw = [0u8; FRAME_LEN];
        assert!(decode(&raw, REQ_MAGIC).is_err());
    }

    #[test]
    fn frame_roundtrip() {
        let enc = encode(REQ_MAGIC, MpaConfig { markers: true, crc: false }, 99);
        let arr: [u8; FRAME_LEN] = enc[..].try_into().unwrap();
        let (cfg, qpn) = decode(&arr, REQ_MAGIC).unwrap();
        assert!(cfg.markers && !cfg.crc);
        assert_eq!(qpn, 99);
    }
}
