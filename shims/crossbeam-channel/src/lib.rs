//! Offline stand-in for `crossbeam-channel`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset it uses: `unbounded()`, cloneable `Sender`/`Receiver`,
//! blocking/timed/non-blocking receive, and `Receiver::len()` (which
//! `std::sync::mpsc` lacks). Implemented as a `Mutex<VecDeque>` plus
//! `Condvar`; throughput is adequate for the packet-at-a-time simulated
//! fabric this repo drives through it.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message currently queued.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded MPMC channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails only if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.chan.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.chan.lock().push_back(value);
        self.chan.ready.notify_one();
        Ok(())
    }

    /// Enqueues every value in `batch` under a single queue lock, waking
    /// receivers once. Returns how many values were enqueued (0 when all
    /// receivers are gone). Shim extension for the burst datapath — not
    /// part of the real crossbeam API.
    pub fn send_batch(&self, batch: impl IntoIterator<Item = T>) -> usize {
        if self.chan.receivers.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let n = {
            let mut q = self.chan.lock();
            let before = q.len();
            q.extend(batch);
            q.len() - before
        };
        if n > 0 {
            if n == 1 {
                self.chan.ready.notify_one();
            } else {
                self.chan.ready.notify_all();
            }
        }
        n
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // the disconnect.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.chan.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self
                .chan
                .ready
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.chan.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Dequeues a message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.chan.lock();
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.chan.senders.load(Ordering::Acquire) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Dequeues up to `max` messages under a single queue lock, blocking
    /// up to `timeout` (`None` = don't block) for the first. Returns an
    /// empty vector on timeout or disconnect. Shim extension for the
    /// burst datapath — not part of the real crossbeam API.
    pub fn recv_batch(&self, max: usize, timeout: Option<Duration>) -> Vec<T> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        let mut q = self.chan.lock();
        while out.len() < max {
            match q.pop_front() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        if out.is_empty() {
            let Some(timeout) = timeout else { return out };
            let deadline = Instant::now() + timeout;
            loop {
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return out;
                }
                let now = Instant::now();
                if now >= deadline {
                    return out;
                }
                let (guard, _) = self
                    .chan
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
                while out.len() < max {
                    match q.pop_front() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                if !out.is_empty() {
                    return out;
                }
            }
        }
        out
    }

    /// Number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chan.lock().len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chan.lock().is_empty()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_when_empty() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        h.join().unwrap();
    }
}
