//! Corruption-path classification tests: a frame whose payload is
//! damaged *after* encoding must be rejected by the CRC32 trailer check
//! (`crc_errors`), never misparsed (`malformed`), must consume no posted
//! receive, and must leave registered memory and validity state
//! untouched — on both the legacy contiguous and scatter-gather
//! datapaths.
//!
//! Frames are captured post-encode by addressing the sender at a relay
//! [`DgramConduit`]; the relay flips exactly one payload bit and
//! forwards the damaged frame to the real receiver, exactly as a
//! bit-error on the wire would.

use std::sync::atomic::Ordering;
use std::time::Duration;

use bytes::Bytes;
use iwarp::hdr::CRC_LEN;
use iwarp::wr::RecvWr;
use iwarp::{Access, Cq, CqeStatus, Device, QpConfig, UdDest};
use iwarp_common::copypath::CopyPath;
use simnet::{DgramConduit, Fabric, NodeId};

const PUMP: Duration = Duration::from_millis(2);

/// Pumps a poll-mode QP's receive engine a few times.
fn pump(qp: &iwarp::UdQp, iters: usize) {
    for _ in 0..iters {
        qp.progress(PUMP);
    }
}

/// Pumps `qp` until `cq` yields a completion (or a 3 s deadline).
fn pump_until_cqe(qp: &iwarp::UdQp, cq: &Cq) -> Option<iwarp::Cqe> {
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    loop {
        if let Some(c) = cq.poll() {
            return Some(c);
        }
        if std::time::Instant::now() > deadline {
            return None;
        }
        qp.progress(PUMP);
    }
}

/// Flips one bit in the last payload byte (just before the CRC trailer).
fn flip_payload_bit(frame: &Bytes) -> Bytes {
    let mut v = frame.to_vec();
    assert!(v.len() > CRC_LEN, "frame too short to carry a payload");
    let i = v.len() - CRC_LEN - 1;
    v[i] ^= 0x40;
    Bytes::from(v)
}

struct Rig {
    _fab: Fabric,
    _dev_a: Device,
    dev_b: Device,
    qa: iwarp::UdQp,
    qb: iwarp::UdQp,
    _a_send: Cq,
    _a_recv: Cq,
    b_recv: Cq,
    relay: DgramConduit,
}

fn rig(path: CopyPath) -> Rig {
    let fab = Fabric::loopback();
    let dev_a = Device::new(&fab, NodeId(0));
    let dev_b = Device::new(&fab, NodeId(1));
    let (a_send, a_recv) = (Cq::new(64), Cq::new(64));
    let (b_send, b_recv) = (Cq::new(64), Cq::new(64));
    let cfg = QpConfig {
        poll_mode: true,
        copy_path: path,
        ..QpConfig::default()
    };
    let qa = dev_a.create_ud_qp(None, &a_send, &a_recv, cfg.clone()).unwrap();
    let qb = dev_b.create_ud_qp(None, &b_send, &b_recv, cfg).unwrap();
    let mut relay = DgramConduit::bind_ephemeral(&fab, NodeId(2)).unwrap();
    relay.set_copy_path(path);
    Rig {
        _fab: fab,
        _dev_a: dev_a,
        dev_b,
        qa,
        qb,
        _a_send: a_send,
        _a_recv: a_recv,
        b_recv,
        relay,
    }
}

/// The sender's view of the receiver, routed through the relay.
fn via_relay(r: &Rig) -> UdDest {
    UdDest {
        addr: r.relay.local_addr(),
        qpn: r.qb.qpn(),
    }
}

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 251) as u8).collect()
}

/// Tagged single-segment Write-Record with one flipped payload bit:
/// classified `crc_errors` (not `malformed`), consumes no posted
/// receive, places nothing, creates no record.
fn tagged_bit_flip_case(path: CopyPath) {
    let r = rig(path);
    let sink = r.dev_b.register(4096, Access::RemoteWrite);
    let guard = r.dev_b.register(256, Access::Local);
    r.qb.post_recv(RecvWr::whole(7, &guard)).unwrap();
    assert_eq!(r.qb.posted_recvs(), 1);

    r.qa
        .post_write_record(1, pattern(1024), via_relay(&r), sink.stag(), 0)
        .unwrap();

    let (_, frame) = r.relay.recv_from(Some(Duration::from_secs(1))).unwrap();
    r.relay
        .send_to(r.qb.local_addr(), flip_payload_bit(&frame))
        .unwrap();
    pump(&r.qb, 10);

    let stats = r.qb.stats();
    assert_eq!(
        stats.crc_errors.load(Ordering::Relaxed),
        1,
        "{path:?}: flipped payload bit must be a CRC rejection"
    );
    assert_eq!(
        stats.malformed.load(Ordering::Relaxed),
        0,
        "{path:?}: a CRC-damaged frame must not be classified malformed"
    );
    assert_eq!(
        r.qb.posted_recvs(),
        1,
        "{path:?}: tagged segments must never consume a posted receive"
    );
    assert!(
        r.b_recv.poll().is_none(),
        "{path:?}: no completion may surface for the damaged write"
    );
    assert_eq!(
        sink.read_vec(0, 1024).unwrap(),
        vec![0u8; 1024],
        "{path:?}: no byte of the damaged segment may be placed"
    );
}

#[test]
fn tagged_bit_flip_is_crc_error_legacy() {
    tagged_bit_flip_case(CopyPath::Legacy);
}

#[test]
fn tagged_bit_flip_is_crc_error_sg() {
    tagged_bit_flip_case(CopyPath::Sg);
}

/// Untagged send with one flipped payload bit: same classification, and
/// the posted receive survives for the next (clean) message.
fn untagged_bit_flip_case(path: CopyPath) {
    let r = rig(path);
    let sink = r.dev_b.register(4096, Access::Local);
    r.qb.post_recv(RecvWr::whole(11, &sink)).unwrap();

    r.qa.post_send(1, pattern(512), via_relay(&r)).unwrap();
    let (_, frame) = r.relay.recv_from(Some(Duration::from_secs(1))).unwrap();
    r.relay
        .send_to(r.qb.local_addr(), flip_payload_bit(&frame))
        .unwrap();
    pump(&r.qb, 10);

    let stats = r.qb.stats();
    assert_eq!(stats.crc_errors.load(Ordering::Relaxed), 1, "{path:?}");
    assert_eq!(stats.malformed.load(Ordering::Relaxed), 0, "{path:?}");
    assert_eq!(
        r.qb.posted_recvs(),
        1,
        "{path:?}: CRC-rejected send must not consume the posted receive"
    );
    assert!(r.b_recv.poll().is_none(), "{path:?}");

    // The receive is still live: a clean retransmission lands in it.
    r.qa.post_send(2, Bytes::from(pattern(512)), r.qb.dest()).unwrap();
    let cqe = pump_until_cqe(&r.qb, &r.b_recv).expect("clean resend completes");
    assert_eq!(cqe.wr_id, 11);
    assert_eq!(cqe.status, CqeStatus::Success);
    assert_eq!(sink.read_vec(0, 512).unwrap(), pattern(512));
}

#[test]
fn untagged_bit_flip_is_crc_error_legacy() {
    untagged_bit_flip_case(CopyPath::Legacy);
}

#[test]
fn untagged_bit_flip_is_crc_error_sg() {
    untagged_bit_flip_case(CopyPath::Sg);
}

/// Multi-segment Write-Record with the middle segment corrupted: the
/// record completes `Partial`, its validity map excludes exactly the
/// damaged range, and every claimed run holds the sender's bytes.
fn partial_write_record_case(path: CopyPath) {
    let r = rig(path);
    let total = 150 * 1024usize;
    let sink = r.dev_b.register(256 * 1024, Access::RemoteWrite);
    let payload = pattern(total);

    r.qa
        .post_write_record(1, payload.clone(), via_relay(&r), sink.stag(), 0)
        .unwrap();

    // Collect every segment datagram of the message at the relay.
    let mut frames = Vec::new();
    while let Ok((_, f)) = r.relay.recv_from(Some(Duration::from_millis(100))) {
        frames.push(f);
    }
    assert!(
        frames.len() >= 3,
        "{path:?}: expected a multi-segment message, got {} segments",
        frames.len()
    );

    // Corrupt a middle segment; forward the rest untouched, in order.
    let victim = frames.len() / 2;
    for (i, f) in frames.iter().enumerate() {
        let out = if i == victim { flip_payload_bit(f) } else { f.clone() };
        r.relay.send_to(r.qb.local_addr(), out).unwrap();
    }
    let cqe = pump_until_cqe(&r.qb, &r.b_recv)
        .expect("record completes once its last segment has arrived");

    let stats = r.qb.stats();
    assert_eq!(stats.crc_errors.load(Ordering::Relaxed), 1, "{path:?}");
    assert_eq!(stats.malformed.load(Ordering::Relaxed), 0, "{path:?}");
    assert_eq!(cqe.status, CqeStatus::Partial, "{path:?}");
    let info = cqe.write_record.expect("Write-Record completions carry validity");
    assert_eq!(info.total_len as usize, total);
    assert!(!info.is_complete(), "{path:?}");
    let valid = info.valid_bytes();
    assert!(
        valid > 0 && (valid as usize) < total,
        "{path:?}: valid_bytes {valid} out of range"
    );
    assert_eq!(
        info.validity.runs().len(),
        2,
        "{path:?}: one damaged middle segment must leave a prefix and a suffix"
    );
    // Every claimed run holds exactly the sender's bytes; the hole holds
    // none of them (the region started zeroed and pattern() is nonzero
    // except every 251st byte, so check the run boundaries instead).
    for run in info.validity.runs() {
        let (s, e) = (run.start as usize, run.end as usize);
        assert_eq!(
            sink.read_vec(s as u64, e - s).unwrap(),
            payload[s..e],
            "{path:?}: claimed run [{s}, {e}) does not hold the sender's bytes"
        );
    }
}

#[test]
fn partial_write_record_excludes_corrupt_segment_legacy() {
    partial_write_record_case(CopyPath::Legacy);
}

#[test]
fn partial_write_record_excludes_corrupt_segment_sg() {
    partial_write_record_case(CopyPath::Sg);
}
