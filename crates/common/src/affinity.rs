//! Best-effort CPU affinity for datapath worker threads.
//!
//! Shard RX engines (and benchmark workers) can pin themselves to a core
//! so that multi-core scaling numbers measure the architecture rather
//! than the scheduler's placement luck. The workspace vendors no FFI
//! crate, so the Linux `sched_setaffinity` syscall is issued directly via
//! inline assembly on x86_64/aarch64; everywhere else pinning is a
//! documented no-op and [`pin_to_core`] reports `false` so callers (and
//! benchmark JSON) stay honest about whether pinning actually happened.

/// Number of logical CPUs available to this process (≥ 1). The value the
/// benchmark bins record as `host_cpus` so scaling ratios are always
/// interpretable.
#[must_use]
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pins the *calling thread* to `core` (modulo [`host_cpus`]). Returns
/// `true` only when the kernel accepted the new mask; `false` on
/// unsupported platforms or syscall failure — callers must treat pinning
/// as advisory.
#[must_use]
pub fn pin_to_core(core: usize) -> bool {
    let cpus = host_cpus();
    set_affinity(core % cpus)
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn set_affinity(core: usize) -> bool {
    // cpu_set_t is 1024 bits; bit N = CPU N allowed.
    let mut mask = [0u64; 16];
    if core >= 1024 {
        return false;
    }
    mask[core / 64] = 1u64 << (core % 64);
    // sched_setaffinity(pid = 0 → calling thread, sizeof(mask), &mask).
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        let x0: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") 122isize, // __NR_sched_setaffinity
            inlateout("x0") 0isize => x0,
            in("x1") core::mem::size_of_val(&mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
        ret = x0;
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn set_affinity(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cpus_is_positive() {
        assert!(host_cpus() >= 1);
    }

    #[test]
    fn pin_is_advisory_and_does_not_panic() {
        // On Linux this should succeed for core 0; elsewhere it must
        // return false rather than fault. Either way the thread keeps
        // running.
        let ok = pin_to_core(0);
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(ok, "pinning to core 0 should succeed on Linux");
        } else {
            assert!(!ok);
        }
        // Out-of-range cores wrap modulo host_cpus instead of failing.
        assert_eq!(pin_to_core(host_cpus() * 7), ok);
    }
}
