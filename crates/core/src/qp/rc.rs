//! The reliable-connection queue pair: standard iWARP over the stream LLP.
//!
//! This is the baseline the paper measures datagram-iWARP against: every
//! QP owns a TCP-like [`StreamConduit`] (with its handshake, socket
//! buffers, and retransmission state), and every DDP segment is framed by
//! the MPA layer with stream markers and a CRC. One-sided RDMA Writes are
//! silent at the target, so notification costs an extra send/recv
//! (paper Fig. 3 top) — unlike Write-Record.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use iwarp_telemetry::Telemetry;
use parking_lot::Mutex;
use simnet::stream::StreamConfig;
use simnet::{Addr, Fabric, NetError, NodeId, StreamConduit, StreamListener};

use iwarp_common::memacct::MemScope;

use crate::buf::{MemoryRegion, MrTable};
use crate::cm;
use crate::cq::{Cq, Cqe, CqeOpcode, CqeStatus};
use crate::error::{IwarpError, IwarpResult};
use crate::hdr::{
    encode_tagged, encode_untagged, RdmapOpcode, ReadRequest, TaggedHdr, UntaggedHdr,
    UNTAGGED_HDR_LEN,
};
use crate::mpa::{MpaConfig, MpaRx, MpaTx, FPDU_OVERHEAD};
use crate::qp::dgram::QpTxTel;
use crate::qp::rx::{RxAction, RxCore, RxTel, QN_READ_REQUEST, QN_SEND};
use crate::qp::{QpConfig, QpStats};
use crate::wr::{RecvWr, SendPayload};

struct RcInner {
    qpn: u32,
    peer_qpn: u32,
    stream: StreamConduit,
    tx: Mutex<MpaTx>,
    send_cq: Cq,
    rx: RxCore,
    tx_tel: QpTxTel,
    next_msg_id: AtomicU64,
    next_msn: AtomicU32,
    max_msg_size: usize,
    /// DDP segment payload budget per FPDU (≈ one TCP segment).
    emss: usize,
    error: Mutex<Option<IwarpError>>,
    shutdown: AtomicBool,
    /// Receive-side deframing state (MPA position, staging buffer).
    rx_state: Mutex<RcRxState>,
    _mem: Option<MemScope>,
}

struct RcRxState {
    mpa: MpaRx,
    buf: Vec<u8>,
    /// Deframed ULPDUs not yet deliverable (head blocked on an empty
    /// receive queue — resolved when the application posts a receive).
    pending: std::collections::VecDeque<bytes::Bytes>,
}

impl RcInner {
    fn check_ok(&self) -> IwarpResult<()> {
        if let Some(e) = &*self.error.lock() {
            return Err(e.clone());
        }
        Ok(())
    }

    fn fail(&self, e: IwarpError) {
        let mut err = self.error.lock();
        if err.is_none() {
            *err = Some(e);
        }
    }

    /// Frames and writes ULPDUs under the TX lock (FPDU order must match
    /// marker positions exactly).
    fn write_ulpdu(&self, ulpdu: &[u8]) -> IwarpResult<()> {
        let mut tx = self.tx.lock();
        let framed = tx.frame(ulpdu);
        self.stream.write_all(&framed)?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn send_tagged_message(
        &self,
        opcode: RdmapOpcode,
        notify: bool,
        stag: u32,
        to: u64,
        data: &[u8],
        msg_id: u64,
        imm: u32,
    ) -> IwarpResult<()> {
        let cap = self.emss.max(64);
        let total = data.len() as u32;
        self.tx_tel.tx_msgs.inc();
        self.tx_tel.msg_size_tx.record(u64::from(total));
        let mut off = 0usize;
        loop {
            self.tx_tel.tx_segments.inc();
            let end = (off + cap).min(data.len());
            let hdr = TaggedHdr {
                opcode,
                last: end == data.len(),
                notify,
                stag,
                to: to + off as u64,
                base_to: to,
                total_len: total,
                src_qpn: self.qpn,
                msg_id,
                imm,
            };
            // No DDP CRC on the stream path: MPA already covers each FPDU.
            self.write_ulpdu(&encode_tagged(&hdr, &data[off..end], false))?;
            if end == data.len() {
                return Ok(());
            }
            off = end;
        }
    }
}

/// A reliable-connection iWARP queue pair.
pub struct RcQp {
    inner: Arc<RcInner>,
    rx_thread: Option<std::thread::JoinHandle<()>>,
}

/// Everything needed to build an RC QP around an established stream.
pub(crate) struct RcQpParts {
    pub qpn: u32,
    pub peer_qpn: u32,
    pub stream: StreamConduit,
    pub mpa: MpaConfig,
    pub mrs: Arc<MrTable>,
    pub send_cq: Cq,
    pub recv_cq: Cq,
    pub cfg: QpConfig,
    pub mem: Option<MemScope>,
    pub tel: Telemetry,
}

impl RcQp {
    pub(crate) fn build(parts: RcQpParts) -> Self {
        let RcQpParts {
            qpn,
            peer_qpn,
            stream,
            mpa,
            mrs,
            send_cq,
            recv_cq,
            cfg,
            mem,
            tel,
        } = parts;
        send_cq.attach_telemetry(&tel);
        recv_cq.attach_telemetry(&tel);
        let rx_tel = RxTel::new(&tel, stream.local_addr());
        let marker_slack = 32; // worst-case markers within one FPDU budget
        let emss = stream
            .mss()
            .saturating_sub(FPDU_OVERHEAD + UNTAGGED_HDR_LEN + marker_slack)
            .max(256);
        let max_msg_size = cfg.max_msg_size;
        let inner = Arc::new(RcInner {
            // RC rides the reliable stream: in-flight work never expires.
            rx: RxCore::new(mrs, recv_cq, cfg, true, rx_tel),
            tx_tel: QpTxTel::new(&tel),
            qpn,
            peer_qpn,
            tx: Mutex::new(MpaTx::new(mpa)),
            stream,
            send_cq,
            next_msg_id: AtomicU64::new(1),
            next_msn: AtomicU32::new(1),
            max_msg_size,
            emss,
            error: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            rx_state: Mutex::new(RcRxState {
                mpa: MpaRx::new(mpa),
                buf: vec![0u8; 64 * 1024],
                pending: std::collections::VecDeque::new(),
            }),
            _mem: mem,
        });
        let rx_thread = if inner.rx.cfg.poll_mode {
            None
        } else {
            let rx_inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name(format!("iwarp-rcqp-{qpn}"))
                    .spawn(move || rx_loop(&rx_inner))
                    .expect("spawn RC QP rx thread"),
            )
        };
        Self { inner, rx_thread }
    }

    /// Poll-mode driver: one receive-engine iteration, waiting up to
    /// `max_wait` for stream bytes. Call this when the QP was created
    /// with [`QpConfig::poll_mode`]; the engine thread does it otherwise.
    pub fn progress(&self, max_wait: Duration) {
        rx_step(&self.inner, max_wait);
    }

    /// This QP's number.
    #[must_use]
    pub fn qpn(&self) -> u32 {
        self.inner.qpn
    }

    /// The peer QP's number (learned during MPA negotiation).
    #[must_use]
    pub fn peer_qpn(&self) -> u32 {
        self.inner.peer_qpn
    }

    /// Local stream endpoint address.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.inner.stream.local_addr()
    }

    /// Peer stream endpoint address.
    #[must_use]
    pub fn peer_addr(&self) -> Addr {
        self.inner.stream.peer_addr()
    }

    /// The send completion queue.
    #[must_use]
    pub fn send_cq(&self) -> &Cq {
        &self.inner.send_cq
    }

    /// The receive completion queue.
    #[must_use]
    pub fn recv_cq(&self) -> &Cq {
        &self.inner.rx.recv_cq
    }

    /// Diagnostics counters.
    #[must_use]
    pub fn stats(&self) -> &QpStats {
        &self.inner.rx.stats
    }

    /// Posts a receive work request.
    pub fn post_recv(&self, wr: RecvWr) -> IwarpResult<()> {
        self.inner.check_ok()?;
        self.inner.rx.post_recv(wr);
        Ok(())
    }

    /// Posts an untagged send. Completes once every FPDU has been handed
    /// to the stream (kernel-bypass analog of DMA-to-NIC completion).
    pub fn post_send(&self, wr_id: u64, payload: impl Into<SendPayload>) -> IwarpResult<()> {
        self.post_send_inner(wr_id, payload.into(), false)
    }

    /// Posts a **send with solicited event** (the target's completion is
    /// flagged solicited; see [`Cq::wait_solicited`]).
    pub fn post_send_solicited(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
    ) -> IwarpResult<()> {
        self.post_send_inner(wr_id, payload.into(), true)
    }

    fn post_send_inner(
        &self,
        wr_id: u64,
        payload: SendPayload,
        solicited: bool,
    ) -> IwarpResult<()> {
        self.inner.check_ok()?;
        let data = payload.into_bytes()?;
        if data.len() > self.inner.max_msg_size {
            return Err(IwarpError::MessageTooLong {
                len: data.len(),
                max: self.inner.max_msg_size,
            });
        }
        let msg_id = self.inner.next_msg_id.fetch_add(1, Ordering::Relaxed);
        let msn = self.inner.next_msn.fetch_add(1, Ordering::Relaxed);
        let cap = self.inner.emss;
        let total = data.len() as u32;
        self.inner.tx_tel.tx_msgs.inc();
        self.inner.tx_tel.msg_size_tx.record(u64::from(total));
        let mut mo = 0usize;
        loop {
            self.inner.tx_tel.tx_segments.inc();
            let end = (mo + cap).min(data.len());
            let hdr = UntaggedHdr {
                opcode: RdmapOpcode::Send,
                last: end == data.len(),
                solicited,
                qn: QN_SEND,
                msn,
                mo: mo as u32,
                total_len: total,
                src_qpn: self.inner.qpn,
                msg_id,
            };
            self.inner
                .write_ulpdu(&encode_untagged(&hdr, &data[mo..end], false))?;
            if end == data.len() {
                break;
            }
            mo = end;
        }
        self.inner.send_cq.push(Cqe {
            wr_id,
            opcode: CqeOpcode::Send,
            status: CqeStatus::Success,
            byte_len: total,
            src: None,
            write_record: None,
        imm: None,
        solicited: false,
        });
        Ok(())
    }

    /// Posts a standard RDMA Write: data lands silently in the target's
    /// registered memory. To tell the target, follow with a send (the
    /// extra step Write-Record eliminates — paper Fig. 3).
    pub fn post_rdma_write(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        remote_stag: u32,
        remote_to: u64,
    ) -> IwarpResult<()> {
        self.post_tagged_common(
            wr_id,
            payload,
            remote_stag,
            remote_to,
            RdmapOpcode::RdmaWrite,
            false,
            0,
        )
    }

    /// Posts an InfiniBand-style **RDMA Write with Immediate** over the
    /// connection: one-sided placement whose immediate consumes a posted
    /// receive at the target (paper §IV.B.3 comparison point).
    pub fn post_write_imm(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        remote_stag: u32,
        remote_to: u64,
        imm: u32,
    ) -> IwarpResult<()> {
        self.post_tagged_common(
            wr_id,
            payload,
            remote_stag,
            remote_to,
            RdmapOpcode::RdmaWriteImm,
            true,
            imm,
        )
    }

    /// Posts an RDMA Write-Record over the reliable connection. The paper
    /// defines the operation for any transport; on RC the target logs the
    /// completion exactly as on UD (useful for the socket shim).
    pub fn post_write_record(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        remote_stag: u32,
        remote_to: u64,
    ) -> IwarpResult<()> {
        self.post_tagged_common(
            wr_id,
            payload,
            remote_stag,
            remote_to,
            RdmapOpcode::WriteRecord,
            true,
            0,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn post_tagged_common(
        &self,
        wr_id: u64,
        payload: impl Into<SendPayload>,
        remote_stag: u32,
        remote_to: u64,
        opcode: RdmapOpcode,
        notify: bool,
        imm: u32,
    ) -> IwarpResult<()> {
        self.inner.check_ok()?;
        let data = payload.into().into_bytes()?;
        if data.len() > self.inner.max_msg_size {
            return Err(IwarpError::MessageTooLong {
                len: data.len(),
                max: self.inner.max_msg_size,
            });
        }
        let msg_id = self.inner.next_msg_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .send_tagged_message(opcode, notify, remote_stag, remote_to, &data, msg_id, imm)?;
        self.inner.send_cq.push(Cqe {
            wr_id,
            opcode: CqeOpcode::RdmaWrite,
            status: CqeStatus::Success,
            byte_len: data.len() as u32,
            src: None,
            write_record: None,
        imm: None,
        solicited: false,
        });
        Ok(())
    }

    /// Posts an RDMA Read from `(remote_stag, remote_to)` into
    /// `(sink, sink_to)`. Completes on the receive CQ.
    pub fn post_read(
        &self,
        wr_id: u64,
        sink: &MemoryRegion,
        sink_to: u64,
        len: u32,
        remote_stag: u32,
        remote_to: u64,
    ) -> IwarpResult<()> {
        self.inner.check_ok()?;
        if u64::from(len) + sink_to > sink.len() as u64 {
            return Err(IwarpError::AccessViolation {
                stag: sink.stag(),
                offset: sink_to,
                len,
            });
        }
        let msg_id = self.inner.next_msg_id.fetch_add(1, Ordering::Relaxed);
        self.inner.rx.register_read(
            msg_id,
            RxCore::new_pending_read(wr_id, sink.clone(), sink_to, len, true),
        );
        let req = ReadRequest {
            sink_stag: sink.stag(),
            sink_to,
            len,
            src_stag: remote_stag,
            src_to: remote_to,
        };
        let hdr = UntaggedHdr {
            opcode: RdmapOpcode::ReadRequest,
            last: true,
            solicited: false,
            qn: QN_READ_REQUEST,
            msn: self.inner.next_msn.fetch_add(1, Ordering::Relaxed),
            mo: 0,
            total_len: crate::hdr::READ_REQUEST_LEN as u32,
            src_qpn: self.inner.qpn,
            msg_id,
        };
        self.inner.tx_tel.tx_msgs.inc();
        self.inner.tx_tel.tx_segments.inc();
        self.inner
            .write_ulpdu(&encode_untagged(&hdr, &req.encode(), false))?;
        Ok(())
    }
}

impl std::fmt::Debug for RcQp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcQp")
            .field("qpn", &self.inner.qpn)
            .field("peer_qpn", &self.inner.peer_qpn)
            .field("local", &self.local_addr())
            .field("peer", &self.peer_addr())
            .finish()
    }
}

impl Drop for RcQp {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.stream.close();
        if let Some(t) = self.rx_thread.take() {
            let _ = t.join();
        }
        self.inner.rx.flush();
    }
}

/// RC receive engine thread body (threaded mode).
fn rx_loop(inner: &RcInner) {
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if !rx_step(inner, Duration::from_millis(5)) {
            return;
        }
    }
}

/// One receive-engine iteration: stream bytes → MPA deframe → DDP
/// placement. Returns false once the connection is dead.
fn rx_step(inner: &RcInner, max_wait: Duration) -> bool {
    let peer = inner.stream.peer_addr();
    if inner.rx.cfg.poll_mode {
        inner.stream.progress(Duration::ZERO);
    }
    let mut state = inner.rx_state.lock();

    // Deliver previously stalled ULPDUs first; while the head remains
    // blocked on an empty receive queue we do NOT read more stream bytes,
    // so the peer eventually stalls on TCP flow control — a reliable
    // connection never silently drops a message.
    if !drain_pending(inner, peer, &mut state) {
        return false;
    }
    if !state.pending.is_empty() {
        drop(state);
        // Head-of-line blocked: wait for a receive to be posted.
        std::thread::sleep(max_wait.min(Duration::from_millis(1)));
        inner.rx.expire();
        return true;
    }

    let RcRxState { mpa, buf, pending } = &mut *state;
    let mut ulpdus = Vec::new();
    match inner.stream.read(buf, Some(max_wait)) {
        Ok(0) => {
            inner.fail(IwarpError::Net(NetError::Closed));
            inner.rx.flush();
            return false;
        }
        Ok(n) => {
            if let Err(e) = mpa.feed(&buf[..n], &mut ulpdus) {
                // Stream-path errors are fatal: the connection is marked
                // erroneous per the unrelaxed DDP standard.
                inner.fail(e);
                inner.rx.flush();
                return false;
            }
            pending.extend(ulpdus);
            if !drain_pending(inner, peer, &mut state) {
                return false;
            }
        }
        Err(NetError::Timeout) => {}
        Err(e) => {
            inner.fail(IwarpError::Net(e));
            inner.rx.flush();
            return false;
        }
    }
    drop(state);
    inner.rx.expire();
    true
}

/// Delivers queued ULPDUs until empty or head-of-line blocked on an empty
/// receive queue. Returns false on a fatal protocol error.
fn drain_pending(inner: &RcInner, peer: simnet::Addr, state: &mut RcRxState) -> bool {
    while let Some(front) = state.pending.front() {
        match crate::hdr::decode(front, false) {
            Ok(crate::hdr::DdpSegment::Untagged { ref hdr, .. })
                if inner.rx.would_stall(peer, hdr) =>
            {
                return true; // leave queued; a posted receive unblocks us
            }
            Ok(seg) => {
                state.pending.pop_front();
                if let Some(action) = inner.rx.handle(peer, seg) {
                    respond(inner, action);
                }
            }
            Err(_) => {
                inner.rx.stats.malformed.fetch_add(1, Ordering::Relaxed);
                inner.rx.note_malformed();
                inner.fail(IwarpError::Net(NetError::Protocol(
                    "malformed DDP segment on stream",
                )));
                inner.rx.flush();
                return false;
            }
        }
    }
    true
}

fn respond(inner: &RcInner, action: RxAction) {
    let RxAction::SendReadResponse {
        sink_stag,
        sink_to,
        data,
        msg_id,
        ..
    } = action;
    let msg_id_local = msg_id;
    if inner
        .send_tagged_message(
            RdmapOpcode::ReadResponse,
            false,
            sink_stag,
            sink_to,
            &data,
            msg_id_local,
            0,
        )
        .is_err()
    {
        inner.fail(IwarpError::Net(NetError::Closed));
    }
}

/// Accepts incoming RC connections: stream accept + MPA negotiation.
pub struct RcListener {
    listener: StreamListener,
    mrs: Arc<MrTable>,
    mpa: MpaConfig,
    next_qpn: Arc<AtomicU32>,
    mem: Option<iwarp_common::memacct::MemRegistry>,
    tel: Telemetry,
}

impl RcListener {
    pub(crate) fn new(
        fabric: &Fabric,
        addr: Addr,
        stream_cfg: StreamConfig,
        mpa: MpaConfig,
        mrs: Arc<MrTable>,
        next_qpn: Arc<AtomicU32>,
        mem: Option<iwarp_common::memacct::MemRegistry>,
    ) -> IwarpResult<Self> {
        Ok(Self {
            listener: StreamListener::bind(fabric, addr, stream_cfg)?,
            mrs,
            mpa,
            next_qpn,
            mem,
            tel: fabric.telemetry().clone(),
        })
    }

    /// The listening address.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.listener.local_addr()
    }

    /// Accepts one connection and completes MPA negotiation, returning an
    /// operational RC QP bound to the given completion queues.
    pub fn accept(
        &self,
        timeout: Duration,
        send_cq: &Cq,
        recv_cq: &Cq,
        cfg: QpConfig,
    ) -> IwarpResult<RcQp> {
        let stream = self.listener.accept(Some(timeout))?;
        let qpn = self.next_qpn.fetch_add(1, Ordering::Relaxed);
        let (peer_qpn, negotiated) = cm::mpa_accept(&stream, qpn, self.mpa, timeout)?;
        let mem = self
            .mem
            .as_ref()
            .map(|r| r.track("qp_rc", std::mem::size_of::<RcInner>() as u64));
        Ok(RcQp::build(RcQpParts {
            qpn,
            peer_qpn,
            stream,
            mpa: negotiated,
            mrs: Arc::clone(&self.mrs),
            send_cq: send_cq.clone(),
            recv_cq: recv_cq.clone(),
            cfg,
            mem,
            tel: self.tel.clone(),
        }))
    }
}

/// Active-side RC connection setup (used by `Device::rc_connect`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rc_connect(
    fabric: &Fabric,
    local_node: NodeId,
    remote: Addr,
    stream_cfg: StreamConfig,
    mpa: MpaConfig,
    mrs: Arc<MrTable>,
    next_qpn: &AtomicU32,
    send_cq: &Cq,
    recv_cq: &Cq,
    cfg: QpConfig,
    mem: Option<&iwarp_common::memacct::MemRegistry>,
) -> IwarpResult<RcQp> {
    let stream = StreamConduit::connect(fabric, local_node, remote, stream_cfg)?;
    let qpn = next_qpn.fetch_add(1, Ordering::Relaxed);
    let (peer_qpn, negotiated) = cm::mpa_connect(&stream, qpn, mpa, Duration::from_secs(5))?;
    let mem = mem.map(|r| r.track("qp_rc", std::mem::size_of::<RcInner>() as u64));
    Ok(RcQp::build(RcQpParts {
        qpn,
        peer_qpn,
        stream,
        mpa: negotiated,
        mrs,
        send_cq: send_cq.clone(),
        recv_cq: recv_cq.clone(),
        cfg,
        mem,
        tel: fabric.telemetry().clone(),
    }))
}
