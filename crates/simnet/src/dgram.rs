//! `DgramConduit` — the UDP-equivalent unreliable datagram service.
//!
//! Semantics mirror kernel UDP as the paper relies on them:
//!
//! * datagrams up to [`MAX_DATAGRAM`] (64 KiB minus headers);
//! * datagrams larger than the wire MTU are fragmented into MTU-sized wire
//!   packets and reassembled at the receiver **all-or-nothing** — "any loss
//!   of the smaller packets making up this large UDP packet results in the
//!   entire (up to 64KB) message being dropped" (paper §VI.A.2);
//! * no delivery, ordering or duplication guarantees;
//! * receive is timeout-based.
//!
//! The UDP checksum is deliberately *not* computed: the paper recommends
//! disabling UDP-level CRC because datagram-iWARP's DDP layer always
//! carries its own CRC32 (§V).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use iwarp_common::copypath::{self, CopyPath};
use iwarp_common::pool::{BufPool, PoolBuf};
use iwarp_common::sg::SgBytes;
use iwarp_telemetry::{Counter, EndpointId, EventKind, Histogram, Telemetry};
use parking_lot::Mutex;

use crate::error::{NetError, NetResult};
use crate::fabric::{Endpoint, Fabric};
use crate::wire::{Addr, NodeId, WirePacket};

/// Wire-packet protocol discriminator for datagram fragments.
pub const PROTO_DGRAM: u8 = 0x01;

/// Serializes one fragment header into `buf[..FRAG_HEADER]`.
fn write_frag_header(buf: &mut [u8], id: u32, idx: u16, cnt: u16, total_len: u32) {
    buf[0] = PROTO_DGRAM;
    buf[1..5].copy_from_slice(&id.to_be_bytes());
    buf[5..7].copy_from_slice(&idx.to_be_bytes());
    buf[7..9].copy_from_slice(&cnt.to_be_bytes());
    buf[9..13].copy_from_slice(&total_len.to_be_bytes());
}

/// Fragment header: proto(1) + dgram_id(4) + frag_index(2) + frag_count(2)
/// + total_len(4).
pub const FRAG_HEADER: usize = 13;

/// Maximum datagram payload (the classic UDP limit: 65 535 minus IP/UDP
/// headers).
pub const MAX_DATAGRAM: usize = 65_507;

/// How long a partially reassembled datagram is kept before being reaped
/// (the kernel's `ipfrag_time` analog, scaled down for tests).
const REASSEMBLY_TTL: Duration = Duration::from_secs(3);

struct Partial {
    total_len: u32,
    frag_count: u16,
    received_mask: Vec<bool>,
    received: u16,
    /// Reassembly buffer, pre-sized to `total_len` and checked out of the
    /// fabric's pool; fragments can arrive out of order, offsets are
    /// computed from the fragment index.
    buf: PoolBuf,
    /// When this partial was created, for TTL-based reaping.
    created: Instant,
}

struct Reassembly {
    partials: HashMap<(Addr, u32), Partial>,
    last_gc: Instant,
}

/// Telemetry handles resolved once at bind time (see `FabricTel`).
struct DgramTel {
    tel: Telemetry,
    tx_datagrams: Counter,
    tx_fragments: Counter,
    rx_datagrams: Counter,
    partials_expired: Counter,
    /// Payload bytes memcpy'd on this conduit's datapath (legacy
    /// per-fragment copies, reassembly fills, flattens). The zero-copy
    /// work exists to drive this down; snapshots expose it as
    /// `pool.bytes_copied`.
    bytes_copied: Counter,
    msg_bytes: Histogram,
}

/// Unreliable datagram endpoint over a [`Fabric`].
pub struct DgramConduit {
    ep: Endpoint,
    next_id: AtomicU32,
    reasm: Mutex<Reassembly>,
    /// Fragment payload capacity per wire packet.
    frag_payload: usize,
    /// Which transmit datapath [`DgramConduit::send_to`] uses; the
    /// receive side is shape-driven and handles both regardless.
    copy_path: CopyPath,
    pool: BufPool,
    tel: DgramTel,
}

impl DgramConduit {
    /// Binds a datagram conduit at `addr`.
    pub fn bind(fabric: &Fabric, addr: Addr) -> NetResult<Self> {
        Ok(Self::from_endpoint(fabric.bind(addr)?))
    }

    /// Binds at an ephemeral port on `node`.
    pub fn bind_ephemeral(fabric: &Fabric, node: NodeId) -> NetResult<Self> {
        Ok(Self::from_endpoint(fabric.bind_ephemeral(node)?))
    }

    fn from_endpoint(ep: Endpoint) -> Self {
        let frag_payload = ep.mtu() - FRAG_HEADER;
        let t = ep.fabric().telemetry().clone();
        let pool = ep.fabric().pool().clone();
        let tel = DgramTel {
            tx_datagrams: t.counter("simnet.dgram.tx_datagrams"),
            tx_fragments: t.counter("simnet.dgram.tx_fragments"),
            rx_datagrams: t.counter("simnet.dgram.rx_datagrams"),
            partials_expired: t.counter("simnet.dgram.partials_expired"),
            bytes_copied: t.counter("pool.bytes_copied"),
            msg_bytes: t.histogram("simnet.dgram.msg_bytes"),
            tel: t,
        };
        Self {
            ep,
            next_id: AtomicU32::new(1),
            reasm: Mutex::new(Reassembly {
                partials: HashMap::new(),
                last_gc: Instant::now(),
            }),
            frag_payload,
            copy_path: copypath::default_path(),
            pool,
            tel,
        }
    }

    /// Pins which transmit datapath this conduit uses (defaults to the
    /// process-wide [`copypath::default_path`]).
    pub fn set_copy_path(&mut self, path: CopyPath) {
        self.copy_path = path;
    }

    /// The transmit datapath this conduit is using.
    #[must_use]
    pub fn copy_path(&self) -> CopyPath {
        self.copy_path
    }

    /// Local address.
    #[must_use]
    pub fn local_addr(&self) -> Addr {
        self.ep.local_addr()
    }

    /// The fabric this conduit is bound on.
    #[must_use]
    pub fn fabric(&self) -> &crate::fabric::Fabric {
        self.ep.fabric()
    }

    /// Largest datagram this conduit accepts.
    #[must_use]
    pub fn max_datagram(&self) -> usize {
        MAX_DATAGRAM
    }

    /// Wire MTU under this conduit (payload bytes per fragment is smaller
    /// by the fragment header).
    #[must_use]
    pub fn mtu(&self) -> usize {
        self.ep.mtu()
    }

    /// Sends one datagram to `dst`, fragmenting as needed. Unreliable:
    /// success only means the datagram was handed to the wire.
    ///
    /// On the scatter-gather path fragments are zero-copy windows of
    /// `payload` ([`Bytes::slice`]); on the legacy path each fragment is
    /// copied into a fresh contiguous frame (the pre-zero-copy reference
    /// behaviour, kept for A/B measurement).
    pub fn send_to(&self, dst: Addr, payload: Bytes) -> NetResult<()> {
        match self.copy_path {
            CopyPath::Sg => self.send_sg(dst, SgBytes::from(payload)),
            CopyPath::Legacy => self.send_legacy(dst, &payload),
        }
    }

    /// Sends one datagram given as a scatter-gather list, fragmenting by
    /// slicing: no payload byte is copied, and all fragment headers come
    /// from a single pooled allocation.
    pub fn send_sg(&self, dst: Addr, payload: SgBytes) -> NetResult<()> {
        if payload.len() > MAX_DATAGRAM {
            return Err(NetError::TooBig {
                len: payload.len(),
                max: MAX_DATAGRAM,
            });
        }
        let (id, frag_count, total_len) = self.prepare_send(&payload);
        let mut hdrs = self.pool.get(usize::from(frag_count) * FRAG_HEADER);
        for idx in 0..frag_count {
            write_frag_header(
                &mut hdrs[usize::from(idx) * FRAG_HEADER..],
                id,
                idx,
                frag_count,
                total_len,
            );
        }
        let hdrs = hdrs.freeze();
        for idx in 0..frag_count {
            let start = usize::from(idx) * self.frag_payload;
            let end = (start + self.frag_payload).min(payload.len());
            let h = usize::from(idx) * FRAG_HEADER;
            self.ep.send_sg(
                dst,
                hdrs.slice(h..h + FRAG_HEADER),
                payload.slice(start, end),
            )?;
        }
        Ok(())
    }

    /// Sends a burst of datagrams to `dst` through one fabric lock round.
    ///
    /// Each datagram is fragmented exactly as [`send_sg`](Self::send_sg)
    /// would — same ids, same headers, same per-datagram telemetry — but
    /// every fragment of every datagram is handed to the wire in a single
    /// [`Endpoint::send_burst`], so the fabric's loss/chaos state is
    /// locked once for the whole burst instead of once per fragment. An
    /// oversized datagram stops the burst at that datagram (earlier ones
    /// still go out, matching N sequential sends) and the error
    /// propagates.
    pub fn send_sg_burst(&self, dst: Addr, payloads: Vec<SgBytes>) -> NetResult<()> {
        let mut sends: Vec<crate::fabric::SgSend> = Vec::with_capacity(payloads.len());
        let mut result = Ok(());
        // All fragment headers of the burst come from ONE pooled buffer:
        // the pool shard is locked once per burst, not once per datagram.
        let total_frags: usize = payloads
            .iter()
            .map(|p| p.len().div_ceil(self.frag_payload).max(1))
            .sum();
        let mut hdrs = self.pool.get(total_frags * FRAG_HEADER);
        let mut h_off = 0usize;
        let mut metas: Vec<(SgBytes, u16)> = Vec::with_capacity(payloads.len());
        for payload in payloads {
            if payload.len() > MAX_DATAGRAM {
                result = Err(NetError::TooBig {
                    len: payload.len(),
                    max: MAX_DATAGRAM,
                });
                break;
            }
            let (id, frag_count, total_len) = self.prepare_send(&payload);
            for idx in 0..frag_count {
                write_frag_header(
                    &mut hdrs[h_off + usize::from(idx) * FRAG_HEADER..],
                    id,
                    idx,
                    frag_count,
                    total_len,
                );
            }
            h_off += usize::from(frag_count) * FRAG_HEADER;
            metas.push((payload, frag_count));
        }
        let hdrs = hdrs.freeze();
        let mut h = 0usize;
        for (payload, frag_count) in metas {
            if frag_count == 1 {
                // Unfragmented: the whole datagram moves through without
                // re-slicing (the common small-message case).
                sends.push(crate::fabric::SgSend {
                    dst,
                    header: hdrs.slice(h..h + FRAG_HEADER),
                    payload,
                });
                h += FRAG_HEADER;
                continue;
            }
            for idx in 0..frag_count {
                let start = usize::from(idx) * self.frag_payload;
                let end = (start + self.frag_payload).min(payload.len());
                sends.push(crate::fabric::SgSend {
                    dst,
                    header: hdrs.slice(h..h + FRAG_HEADER),
                    payload: payload.slice(start, end),
                });
                h += FRAG_HEADER;
            }
        }
        self.ep.send_burst(sends)?;
        result
    }

    /// The pre-zero-copy reference datapath: one contiguous frame per
    /// fragment, each paying an alloc plus a payload copy.
    fn send_legacy(&self, dst: Addr, payload: &Bytes) -> NetResult<()> {
        if payload.len() > MAX_DATAGRAM {
            return Err(NetError::TooBig {
                len: payload.len(),
                max: MAX_DATAGRAM,
            });
        }
        let (id, frag_count, total_len) = self.prepare_send(&SgBytes::from(payload.clone()));
        for idx in 0..frag_count {
            let start = usize::from(idx) * self.frag_payload;
            let end = (start + self.frag_payload).min(payload.len());
            let mut pkt = BytesMut::with_capacity(FRAG_HEADER + (end - start));
            pkt.put_u8(PROTO_DGRAM);
            pkt.put_u32(id);
            pkt.put_u16(idx);
            pkt.put_u16(frag_count);
            pkt.put_u32(total_len);
            pkt.extend_from_slice(&payload[start..end]);
            self.tel.bytes_copied.add((end - start) as u64);
            self.ep.send_to(dst, pkt.freeze())?;
        }
        Ok(())
    }

    /// Allocates a datagram id and records the per-datagram telemetry
    /// shared by both datapaths.
    fn prepare_send(&self, payload: &SgBytes) -> (u32, u16, u32) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let total_len = payload.len() as u32;
        let frag_count = payload.len().div_ceil(self.frag_payload).max(1) as u16;
        self.tel.tx_datagrams.inc();
        self.tel.tx_fragments.add(u64::from(frag_count));
        self.tel.msg_bytes.record(payload.len() as u64);
        if self.tel.tel.tracer().armed() {
            let src = self.ep.local_addr();
            self.tel.tel.tracer().record(
                self.tel.tel.now_nanos(),
                EndpointId::new(src.node.0, src.port),
                EventKind::Enqueue,
                payload.len() as u64,
                u64::from(id),
            );
        }
        (id, frag_count, total_len)
    }

    /// Receives the next complete datagram, blocking up to `timeout`
    /// (`None` = indefinitely). Returns the sender's address and payload
    /// as one contiguous buffer (flattening a scatter-gather delivery if
    /// needed; zero-copy consumers use
    /// [`recv_sg_from`](Self::recv_sg_from) instead).
    ///
    /// A zero timeout performs a non-blocking drain of already-queued wire
    /// packets (the poll-mode fast path) before reporting `Timeout`.
    pub fn recv_from(&self, timeout: Option<Duration>) -> NetResult<(Addr, Bytes)> {
        let (src, sg) = self.recv_sg_from(timeout)?;
        Ok((src, self.flatten(sg)))
    }

    /// Non-blocking variant of [`recv_from`](Self::recv_from).
    pub fn try_recv_from(&self) -> NetResult<(Addr, Bytes)> {
        let (src, sg) = self.try_recv_sg_from()?;
        Ok((src, self.flatten(sg)))
    }

    fn flatten(&self, sg: SgBytes) -> Bytes {
        if !sg.is_contiguous() {
            self.tel.bytes_copied.add(sg.len() as u64);
        }
        sg.to_bytes()
    }

    /// Scatter-gather variant of [`recv_from`](Self::recv_from): an
    /// unfragmented datagram is returned as the sender's original slices
    /// without any intermediate buffer.
    pub fn recv_sg_from(&self, timeout: Option<Duration>) -> NetResult<(Addr, SgBytes)> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            // Drain queued packets without blocking first, so zero-timeout
            // polling still makes progress.
            loop {
                match self.ep.try_recv() {
                    Ok(pkt) => {
                        if let Some(done) = self.ingest(pkt) {
                            return Ok(done);
                        }
                    }
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(e),
                }
            }
            let remaining = match deadline {
                None => None,
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(NetError::Timeout);
                    }
                    Some(d - now)
                }
            };
            let pkt = self.ep.recv(remaining)?;
            if let Some(done) = self.ingest(pkt) {
                return Ok(done);
            }
        }
    }

    /// Non-blocking variant of [`recv_sg_from`](Self::recv_sg_from).
    pub fn try_recv_sg_from(&self) -> NetResult<(Addr, SgBytes)> {
        loop {
            let pkt = self.ep.try_recv()?;
            if let Some(done) = self.ingest(pkt) {
                return Ok(done);
            }
        }
    }

    /// Drains up to `max` complete datagrams without blocking, pulling
    /// queued wire packets in batches ([`Endpoint::recv_burst`]) so the
    /// receive-queue lock is taken once per batch rather than once per
    /// fragment. Returns fewer than `max` (possibly zero) when the queue
    /// runs dry.
    #[must_use]
    pub fn try_recv_burst(&self, max: usize) -> Vec<(Addr, SgBytes)> {
        let mut out = Vec::new();
        loop {
            let want = max - out.len();
            if want == 0 {
                return out;
            }
            // Each wire packet completes at most one datagram, so asking
            // for `want` packets can never overshoot `max` datagrams.
            let pkts = self.ep.recv_burst(want, None);
            if pkts.is_empty() {
                return out;
            }
            let drained = pkts.len() < want;
            for pkt in pkts {
                if let Some(done) = self.ingest(pkt) {
                    out.push(done);
                }
            }
            if drained {
                return out;
            }
        }
    }

    /// Blocking variant of [`try_recv_burst`](Self::try_recv_burst):
    /// waits up to `timeout` (`None` = indefinitely) for the *first*
    /// complete datagram, then drains whatever else is already queued,
    /// up to `max`.
    #[must_use]
    pub fn recv_burst_from(&self, max: usize, timeout: Option<Duration>) -> Vec<(Addr, SgBytes)> {
        let mut out = self.try_recv_burst(max);
        if !out.is_empty() || max == 0 {
            return out;
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let remaining = match deadline {
                None => None,
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return out;
                    }
                    Some(d - now)
                }
            };
            let Ok(pkt) = self.ep.recv(remaining) else {
                return out;
            };
            if let Some(done) = self.ingest(pkt) {
                out.push(done);
                out.extend(self.try_recv_burst(max - out.len()));
                return out;
            }
        }
    }

    /// Feeds one wire packet into reassembly; returns a completed datagram
    /// if this fragment finished one.
    ///
    /// Shape-driven: handles both contiguous frames and scatter-gather
    /// packets, whatever datapath the sender used. Unfragmented datagrams
    /// pass through as zero-copy slices of the arriving frame; only
    /// multi-fragment datagrams touch a (pooled) reassembly buffer.
    fn ingest(&self, pkt: WirePacket) -> Option<(Addr, SgBytes)> {
        let src = pkt.src;
        if pkt.header.len() + pkt.payload.len() < FRAG_HEADER {
            return None; // not ours; ignore (wire noise)
        }
        // The fragment header is 13 bytes on the stack either way; the SG
        // datapath sends it as exactly `WirePacket::header`, so the common
        // case parses in place and moves the payload through untouched —
        // no intermediate frame list, no refcount churn.
        let mut hdr = [0u8; FRAG_HEADER];
        let body = if pkt.header.len() == FRAG_HEADER {
            hdr.copy_from_slice(&pkt.header);
            pkt.payload
        } else {
            let frame = pkt.frame();
            frame.read_at(0, &mut hdr);
            frame.slice(FRAG_HEADER, frame.len())
        };
        if hdr[0] != PROTO_DGRAM {
            return None;
        }
        let id = u32::from_be_bytes(hdr[1..5].try_into().ok()?);
        let idx = u16::from_be_bytes(hdr[5..7].try_into().ok()?);
        let cnt = u16::from_be_bytes(hdr[7..9].try_into().ok()?);
        let total_len = u32::from_be_bytes(hdr[9..13].try_into().ok()?);
        if cnt == 0 || idx >= cnt || total_len as usize > MAX_DATAGRAM {
            return None; // malformed
        }
        if cnt == 1 {
            // Fast path: unfragmented datagram — no reassembly state, no
            // intermediate buffer, just the arriving slices.
            self.tel.rx_datagrams.inc();
            if self.copy_path == CopyPath::Legacy {
                // Reference behaviour: stage into a fresh buffer.
                self.tel.bytes_copied.add(body.len() as u64);
                let mut staged = vec![0u8; body.len()];
                body.copy_to_slice(&mut staged);
                return Some((src, SgBytes::from(Bytes::from(staged))));
            }
            return Some((src, body));
        }

        let mut g = self.reasm.lock();
        let now = Instant::now();
        if now.duration_since(g.last_gc) > REASSEMBLY_TTL {
            let before = g.partials.len();
            g.partials
                .retain(|_, p| now.duration_since(p.created) <= REASSEMBLY_TTL);
            self.tel
                .partials_expired
                .add((before - g.partials.len()) as u64);
            g.last_gc = now;
        }
        let key = (src, id);
        let frag_payload = self.frag_payload;
        let pool = &self.pool;
        let p = g.partials.entry(key).or_insert_with(|| Partial {
            total_len,
            frag_count: cnt,
            received_mask: vec![false; usize::from(cnt)],
            received: 0,
            buf: pool.get(total_len as usize),
            created: now,
        });
        if p.frag_count != cnt || p.total_len != total_len {
            // Conflicting metadata for the same id — drop the partial.
            g.partials.remove(&key);
            return None;
        }
        let i = usize::from(idx);
        if p.received_mask[i] {
            return None; // duplicate fragment
        }
        let start = i * frag_payload;
        let end = (start + body.len()).min(p.buf.len());
        if end - start != body.len() {
            // Length inconsistent with the advertised total; discard.
            g.partials.remove(&key);
            return None;
        }
        body.copy_to_slice(&mut p.buf[start..end]);
        self.tel.bytes_copied.add(body.len() as u64);
        p.received_mask[i] = true;
        p.received += 1;
        if p.received == p.frag_count {
            let done = g.partials.remove(&key).expect("present");
            self.tel.rx_datagrams.inc();
            return Some((src, SgBytes::from(done.buf.freeze())));
        }
        None
    }

    /// Wire packets waiting in the delivery ring — fragments count
    /// individually, so this is an upper bound on the datagrams a drain
    /// can complete right now. Poll-mode drivers use it to loop a drain
    /// to quiescence regardless of how many packets one receive call
    /// consumes.
    #[must_use]
    pub fn rx_backlog(&self) -> usize {
        self.ep.pending()
    }

    /// Number of incomplete datagrams currently awaiting fragments.
    #[must_use]
    pub fn pending_partials(&self) -> usize {
        self.reasm.lock().partials.len()
    }

    /// Installs (or clears) an arrival notifier on the underlying wire
    /// endpoint: the callback fires once per delivered wire packet (i.e.
    /// per fragment, not per reassembled datagram). Batch consumers use
    /// it to mark this conduit ready and then drain with
    /// [`try_recv_sg_from`](Self::try_recv_sg_from).
    pub fn set_notify(&self, notify: Option<crate::fabric::RxNotify>) {
        self.ep.set_notify(notify);
    }

    /// Subscribes this conduit to a multicast group: datagrams sent to the
    /// group address are received here like unicast ones (each member
    /// reassembles fragments independently).
    pub fn join_multicast(&self, group: Addr) -> NetResult<()> {
        self.ep.join_multicast(group)
    }

    /// Unsubscribes from `group`.
    pub fn leave_multicast(&self, group: Addr) {
        self.ep.leave_multicast(group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireConfig;

    fn pair(fab: &Fabric) -> (DgramConduit, DgramConduit) {
        let a = DgramConduit::bind(fab, Addr::new(0, 100)).unwrap();
        let b = DgramConduit::bind(fab, Addr::new(1, 100)).unwrap();
        (a, b)
    }

    #[test]
    fn small_datagram_roundtrip() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        a.send_to(b.local_addr(), Bytes::from_static(b"hello")).unwrap();
        let (src, data) = b.recv_from(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(src, a.local_addr());
        assert_eq!(&data[..], b"hello");
    }

    #[test]
    fn empty_datagram() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        a.send_to(b.local_addr(), Bytes::new()).unwrap();
        let (_, data) = b.recv_from(Some(Duration::from_secs(1))).unwrap();
        assert!(data.is_empty());
    }

    #[test]
    fn fragmented_datagram_roundtrip() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        a.send_to(b.local_addr(), Bytes::from(payload.clone())).unwrap();
        let (_, data) = b.recv_from(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(&data[..], &payload[..]);
    }

    #[test]
    fn max_datagram_roundtrip() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let payload = vec![0x5Au8; MAX_DATAGRAM];
        a.send_to(b.local_addr(), Bytes::from(payload.clone())).unwrap();
        let (_, data) = b.recv_from(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(data.len(), MAX_DATAGRAM);
        assert_eq!(&data[..], &payload[..]);
    }

    #[test]
    fn oversized_rejected() {
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let err = a
            .send_to(b.local_addr(), Bytes::from(vec![0u8; MAX_DATAGRAM + 1]))
            .unwrap_err();
        assert!(matches!(err, NetError::TooBig { .. }));
    }

    #[test]
    fn interleaved_fragments_from_two_senders() {
        let fab = Fabric::loopback();
        let a = DgramConduit::bind(&fab, Addr::new(0, 1)).unwrap();
        let c = DgramConduit::bind(&fab, Addr::new(2, 1)).unwrap();
        let b = DgramConduit::bind(&fab, Addr::new(1, 1)).unwrap();
        let pa = vec![0xAAu8; 5000];
        let pc = vec![0xCCu8; 5000];
        a.send_to(b.local_addr(), Bytes::from(pa.clone())).unwrap();
        c.send_to(b.local_addr(), Bytes::from(pc.clone())).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            let (src, data) = b.recv_from(Some(Duration::from_secs(1))).unwrap();
            got.push((src, data));
        }
        got.sort_by_key(|(src, _)| *src);
        assert_eq!(&got[0].1[..], &pa[..]);
        assert_eq!(&got[1].1[..], &pc[..]);
    }

    #[test]
    fn fragment_loss_drops_whole_datagram() {
        // 10% per-packet loss; 40-fragment datagrams survive with
        // p ≈ 0.9^40 ≈ 1.5% — expect the vast majority to vanish entirely,
        // and *no* corrupted/partial delivery.
        let fab = Fabric::new(WireConfig::with_loss(0.10, 11));
        let (a, b) = pair(&fab);
        let payload: Vec<u8> = (0..59_000u32).map(|i| (i % 251) as u8).collect();
        let n = 50;
        for _ in 0..n {
            a.send_to(b.local_addr(), Bytes::from(payload.clone())).unwrap();
        }
        let mut delivered = 0;
        while let Ok((_, data)) = b.recv_from(Some(Duration::from_millis(50))) {
            assert_eq!(&data[..], &payload[..], "partial delivery leaked");
            delivered += 1;
        }
        assert!(delivered < n / 2, "delivered {delivered}/{n}");
    }

    #[test]
    fn recv_timeout() {
        let fab = Fabric::loopback();
        let (_a, b) = pair(&fab);
        let err = b.recv_from(Some(Duration::from_millis(10))).unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn duplicate_fragment_ignored() {
        // Send the same single-fragment datagram twice: two deliveries
        // (UDP duplicates are the app's problem), but duplicated *fragments*
        // of a multi-fragment datagram must not corrupt reassembly.
        let fab = Fabric::loopback();
        let (a, b) = pair(&fab);
        let payload = vec![1u8; 4000];
        a.send_to(b.local_addr(), Bytes::from(payload.clone())).unwrap();
        let (_, d1) = b.recv_from(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(d1.len(), 4000);
        assert_eq!(b.pending_partials(), 0);
    }
}
