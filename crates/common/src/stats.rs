//! Summary statistics shared by the benchmark harness and applications.
//!
//! The figure harness reports medians (robust against scheduler noise on a
//! shared machine) plus mean/min/max, matching how the paper reports
//! latency/bandwidth series.

/// Online summary of a series of `f64` samples.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum sample (0.0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min).pipe_finite()
    }

    /// Maximum sample (0.0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// Median via partial sort (0.0 when empty).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut v = self.samples.clone();
        v.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
        v[rank.min(v.len() - 1)]
    }

    /// Sample standard deviation (0.0 with fewer than two samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - m) * (s - m))
            .sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    /// Maps the +/-infinity sentinels from empty folds to 0.0.
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Percentage improvement of `better` over `worse` for a lower-is-better
/// metric (latency, time): `(worse - better) / worse * 100`.
#[must_use]
pub fn pct_improvement_lower(better: f64, worse: f64) -> f64 {
    if worse == 0.0 {
        return 0.0;
    }
    (worse - better) / worse * 100.0
}

/// Percentage improvement of `better` over `worse` for a higher-is-better
/// metric (bandwidth): `(better - worse) / worse * 100`.
#[must_use]
pub fn pct_improvement_higher(better: f64, worse: f64) -> f64 {
    if worse == 0.0 {
        return 0.0;
    }
    (better - worse) / worse * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn basic_moments() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.stddev() - 1.5811388).abs() < 1e-6);
    }

    #[test]
    fn percentiles() {
        let mut s = Summary::new();
        for v in 0..101 {
            s.push(f64::from(v));
        }
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(100.0), 100.0);
    }

    #[test]
    fn improvements() {
        // 24.4% latency improvement: UD 25µs vs RC 33.07µs.
        assert!((pct_improvement_lower(25.0, 33.07) - 24.4).abs() < 0.1);
        // 256% bandwidth improvement: 3.56x.
        assert!((pct_improvement_higher(356.0, 100.0) - 256.0).abs() < 1e-9);
        assert_eq!(pct_improvement_lower(1.0, 0.0), 0.0);
        assert_eq!(pct_improvement_higher(1.0, 0.0), 0.0);
    }
}
